#!/usr/bin/env python
"""Assert two ``BENCH_*.json`` documents are equivalent.

Everything in a ``repro-bench-v1`` document is a pure function of the
run descriptors except the wall-clock measurements and their derived
rates/speedups, so this tool zeroes those
(``repro.experiments.results.strip_timing``) and compares the canonical
JSON byte-for-byte.  ``make smoke`` uses it to enforce the executor
determinism contract (a multiprocess or chunked grid must match the
serial reference exactly), and ``make bench-smoke`` uses it to check a
fresh tiny ingest profile against the committed
``benchmarks/BENCH_ingest_smoke.json`` baseline — the batch encoders'
determinism contract.

Usage: ``python tools/compare_bench.py A.json B.json`` — exits 0 when
equivalent, 1 with a first-difference summary otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.results import strip_timing  # noqa: E402


def first_difference(a, b, path="$"):
    """A human-readable pointer to the first mismatch between documents."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key}: present in only one document"
            diff = first_difference(a[key], b[key], f"{path}.{key}")
            if diff:
                return diff
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for index, (va, vb) in enumerate(zip(a, b)):
            diff = first_difference(va, vb, f"{path}[{index}]")
            if diff:
                return diff
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    docs = [
        strip_timing(json.loads(Path(arg).read_text())) for arg in argv
    ]
    if json.dumps(docs[0], sort_keys=True) == json.dumps(docs[1], sort_keys=True):
        print(f"equivalent: {argv[0]} == {argv[1]} (timing stripped)")
        return 0
    print(
        f"MISMATCH between {argv[0]} and {argv[1]}: "
        f"{first_difference(docs[0], docs[1])}",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
