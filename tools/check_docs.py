#!/usr/bin/env python
"""Validate code pointers in the documentation.

Docs under ``docs/`` reference code as backtick-quoted pointers of the
form ``path/to/file.py::Symbol.sub`` (the symbol part optional).  This
script resolves every pointer against the working tree: the file must
exist, and the dotted symbol — class, function, method, or module-level
assignment — must be found in the file's AST.  Markdown links to other
in-repo files are checked for existence as well.

Run it as ``make docs-check``; it exits non-zero listing every broken
pointer, so CI catches documentation drift the moment a symbol is
renamed.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_GLOBS = ("docs/*.md", "README.md")

#: `path/to/file.ext::Dotted.Symbol` or bare `path/to/file.ext` in backticks.
POINTER = re.compile(
    r"`([A-Za-z0-9_./-]+\.(?:py|md|json|yml|yaml|txt|cfg|ini))"
    r"(?:::([A-Za-z0-9_.]+))?`"
)

#: Relative markdown links: [text](relative/path.md) — no scheme, no anchor.
MD_LINK = re.compile(r"\]\(([A-Za-z0-9_./-]+\.md)\)")


def _defined_names(tree: ast.Module) -> dict[str, ast.AST]:
    """Top-level classes, functions, and assigned names of a module."""
    names: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            names[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names[target.id] = node
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names[node.target.id] = node
    return names


def _resolve_symbol(tree: ast.Module, dotted: str) -> bool:
    """Resolve ``Class.method``-style chains through nested definitions."""
    scope: ast.AST = tree
    for part in dotted.split("."):
        body = getattr(scope, "body", None)
        if body is None:
            return False
        found = None
        for node in body:
            if isinstance(
                node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name == part:
                found = node
                break
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == part for t in node.targets
            ):
                found = node
                break
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == part
            ):
                found = node
                break
        if found is None:
            return False
        scope = found
    return True


def check_file(doc_path: Path) -> list[str]:
    errors: list[str] = []
    text = doc_path.read_text()
    rel = doc_path.relative_to(REPO_ROOT)

    for match in POINTER.finditer(text):
        target, symbol = match.group(1), match.group(2)
        path = REPO_ROOT / target
        if not path.is_file():
            errors.append(f"{rel}: `{match.group(0).strip('`')}` — "
                          f"file {target} does not exist")
            continue
        if symbol:
            if path.suffix != ".py":
                errors.append(f"{rel}: `{target}::{symbol}` — symbol pointers "
                              "only resolve into .py files")
                continue
            tree = ast.parse(path.read_text())
            if not _resolve_symbol(tree, symbol):
                errors.append(f"{rel}: `{target}::{symbol}` — symbol "
                              f"{symbol!r} not found in {target}")

    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if not (doc_path.parent / target).is_file():
            errors.append(f"{rel}: markdown link ({target}) does not resolve")
    return errors


def main() -> int:
    docs: list[Path] = []
    for pattern in DOC_GLOBS:
        docs.extend(sorted(REPO_ROOT.glob(pattern)))
    if not docs:
        print("docs-check: no documentation files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    checked = 0
    for doc in docs:
        found = check_file(doc)
        errors.extend(found)
        checked += len(POINTER.findall(doc.read_text()))
    if errors:
        print(f"docs-check: {len(errors)} broken pointer(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"docs-check: {checked} pointers across {len(docs)} files all "
          "resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
