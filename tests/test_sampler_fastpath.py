"""Tests for the sampler fast path: engines, sharding, and snapshots.

The engine contract (the PR-2 precedent, applied to sampling):

- **per-engine determinism** — for a fixed ``(engine, seed)`` every
  drawing surface (``sample``, ``sample_into``, ``sample_stream`` with
  and without buffer reuse) produces byte-identical draws at the same
  batch-size sequence;
- **statistical identity** — every engine's stream passes a per-CPD
  chi-squared goodness-of-fit against the ground-truth network, so the
  fast path cannot buy speed with a skewed distribution;
- **sharded equivalence** — the sharded parallel sampler draws the same
  stream across ``serial`` / ``thread`` / ``process`` modes and across
  shard counts (per-chunk child seeds, never worker identity);
- **snapshots** — both samplers restore mid-stream byte-identically and
  refuse snapshots from a different engine or sampler kind.
"""

import numpy as np
import pytest

from repro import EstimatorSpec, ForwardSampler, MonitoringSession, link_like
from repro.bn.sampling import SAMPLER_ENGINES, resolve_engine
from repro.errors import StreamError
from repro.exec import SHARD_MODES, ShardedSampler
from repro.experiments.bench import (
    CHI2_Z_THRESHOLD,
    _max_cpd_chi2_z,
    benchmark_sampler_engines,
)

#: The concrete engines (``"auto"`` resolves to one of these).
ENGINES = ("reference", "cdf")


@pytest.fixture(scope="module")
def link_net():
    return link_like()


class TestEngineContract:
    def test_auto_resolves_to_fast_engine(self):
        assert resolve_engine("auto") == "cdf"
        assert resolve_engine("reference") == "reference"
        with pytest.raises(StreamError):
            resolve_engine("nope")
        assert set(ENGINES) < set(SAMPLER_ENGINES)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_drawing_surfaces_byte_identical(self, alarm_net, engine):
        m, chunk = 3_000, 700
        reference = ForwardSampler(
            alarm_net, seed=11, engine=engine
        ).sample(m)
        assert reference.shape == (m, alarm_net.n_variables)

        storage = np.empty((alarm_net.n_variables, m), dtype=np.int64)
        into = ForwardSampler(alarm_net, seed=11, engine=engine)
        assert np.array_equal(into.sample_into(storage.T), reference)

        streamed = np.concatenate(list(
            ForwardSampler(alarm_net, seed=11, engine=engine)
            .sample_stream(m, chunk=chunk)
        ))
        reused = np.concatenate([
            batch.copy()
            for batch in ForwardSampler(alarm_net, seed=11, engine=engine)
            .sample_stream(m, chunk=chunk, reuse_buffer=True)
        ])
        # Chunked streams consume randomness per chunk, so they match
        # each other exactly but need not match the one-shot draw.
        assert np.array_equal(streamed, reused)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_statistical_identity_on_alarm(self, alarm_net, engine):
        data = ForwardSampler(alarm_net, seed=3, engine=engine).sample(40_000)
        assert _max_cpd_chi2_z(alarm_net, data) < CHI2_Z_THRESHOLD

    @pytest.mark.parametrize("engine", ENGINES)
    def test_statistical_identity_on_link(self, link_net, engine):
        # LINK exercises the searchsorted path (cardinalities above the
        # count-inversion crossover) and deep topological levels.
        data = ForwardSampler(link_net, seed=4, engine=engine).sample(15_000)
        assert _max_cpd_chi2_z(link_net, data) < CHI2_Z_THRESHOLD

    def test_engines_agree_on_marginals(self, small_net):
        m = 60_000
        reference = ForwardSampler(
            small_net, seed=5, engine="reference"
        ).sample(m)
        fast = ForwardSampler(small_net, seed=6, engine="cdf").sample(m)
        for column in range(small_net.n_variables):
            cardinality = small_net.cardinalities()[column]
            a = np.bincount(reference[:, column], minlength=cardinality) / m
            b = np.bincount(fast[:, column], minlength=cardinality) / m
            assert np.abs(a - b).max() < 0.02

    def test_unknown_engine_rejected(self, alarm_net):
        with pytest.raises(StreamError):
            ForwardSampler(alarm_net, seed=0, engine="vectorized")


class TestSampleEvent:
    def test_deterministic_and_closed(self, alarm_net):
        name = alarm_net.node_names[-1]
        a = ForwardSampler(alarm_net, seed=9)
        b = ForwardSampler(alarm_net, seed=9)
        for _ in range(50):
            event_a = a.sample_event([name])
            assert event_a == b.sample_event([name])
            assert name in event_a
            for node, value in event_a.items():
                cardinality = alarm_net.variable(node).cardinality
                assert 0 <= value < cardinality

    def test_engine_independent_stream(self, alarm_net):
        name = alarm_net.node_names[-1]
        events = [
            [ForwardSampler(alarm_net, seed=2, engine=e).sample_event([name])
             for _ in range(20)]
            for e in ENGINES
        ]
        assert events[0] == events[1]

    def test_empty_nodes_rejected(self, alarm_net):
        with pytest.raises(StreamError):
            ForwardSampler(alarm_net, seed=0).sample_event([])


class TestForwardSamplerSnapshot:
    def test_restore_mid_stream(self, alarm_net):
        sampler = ForwardSampler(alarm_net, seed=21)
        stream = sampler.sample_stream(4_000, chunk=500)
        prefix = [next(stream) for _ in range(4)]
        snapshot = sampler.state_dict()
        tail = list(stream)

        resumed = ForwardSampler(alarm_net, seed=999)
        resumed.load_state_dict(snapshot)
        resumed_tail = list(resumed.sample_stream(2_000, chunk=500))
        assert len(prefix) == 4
        for a, b in zip(tail, resumed_tail):
            assert np.array_equal(a, b)

    def test_engine_mismatch_rejected(self, alarm_net):
        snapshot = ForwardSampler(
            alarm_net, seed=1, engine="reference"
        ).state_dict()
        fast = ForwardSampler(alarm_net, seed=1, engine="cdf")
        with pytest.raises(StreamError):
            fast.load_state_dict(snapshot)

    def test_kind_mismatch_rejected(self, alarm_net):
        sampler = ForwardSampler(alarm_net, seed=1)
        sharded = ShardedSampler(alarm_net, shards=2, seed=1, mode="serial")
        with pytest.raises(StreamError):
            sampler.load_state_dict(sharded.state_dict())
        with pytest.raises(StreamError):
            sharded.load_state_dict(sampler.state_dict())


class TestShardedSampler:
    def test_modes_and_shard_counts_byte_identical(self, alarm_net):
        m, chunk = 4_000, 600
        reference = ShardedSampler(
            alarm_net, shards=1, seed=7, mode="serial"
        ).sample(m, chunk=chunk)
        for mode in ("serial", "thread"):
            for shards in (2, 3):
                stream = ShardedSampler(
                    alarm_net, shards=shards, seed=7, mode=mode
                ).sample(m, chunk=chunk)
                assert np.array_equal(reference, stream), (mode, shards)

    def test_process_mode_byte_identical(self, alarm_net):
        m, chunk = 1_200, 400
        reference = ShardedSampler(
            alarm_net, shards=2, seed=7, mode="serial"
        ).sample(m, chunk=chunk)
        stream = ShardedSampler(
            alarm_net, shards=2, seed=7, mode="process"
        ).sample(m, chunk=chunk)
        assert np.array_equal(reference, stream)

    def test_statistical_identity(self, alarm_net):
        data = ShardedSampler(
            alarm_net, shards=2, seed=8, mode="thread"
        ).sample(40_000, chunk=10_000)
        assert _max_cpd_chi2_z(alarm_net, data) < CHI2_Z_THRESHOLD

    def test_cursor_snapshot_resumes(self, alarm_net):
        sampler = ShardedSampler(alarm_net, shards=2, seed=9, mode="serial")
        stream = sampler.sample_stream(3_000, chunk=500)
        for _ in range(3):
            next(stream)
        snapshot = sampler.state_dict()
        tail = np.concatenate(list(stream))

        resumed = ShardedSampler(alarm_net, shards=3, seed=0, mode="thread")
        resumed.load_state_dict(snapshot)
        resumed_tail = resumed.sample(1_500, chunk=500)
        assert np.array_equal(tail, resumed_tail)

    def test_validation(self, alarm_net):
        with pytest.raises(StreamError):
            ShardedSampler(alarm_net, mode="fork")
        with pytest.raises(StreamError):
            ShardedSampler(alarm_net, seed=np.random.default_rng(0))
        with pytest.raises(StreamError):
            ShardedSampler(alarm_net, seed=1, engine="nope")
        assert SHARD_MODES == ("serial", "thread", "process")


class TestSessionIntegration:
    def test_session_sampler_feeds_ingest(self, alarm_net):
        def session():
            spec = EstimatorSpec(
                network=alarm_net, algorithm="exact", eps=0.3, n_sites=4,
                seed=13,
            )
            return MonitoringSession(spec, network=alarm_net)

        direct = session()
        direct.ingest_sampler(
            ForwardSampler(alarm_net, seed=5), 2_000, chunk=500
        )
        via_api = session()
        via_api.ingest_sampler(via_api.sampler(seed=5), 2_000, chunk=500)
        assert direct.total_messages == via_api.total_messages
        assert np.array_equal(
            direct.estimator.bank._local, via_api.estimator.bank._local
        )

    def test_session_sampler_sharded(self, alarm_net):
        spec = EstimatorSpec(
            network=alarm_net, algorithm="exact", eps=0.3, n_sites=4,
            seed=13,
        )
        serial = MonitoringSession(spec, network=alarm_net)
        serial.ingest_sampler(
            serial.sampler(seed=5, mode="serial", shards=2),
            2_000, chunk=500,
        )
        threaded = MonitoringSession(spec, network=alarm_net)
        threaded.ingest_sampler(
            threaded.sampler(seed=5, mode="thread", shards=2),
            2_000, chunk=500,
        )
        assert serial.total_messages == threaded.total_messages
        assert np.array_equal(
            serial.estimator.bank._local, threaded.estimator.bank._local
        )


class TestSamplerBenchmark:
    def test_document_shape_and_checks(self, alarm_net):
        document = benchmark_sampler_engines(
            alarm_net, n_events=6_000, chunk=2_000, repeats=1, shards=2,
        )
        assert document["benchmark"] == "sampler-engines"
        assert document["draws_deterministic"] is True
        engines = [r["engine"] for r in document["results"]]
        assert engines == ["reference", "cdf"]
        assert all(
            r["max_chi2_z"] < CHI2_Z_THRESHOLD for r in document["results"]
        )
        assert "speedup_vs_reference" in document["results"][1]
        sharded = document["sharded"]
        assert sharded["modes_identical"] is True
        assert [r["mode"] for r in sharded["results"]] == ["serial", "thread"]

    def test_sharded_block_optional(self, small_net):
        document = benchmark_sampler_engines(
            small_net, n_events=2_000, chunk=1_000, repeats=1,
            shard_modes=(),
        )
        assert "sharded" not in document
