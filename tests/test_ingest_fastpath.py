"""The paper-scale ingest fast path: encoders, engines, zero-copy pipeline.

Pins the determinism contracts this PR introduced:

- the batch-encoder equivalence matrix — dense dgemm, sparse segment-sum,
  and the per-variable-loop reference produce byte-identical counter ids
  and leave every bank byte-identical on ALARM and the LINK/MUNIN
  stand-ins;
- the deterministic counter bank's vectorized threshold engine is
  byte-identical to the scalar reference;
- ``bulk_add_table`` (the dense-histogram bank entry point) matches
  ``bulk_add_grouped`` for every bank;
- the fused zero-copy sampler/session path (``sample_into``,
  ``reuse_buffer`` streams, ``ingest_sampler``, ``validate=False``)
  reproduces the allocating path byte-for-byte;
- the partitioner fixes — ``site_shares`` no longer perturbs the live
  assignment stream, and the Zipf searchsorted draw matches the old
  ``rng.choice`` stream;
- the stage profiler measures without altering results, and
  ``strip_timing`` canonicalizes every timing-derived field.
"""

import numpy as np
import pytest

from repro import EstimatorSpec, ForwardSampler, UniformPartitioner
from repro.bn.repository import link_like, munin_like
from repro.counters.deterministic import (
    DETERMINISTIC_ENGINES,
    DeterministicCounterBank,
)
from repro.counters.exact import ExactCounterBank
from repro.counters.hyz import HYZCounterBank
from repro.errors import CounterError, SpecError, StreamError
from repro.experiments.bench import benchmark_ingest_stages
from repro.experiments.results import strip_timing
from repro.monitoring.stream import (
    RoundRobinPartitioner,
    ZipfPartitioner,
    make_partitioner,
)

ENCODERS = ("loop", "dense", "sparse")


@pytest.fixture(scope="module")
def link_net():
    return link_like()


@pytest.fixture(scope="module")
def munin_net():
    return munin_like()


def _workload(net, m, k, *, seed=0):
    data = ForwardSampler(net, seed=seed).sample(m)
    sites = UniformPartitioner(k, seed=seed + 1).assign(m)
    return data, sites


# ---------------------------------------------------------------------------
# Encoder equivalence matrix
# ---------------------------------------------------------------------------
def _net_by_name(name, alarm_net, link_net, munin_net):
    return {"alarm": alarm_net, "link": link_net, "munin": munin_net}[name]


@pytest.mark.parametrize("net_name", ["alarm", "link", "munin"])
def test_encoders_emit_identical_joint_ids(
    net_name, alarm_net, link_net, munin_net
):
    net = _net_by_name(net_name, alarm_net, link_net, munin_net)
    data, _ = _workload(net, 400, 4)
    spec = EstimatorSpec(net, "exact", n_sites=4)
    reference = spec.build(network=net, encoder="loop")
    joint_ref = reference._encode_batch(data)[:, : net.n_variables]

    dense = spec.build(network=net, encoder="dense")
    assert np.array_equal(dense._encode_joint(data), joint_ref)

    sparse = spec.build(network=net, encoder="sparse")
    # Sparse ids are transposed, rows in natural variable order.
    assert np.array_equal(sparse._encode_joint(data).T, joint_ref)
    # The fused per-event offset lands on every variable's id.
    keys = np.arange(data.shape[0], dtype=np.int64) * np.int64(3)
    assert np.array_equal(
        sparse._encode_joint(data, keys).T, joint_ref + keys[:, None]
    )


@pytest.mark.parametrize("net_name,m", [
    ("alarm", 2_000), ("link", 600), ("munin", 500),
])
@pytest.mark.parametrize("algorithm", ["exact", "nonuniform"])
def test_encoder_matrix_byte_identical_banks(
    net_name, m, algorithm, alarm_net, link_net, munin_net
):
    """Every (encoder, strategy) pair must match the masked reference."""
    net = _net_by_name(net_name, alarm_net, link_net, munin_net)
    k = 5
    data, sites = _workload(net, m, k, seed=3)
    spec = EstimatorSpec(net, algorithm, eps=0.3, n_sites=k, seed=11)

    def run(encoder, strategy):
        estimator = spec.build(network=net, encoder=encoder)
        # Two chunks so buffer reuse spans update calls.
        estimator.update_batch(data[: m // 2], sites[: m // 2],
                               strategy=strategy)
        estimator.update_batch(data[m // 2:], sites[m // 2:],
                               strategy=strategy)
        return (
            estimator.bank._local.copy(),
            estimator.bank.estimates(),
            estimator.total_messages,
            estimator.bank.message_log.snapshot(),
        )

    reference = run("loop", "masked")
    for encoder in ENCODERS:
        for strategy in ("dense", "argsort"):
            local, estimates, messages, snapshot = run(encoder, strategy)
            label = f"{encoder}/{strategy}"
            assert np.array_equal(reference[0], local), label
            assert np.array_equal(reference[1], estimates), label
            assert reference[2] == messages, label
            assert reference[3] == snapshot, label


def test_auto_encoder_selection(alarm_net, link_net):
    # Regression for the auto-crossover bug: the committed ALARM profile
    # (benchmarks/BENCH_ingest_alarm.json, n=37) shows the sparse encoder
    # beating the dense dgemm at small n too, so "auto" must resolve to
    # "sparse" at every size; "dense" stays selectable by name only.
    spec = EstimatorSpec(alarm_net, "exact", n_sites=3)
    assert spec.build(network=alarm_net).encoder == "sparse"
    assert spec.build(network=alarm_net, encoder="dense").encoder == "dense"
    spec_large = EstimatorSpec(link_net, "exact", n_sites=3)
    assert spec_large.build(network=link_net).encoder == "sparse"
    with pytest.raises(StreamError):
        spec.build(network=alarm_net, encoder="nope")


def test_profiling_hooks_do_not_alter_results(alarm_net):
    data, sites = _workload(alarm_net, 1_500, 6, seed=5)
    spec = EstimatorSpec(alarm_net, "nonuniform", eps=0.2, n_sites=6, seed=7)
    plain = spec.build(network=alarm_net)
    plain.update_batch(data, sites)
    profiled = spec.build(network=alarm_net)
    profiled.stage_times = {"encode": 0.0, "update": 0.0}
    profiled.update_batch(data, sites)
    assert profiled.stage_times["encode"] > 0.0
    assert profiled.stage_times["update"] > 0.0
    assert np.array_equal(plain.bank._local, profiled.bank._local)
    assert np.array_equal(plain.bank.estimates(), profiled.bank.estimates())
    assert plain.total_messages == profiled.total_messages


# ---------------------------------------------------------------------------
# Deterministic bank engines
# ---------------------------------------------------------------------------
def _deterministic_pair(n_counters, n_sites, eps):
    return tuple(
        DeterministicCounterBank(n_counters, n_sites, eps, engine=engine)
        for engine in DETERMINISTIC_ENGINES
    )


def test_deterministic_engines_byte_identical_random_traffic():
    rng = np.random.default_rng(19)
    eps = rng.uniform(0.02, 0.6, size=60)
    vectorized, scalar = _deterministic_pair(60, 7, eps)
    for _ in range(12):
        size = int(rng.integers(1, 200))
        counter_ids = rng.integers(0, 60, size=size)
        site_ids = rng.integers(0, 7, size=size)
        counts = rng.integers(1, 500, size=size)
        for bank in (vectorized, scalar):
            bank.bulk_add(counter_ids, site_ids, counts)
    assert np.array_equal(vectorized._local, scalar._local)
    assert np.array_equal(vectorized._reported, scalar._reported)
    assert np.array_equal(
        vectorized._next_threshold, scalar._next_threshold
    )
    assert np.array_equal(vectorized.estimates(), scalar.estimates())
    assert vectorized.total_messages == scalar.total_messages
    assert (
        vectorized.message_log.snapshot() == scalar.message_log.snapshot()
    )
    lower_v, upper_v = vectorized.guaranteed_bounds()
    lower_s, upper_s = scalar.guaranteed_bounds()
    assert np.array_equal(lower_v, lower_s)
    assert np.array_equal(upper_v, upper_s)


def test_deterministic_engines_identical_through_estimator(alarm_net):
    data, sites = _workload(alarm_net, 2_000, 6, seed=9)
    states = {}
    for engine in DETERMINISTIC_ENGINES:
        spec = EstimatorSpec(
            alarm_net, "uniform", eps=0.4, n_sites=6, seed=5,
            counter_backend="deterministic", deterministic_engine=engine,
        )
        estimator = spec.build(network=alarm_net)
        estimator.update_batch(data, sites)
        states[engine] = (
            estimator.bank._local.copy(),
            estimator.bank.estimates(),
            estimator.total_messages,
        )
    vectorized, scalar = states["vectorized"], states["scalar"]
    assert np.array_equal(vectorized[0], scalar[0])
    assert np.array_equal(vectorized[1], scalar[1])
    assert vectorized[2] == scalar[2]


def test_deterministic_engine_spec_plumbing(alarm_net):
    with pytest.raises(CounterError):
        DeterministicCounterBank(4, 2, 0.3, engine="turbo")
    with pytest.raises(SpecError):
        EstimatorSpec(alarm_net, "uniform", counter_backend="deterministic",
                      deterministic_engine="turbo")
    spec = EstimatorSpec(alarm_net, "uniform", eps=0.3,
                         counter_backend="deterministic",
                         deterministic_engine="scalar")
    assert spec.build(network=alarm_net).bank.engine == "scalar"
    restored = EstimatorSpec.from_dict(spec.to_dict())
    assert restored.deterministic_engine == "scalar"
    # Old snapshots without the field default to the vectorized engine.
    payload = spec.to_dict()
    del payload["deterministic_engine"]
    assert EstimatorSpec.from_dict(payload).deterministic_engine == "vectorized"


# ---------------------------------------------------------------------------
# bulk_add_table
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bank_factory", [
    lambda: ExactCounterBank(40, 5),
    lambda: DeterministicCounterBank(40, 5, 0.25),
    lambda: DeterministicCounterBank(40, 5, 0.25, engine="scalar"),
    lambda: HYZCounterBank(40, 5, 0.3, seed=21),
])
def test_bulk_add_table_matches_grouped(bank_factory):
    rng = np.random.default_rng(33)
    via_table = bank_factory()
    via_triples = bank_factory()
    for _ in range(5):
        table = rng.integers(0, 30, size=(5, 40))
        table[rng.random(table.shape) < 0.4] = 0
        via_table.bulk_add_table(table)
        flat = np.flatnonzero(table)
        via_triples.bulk_add_grouped(
            flat // 40, flat % 40, table.ravel()[flat]
        )
    assert np.array_equal(via_table._local, via_triples._local)
    assert np.array_equal(via_table.estimates(), via_triples.estimates())
    assert via_table.total_messages == via_triples.total_messages
    assert (
        via_table.message_log.snapshot() == via_triples.message_log.snapshot()
    )


def test_bulk_add_table_validation():
    bank = ExactCounterBank(8, 3)
    with pytest.raises(CounterError):
        bank.bulk_add_table(np.zeros((2, 8), dtype=np.int64))
    with pytest.raises(CounterError):
        bank.bulk_add_table(np.full((3, 8), -1))
    bank.bulk_add_table(np.zeros((3, 8), dtype=np.int64))  # silent no-op
    assert bank.total_messages == 0


# ---------------------------------------------------------------------------
# Zero-copy sampling and fused session ingest
# ---------------------------------------------------------------------------
def test_sample_into_matches_sample(alarm_net):
    reference = ForwardSampler(alarm_net, seed=12).sample(500)
    buffer = np.empty((500, alarm_net.n_variables), dtype=np.int64)
    out = ForwardSampler(alarm_net, seed=12).sample_into(buffer)
    assert out is buffer
    assert np.array_equal(reference, buffer)
    # F-ordered buffers (the fused-pipeline layout) draw the same values.
    storage = np.empty((alarm_net.n_variables, 500), dtype=np.int64)
    ForwardSampler(alarm_net, seed=12).sample_into(storage.T)
    assert np.array_equal(reference, storage.T)
    with pytest.raises(StreamError):
        ForwardSampler(alarm_net, seed=12).sample_into(
            np.empty((5, 3), dtype=np.int64)
        )
    with pytest.raises(StreamError):
        ForwardSampler(alarm_net, seed=12).sample_into(
            np.empty((5, alarm_net.n_variables), dtype=np.int32)
        )


def test_sample_stream_reuse_buffer(alarm_net):
    reference = np.concatenate(
        list(ForwardSampler(alarm_net, seed=4).sample_stream(700, chunk=300))
    )
    chunks = []
    stream = ForwardSampler(alarm_net, seed=4).sample_stream(
        700, chunk=300, reuse_buffer=True
    )
    base = None
    for batch in stream:
        if base is not None:
            assert batch.base is base.base or batch.base is base
        base = batch
        chunks.append(batch.copy())  # views are overwritten next iteration
    assert [c.shape[0] for c in chunks] == [300, 300, 100]
    assert np.array_equal(np.concatenate(chunks), reference)


def test_ingest_sampler_matches_allocating_path(link_net):
    spec = EstimatorSpec(link_net, "nonuniform", eps=0.3, n_sites=4, seed=42)
    fused = spec.session()
    total = fused.ingest_sampler(
        ForwardSampler(link_net, seed=8), 900, chunk=400
    )
    assert total == 900
    reference = spec.session()
    reference.ingest_stream(
        ForwardSampler(link_net, seed=8).sample_stream(900, chunk=400)
    )
    assert np.array_equal(fused.estimates(), reference.estimates())
    assert fused.metrics() == reference.metrics()


def test_update_batch_validate_flag(alarm_net):
    data, sites = _workload(alarm_net, 300, 4)
    spec = EstimatorSpec(alarm_net, "exact", n_sites=4, seed=1)
    checked = spec.build(network=alarm_net)
    checked.update_batch(data, sites)
    trusted = spec.build(network=alarm_net)
    trusted.update_batch(data, sites, validate=False)
    assert np.array_equal(checked.bank._local, trusted.bank._local)
    bad = data.copy()
    bad[0, 0] = 99
    with pytest.raises(StreamError):
        checked.update_batch(bad, sites)
    # Shape errors surface even without validation.
    with pytest.raises(StreamError):
        trusted.update_batch(data[:, :-1], sites, validate=False)


# ---------------------------------------------------------------------------
# Partitioner fixes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ["uniform", "zipf", "round-robin"])
def test_site_shares_does_not_perturb_stream(name):
    probe = make_partitioner(name, 6, seed=31)
    untouched = make_partitioner(name, 6, seed=31)
    probe.assign(100)
    untouched.assign(100)
    shares = probe.site_shares(2_000)
    assert shares.shape == (6,)
    assert shares.sum() == pytest.approx(1.0)
    # The live stream continues byte-identically after the probe.
    assert np.array_equal(probe.assign(300), untouched.assign(300))


@pytest.mark.parametrize("name", ["uniform", "zipf", "round-robin"])
def test_preview_matches_next_assign(name):
    partitioner = make_partitioner(name, 5, seed=13)
    partitioner.assign(57)
    upcoming = partitioner.preview(200)
    assert np.array_equal(upcoming, partitioner.assign(200))


def test_zipf_searchsorted_matches_choice_stream():
    """The precomputed-CDF draw consumes the identical uniform stream
    ``Generator.choice(p=...)`` did, so the site assignments match the
    pre-searchsorted implementation draw for draw."""
    partitioner = ZipfPartitioner(8, exponent=1.3, seed=99)
    reference_rng = np.random.default_rng(99)
    expected = reference_rng.choice(
        8, size=5_000, p=partitioner._probabilities
    )
    assert np.array_equal(partitioner.assign(5_000), expected)


def test_zipf_statistical_shares():
    partitioner = ZipfPartitioner(5, exponent=1.0, seed=3)
    shares = partitioner.site_shares(200_000)
    assert np.allclose(shares, partitioner._probabilities, atol=0.01)
    # Snapshot round-trip keeps the assignment stream byte-identical.
    state = partitioner.state_dict()
    first = partitioner.assign(400)
    partitioner.load_state_dict(state)
    assert np.array_equal(first, partitioner.assign(400))


def test_round_robin_site_shares_keeps_cursor():
    partitioner = RoundRobinPartitioner(4, start=2)
    partitioner.site_shares(10)
    assert np.array_equal(partitioner.assign(4), [2, 3, 0, 1])


# ---------------------------------------------------------------------------
# Stage profiler and timing canonicalization
# ---------------------------------------------------------------------------
def test_benchmark_ingest_stages_document(alarm_net):
    document = benchmark_ingest_stages(
        alarm_net, algorithm="nonuniform", eps=0.3, n_sites=4,
        n_events=600, chunk=250, seed=0, encoders=("loop", "dense", "sparse"),
    )
    assert document["benchmark"] == "ingest-stages"
    assert document["states_identical"] is True
    assert document["baseline_encoder"] == "loop"
    assert [r["encoder"] for r in document["results"]] == [
        "loop", "dense", "sparse"
    ]
    for entry in document["results"]:
        stages = {s["stage"] for s in entry["stages"]}
        assert stages == {"sample", "partition", "encode", "update"}
        assert entry["ingest_wall_seconds"] > 0
        assert entry["total_messages"] > 0
    assert document["results"][1]["speedup_vs_loop"] > 0
    with pytest.raises(ValueError):
        benchmark_ingest_stages(alarm_net, n_events=100, encoders=("bogus",))


def test_strip_timing_zeroes_derived_fields():
    payload = {
        "wall_seconds": 1.5,
        "ingest_wall_seconds": 0.7,
        "events_per_second": 1000.0,
        "ingest_events_per_second": 2000.0,
        "speedup_vs_loop": 5.4,
        "ms_per_batch": 3.2,
        "runtime": {"runtime_seconds": 42.0},
        "results": [{"wall_seconds": 9.9, "total_messages": 7}],
    }
    stripped = strip_timing(payload)
    assert stripped["wall_seconds"] == 0.0
    assert stripped["ingest_wall_seconds"] == 0.0
    assert stripped["events_per_second"] == 0.0
    assert stripped["ingest_events_per_second"] == 0.0
    assert stripped["speedup_vs_loop"] == 0.0
    assert stripped["ms_per_batch"] == 0.0
    assert stripped["results"][0] == {"wall_seconds": 0.0, "total_messages": 7}
    # The modeled runtime block is deterministic and must survive.
    assert stripped["runtime"]["runtime_seconds"] == 42.0
