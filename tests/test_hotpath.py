"""Regression pinning: every update strategy leaves banks byte-identical.

The argsort/dense sharded paths must reproduce the legacy per-site-mask
path's counter states exactly — including the randomized HYZ bank, whose
RNG stream must be consumed in the same order by every grouping strategy.
"""

import numpy as np
import pytest

from repro import (
    EstimatorSpec,
    ForwardSampler,
    UniformPartitioner,
    benchmark_hyz_engines,
    benchmark_update_strategies,
)


def make_estimator(net, algorithm, **kwargs):
    return EstimatorSpec(net, algorithm, **kwargs).build()

STRATEGIES = ("masked", "argsort", "dense", "auto")


def _states_after(net, algorithm, strategy, *, eps=0.3, k=10, m=3_000, seed=7):
    estimator = make_estimator(net, algorithm, eps=eps, n_sites=k, seed=seed)
    data = ForwardSampler(net, seed=1).sample(m)
    sites = UniformPartitioner(k, seed=2).assign(m)
    # Two chunks so round transitions span update calls.
    estimator.update_batch(data[: m // 2], sites[: m // 2], strategy=strategy)
    estimator.update_batch(data[m // 2 :], sites[m // 2 :], strategy=strategy)
    return (
        estimator.bank._local.copy(),
        estimator.bank.estimates(),
        estimator.total_messages,
        estimator.bank.message_log.snapshot(),
    )


@pytest.mark.parametrize("algorithm", ["exact", "nonuniform", "baseline"])
def test_strategies_byte_identical(alarm_net, algorithm):
    reference = _states_after(alarm_net, algorithm, "masked")
    for strategy in STRATEGIES[1:]:
        local, estimates, messages, snapshot = _states_after(
            alarm_net, algorithm, strategy
        )
        assert np.array_equal(reference[0], local), strategy
        assert np.array_equal(reference[1], estimates), strategy
        assert reference[2] == messages, strategy
        assert reference[3] == snapshot, strategy


def test_deterministic_backend_strategies_identical(alarm_net):
    ref = None
    for strategy in STRATEGIES:
        estimator = make_estimator(
            alarm_net, "uniform", eps=0.4, n_sites=6, seed=5,
            counter_backend="deterministic",
        )
        data = ForwardSampler(alarm_net, seed=3).sample(2_000)
        sites = UniformPartitioner(6, seed=4).assign(2_000)
        estimator.update_batch(data, sites, strategy=strategy)
        state = (estimator.bank._local.copy(), estimator.total_messages)
        if ref is None:
            ref = state
        else:
            assert np.array_equal(ref[0], state[0]), strategy
            assert ref[1] == state[1], strategy


def test_encode_halves_matches_reference_encoder(alarm_net):
    estimator = make_estimator(alarm_net, "exact", n_sites=4)
    data = ForwardSampler(alarm_net, seed=17).sample(1_000)
    ids = estimator._encode_batch(data)
    joint, parent = estimator._encode_halves(data)
    assert np.array_equal(ids, np.concatenate([joint, parent], axis=1))
    # Force the large-network fallback and check it agrees with the dgemm.
    estimator._stride_matrix = None
    joint2, parent2 = estimator._encode_halves(data)
    assert np.array_equal(joint, joint2)
    assert np.array_equal(parent, parent2)


def test_benchmark_verifies_and_reports_speedup(alarm_net):
    document = benchmark_update_strategies(
        alarm_net, n_sites=8, n_events=2_000, repeats=1, seed=0
    )
    assert document["states_identical"] is True
    strategies = [entry["strategy"] for entry in document["results"]]
    assert strategies[0] == "masked"
    assert {"argsort", "dense"} <= set(strategies)
    for entry in document["results"][1:]:
        assert entry["speedup_vs_masked"] > 0


def test_hyz_engine_benchmark_cross_checks_and_reports(alarm_net):
    document = benchmark_hyz_engines(
        alarm_net, algorithm="nonuniform", eps=0.2, n_sites=6,
        n_events=2_000, repeats=1, seed=0,
    )
    assert document["messages_consistent"] is True
    engines = [entry["engine"] for entry in document["results"]]
    assert engines == ["sequential", "vectorized"]
    assert document["results"][1]["speedup_vs_sequential"] > 0
    for entry in document["results"]:
        assert entry["total_messages"] > 0
        # Estimates stay usable: aggregate relative error well under 100%.
        assert entry["mean_relative_error"] < 0.5
