"""Shared fault-injection helpers for the distributed and executor suites.

The runtime's transports accept *declarative* fault specs — plain dicts,
so they pickle into spawn-started workers unchanged (see
``repro.dist.transport``).  These helpers build the specs, and
:class:`DieOnceMarker` manages the marker file behind the
die-once-then-recover pattern both the dist suite and ``test_exec.py``'s
chunked worker-death tests rely on.
"""

from __future__ import annotations

import os

from repro.dist.recovery import CRASH_POINTS
from repro.dist.transport import FAULT_EXIT_CODE, create_once

__all__ = [
    "CRASH_POINTS",
    "FAULT_EXIT_CODE",
    "DieOnceMarker",
    "coordinator_crash",
    "kill_after",
    "delay_send",
    "delay_recv",
    "sever_after",
    "drop_sends",
    "sockbuf",
    "discard_frames",
    "merge",
]


class DieOnceMarker:
    """A marker file arming exactly one injected death.

    The first worker to create the marker dies; respawned incarnations
    see it and survive, so a faulty run recovers deterministically.
    ``fired`` reports whether any worker took the fault — the assertion
    that a crash-recovery test actually exercised the crash.
    """

    def __init__(self, directory, name: str = "die-once") -> None:
        self.path = str(os.path.join(str(directory), name))

    @property
    def fired(self) -> bool:
        return os.path.exists(self.path)

    def arm(self) -> bool:
        """Claim the marker from the driver side (see ``create_once``)."""
        return create_once(self.path)

    def reset(self) -> None:
        """Disarm and re-arm: the next observer dies again."""
        if self.fired:
            os.remove(self.path)


def coordinator_crash(seq: int, point: str) -> dict:
    """Kill the *coordinator* at a named durability point of round ``seq``.

    ``point`` is one of :data:`~repro.dist.recovery.CRASH_POINTS`:
    ``pre-append`` (round lost, recovery replays nothing for it),
    ``post-append`` (round durable but unapplied — recovery must replay
    it), or ``mid-checkpoint`` (torn snapshot bundle left behind — the
    stale-``meta.json`` discipline must ignore it).  The spec is consumed
    by :class:`~repro.dist.recovery.DurableCoordinator` via the
    ``wal_crash`` session kwarg and fires ``os._exit(FAULT_EXIT_CODE)``.
    """
    if point not in CRASH_POINTS:
        raise ValueError(f"unknown crash point {point!r}; "
                         f"expected one of {CRASH_POINTS}")
    return {"seq": int(seq), "point": str(point)}


def kill_after(sends: int, marker: DieOnceMarker | str | None = None) -> dict:
    """Die abruptly (``os._exit``) before the ``sends + 1``-th send.

    With a ``marker`` only the first incarnation dies (the recovery
    pattern); without one every incarnation dies, which turns a
    respawning driver into a permanent-failure test.
    """
    spec = {"kill_after_sends": int(sends)}
    if marker is not None:
        spec["once_marker"] = (
            marker.path if isinstance(marker, DieOnceMarker) else str(marker)
        )
    return spec


def delay_send(seconds: float) -> dict:
    """Sleep before every send — a slow producer."""
    return {"delay_send": float(seconds)}


def delay_recv(seconds: float) -> dict:
    """Sleep after every receive — a slow consumer (backpressure source)."""
    return {"delay_recv": float(seconds)}


def sever_after(sends: int, marker: DieOnceMarker | str | None = None) -> dict:
    """Abruptly close the TCP connection before the ``sends + 1``-th send.

    A simulated network cut (``repro.net`` transports only): the process
    survives and re-dials, so this exercises reconnect + replay rather
    than respawn.  A ``marker`` arms the cut exactly once.
    """
    spec = {"sever_after_sends": int(sends)}
    if marker is not None:
        spec["sever_marker"] = (
            marker.path if isinstance(marker, DieOnceMarker) else str(marker)
        )
    return spec


def drop_sends(frames: int) -> dict:
    """Silently discard the first N payload frames instead of sending."""
    return {"drop_sends": int(frames)}


def sockbuf(nbytes: int) -> dict:
    """Shrink SO_SNDBUF/SO_RCVBUF — the narrow-pipe backpressure fault."""
    return {"sockbuf": int(nbytes)}


def discard_frames(frames: int) -> dict:
    """Listener-side: eat the first N decoded frames and sever the
    connection — deterministic in-flight loss for the replay tests."""
    return {"discard_frames": int(frames)}


def merge(*specs: dict) -> dict:
    """Combine fault specs; later specs win on key conflicts."""
    merged: dict = {}
    for spec in specs:
        merged.update(spec)
    return merged
