"""Tests for the execution layer: tasks, executors, and equivalence.

The load-bearing guarantees:

- serial, multiprocess, and chunked executors produce **identical**
  ``repro-bench-v1`` documents for the same grid (wall-clock fields
  canonicalized away by ``strip_timing`` — everything else is a pure
  function of the task descriptors);
- a chunked run killed mid-stream and resumed matches an uninterrupted
  one, and a chunked run whose segment worker dies abruptly recovers
  from the last snapshot bundle;
- resume caching keys on the full descriptor hash, so reordered or
  extended grids reuse exactly the matching cells.
"""

import json
import os
import sys
import types

import pytest

from repro.errors import EvaluationError, ExecutionError
from repro.exec import (
    ChunkedExecutor,
    MultiprocessExecutor,
    RunTask,
    SerialExecutor,
    executor_names,
    get_executor,
    make_executor,
    register_executor,
)
from repro.experiments import ExperimentRunner, strip_timing
from repro.experiments import figures
from repro.experiments.cli import main
from repro.experiments.presets import long_crossover_experiment
from repro.utils.tabletext import format_ascii_plot

#: One small grid reused across equivalence tests (two algorithms so the
#: multiprocess pool actually fans out).
GRID = dict(
    networks=["alarm"],
    algorithms=["uniform", "nonuniform"],
    eps_values=[0.2],
    site_counts=[3],
    n_events=800,
    checkpoints=4,
)


def canonical(result) -> str:
    """A document's bytes with wall-clock measurements zeroed."""
    return json.dumps(strip_timing(result.to_dict()), sort_keys=True)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(eval_events=100, seed=7)


@pytest.fixture(scope="module")
def reference(runner):
    """The serial executor's document for GRID (the contract baseline)."""
    return canonical(runner.run_grid("equivalence", **GRID))


class TestRunTask:
    def test_roundtrip_and_json(self):
        task = RunTask(
            network="alarm", algorithm="nonuniform", n_events=1000,
            checkpoints=(500, 1000),
        )
        payload = json.loads(json.dumps(task.to_dict()))
        assert RunTask.from_dict(payload) == task

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RunTask(network="alarm", algorithm="nonuniform",
                    n_events=1000, checkpoints=())
        with pytest.raises(ExecutionError):
            RunTask(network="alarm", algorithm="nonuniform",
                    n_events=1000, checkpoints=(500, 900))
        with pytest.raises(ExecutionError):
            RunTask(network=42, algorithm="nonuniform",
                    n_events=1000, checkpoints=(1000,))

    def test_cache_key_covers_every_field(self):
        task = RunTask(
            network="alarm", algorithm="nonuniform", n_events=1000,
            checkpoints=(500, 1000),
        )
        variants = [
            task.replace(eps=0.3),
            task.replace(seed=1),
            task.replace(update_strategy="masked"),
            task.replace(chunk_size=5000),
            task.replace(eval_events=500),
            task.replace(checkpoints=(250, 500, 1000)),
        ]
        keys = {task.cache_key, *(v.cache_key for v in variants)}
        assert len(keys) == 1 + len(variants)

    def test_inline_network_resolves(self, alarm_net):
        from repro.bn.io import network_to_dict

        task = RunTask(
            network={"inline": network_to_dict(alarm_net)},
            algorithm="exact", n_events=100, checkpoints=(100,),
        )
        assert task.network_name == alarm_net.name
        assert task.resolve_network().n_variables == alarm_net.n_variables


class TestRegistry:
    def test_builtins_registered(self):
        assert set(executor_names()) >= {"serial", "multiprocess", "chunked"}
        assert get_executor("serial").name == "serial"

    def test_duplicate_rejected(self):
        with pytest.raises(ExecutionError):
            register_executor("serial", lambda options: SerialExecutor())

    def test_make_executor(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        built = make_executor("multiprocess", jobs=2)
        assert isinstance(built, MultiprocessExecutor) and built.jobs == 2
        with pytest.raises(ExecutionError):
            make_executor("serial", jobs=2)
        with pytest.raises(ExecutionError):
            make_executor("no-such-executor")
        instance = ChunkedExecutor(segment_events=100)
        assert make_executor(instance) is instance
        with pytest.raises(ExecutionError):
            make_executor(instance, jobs=2)

    def test_duplicate_tasks_rejected(self, runner):
        task = runner.plan_grid(**GRID)[0]
        with pytest.raises(ExecutionError, match="duplicate"):
            SerialExecutor().run([task, task])


class TestExecutorEquivalence:
    def test_multiprocess_matches_serial(self, runner, reference):
        result = runner.run_grid(
            "equivalence", executor="multiprocess", jobs=2, **GRID
        )
        assert canonical(result) == reference

    def test_chunked_matches_serial(self, runner, reference):
        result = runner.run_grid(
            "equivalence", executor=ChunkedExecutor(jobs=2), **GRID
        )
        assert canonical(result) == reference

    def test_segment_events_coarsening_matches_serial(self, runner, reference):
        result = runner.run_grid(
            "equivalence",
            executor=ChunkedExecutor(segment_events=400),
            **GRID,
        )
        assert canonical(result) == reference

    def test_resume_cache_shared_across_executors(
        self, runner, reference, tmp_path
    ):
        first = runner.run_grid(
            "equivalence", resume_dir=tmp_path, **GRID
        )
        cached = runner.run_grid(
            "equivalence", executor="multiprocess", jobs=2,
            resume_dir=tmp_path, **GRID
        )
        # The second invocation loads every cell from cache, so even the
        # wall-clock fields survive verbatim.
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            cached.to_dict(), sort_keys=True
        )
        assert canonical(cached) == reference


class TestChunkedRecovery:
    def test_interrupt_then_resume_matches_uninterrupted(
        self, runner, reference, tmp_path
    ):
        resume = tmp_path / "resume"
        partial = runner.run_grid(
            "equivalence", executor="chunked", resume_dir=resume,
            stop_after=400, **GRID
        )
        assert len(partial.runs) == 0
        assert len(partial.params["incomplete_runs"]) == 2
        assert list(resume.glob("*.ckpt"))
        finished = runner.run_grid(
            "equivalence", executor="chunked", resume_dir=resume, **GRID
        )
        assert "incomplete_runs" not in finished.params
        assert canonical(finished) == reference

    def test_worker_death_recovers_from_bundle(
        self, runner, reference, tmp_path
    ):
        from dist_faults import DieOnceMarker

        marker = DieOnceMarker(tmp_path)
        executor = ChunkedExecutor()
        executor._fault_marker = marker.path
        result = runner.run_grid("equivalence", executor=executor, **GRID)
        assert marker.fired  # a worker did die
        assert canonical(result) == reference

    def test_permanent_failure_raises(self, runner, tmp_path):
        from dist_faults import DieOnceMarker

        marker = DieOnceMarker(tmp_path)
        executor = ChunkedExecutor(max_retries=0)
        executor._fault_marker = marker.path
        with pytest.raises(ExecutionError, match="segment worker"):
            runner.run_grid("equivalence", executor=executor, **GRID)
        assert marker.fired


class TestSnapshotAtomicity:
    """The bundle invariants the chunked recovery path stands on."""

    def _session(self):
        from repro.api import EstimatorSpec

        return EstimatorSpec(
            "alarm", "nonuniform", eps=0.3, n_sites=3, seed=0
        ).session()

    def test_resnapshot_leaves_one_consistent_arrays_file(self, tmp_path):
        from repro.api import MonitoringSession
        from repro.bn.sampling import ForwardSampler

        session = self._session()
        sampler = ForwardSampler(session.network, seed=1)
        bundle = tmp_path / "snap"
        session.ingest(sampler.sample(200))
        session.snapshot(bundle)
        session.ingest(sampler.sample(200))
        session.snapshot(bundle)
        meta = MonitoringSession.peek(bundle)
        npz = [p.name for p in bundle.glob("*.npz")]
        assert npz == [meta["arrays"]]
        assert not list(bundle.glob(".tmp-*"))
        restored = MonitoringSession.restore(bundle)
        assert restored.events_seen == 400

    def test_corrupt_meta_raises_session_error(self, tmp_path):
        from repro.api import MonitoringSession
        from repro.errors import SessionError

        bundle = tmp_path / "snap"
        bundle.mkdir()
        (bundle / "meta.json").write_text('{"schema": "repro-sess')
        with pytest.raises(SessionError, match="corrupt"):
            MonitoringSession.peek(bundle)
        # The chunked driver treats such a bundle as position 0 instead
        # of crashing the whole grid at plan time.
        assert ChunkedExecutor._snapshot_position(bundle) == 0

    def test_meta_referencing_missing_arrays_rejected(self, tmp_path):
        from repro.api import MonitoringSession
        from repro.bn.sampling import ForwardSampler
        from repro.errors import SessionError

        session = self._session()
        bundle = tmp_path / "snap"
        session.ingest(ForwardSampler(session.network, seed=1).sample(100))
        session.snapshot(bundle)
        for path in bundle.glob("*.npz"):
            path.unlink()
        with pytest.raises(SessionError, match="missing arrays"):
            MonitoringSession.restore(bundle)


class TestDescriptorHashCaching:
    def test_reordered_and_extended_grid_reuses_cells(self, runner, tmp_path):
        first = runner.run_grid(
            "grid", resume_dir=tmp_path,
            networks=["alarm"], algorithms=["uniform", "nonuniform"],
            eps_values=[0.2], site_counts=[3], n_events=600, checkpoints=2,
        )
        caches = sorted(tmp_path.glob("*.result.json"))
        assert len(caches) == 2
        stamps = {p.name: p.stat().st_mtime_ns for p in caches}
        # Reversed algorithm order plus one new cell: the two finished
        # cells load from cache (bytes untouched), only "exact" runs.
        second = runner.run_grid(
            "grid", resume_dir=tmp_path,
            networks=["alarm"], algorithms=["nonuniform", "uniform", "exact"],
            eps_values=[0.2], site_counts=[3], n_events=600, checkpoints=2,
        )
        assert len(second.runs) == 3
        for path in caches:
            assert path.stat().st_mtime_ns == stamps[path.name]
        by_algorithm = {r.algorithm: r for r in second.runs}
        for run in first.runs:
            assert (
                by_algorithm[run.algorithm].to_dict() == run.to_dict()
            )

    def test_changed_parameter_does_not_reuse_cache(self, runner, tmp_path):
        grid = dict(
            networks=["alarm"], algorithms=["nonuniform"], eps_values=[0.2],
            site_counts=[3], n_events=600, checkpoints=2,
        )
        runner.run_grid("grid", resume_dir=tmp_path, **grid)
        assert len(list(tmp_path.glob("*.result.json"))) == 1
        changed = dict(grid, eps_values=[0.3])
        runner.run_grid("grid", resume_dir=tmp_path, **changed)
        assert len(list(tmp_path.glob("*.result.json"))) == 2


class TestLongCrossoverPreset:
    def test_tiny_sweep_document(self, tmp_path):
        document = long_crossover_experiment(
            events_values=(400, 800), eps=0.4, n_sites=3,
            checkpoints=2, eval_events=50, seed=0,
            executor="serial",
        )
        assert document["benchmark"] == "long-crossover"
        assert document["schema"] == "repro-bench-v1"
        assert [r["n_events"] for r in document["results"]] == [400, 800]
        for row in document["results"]:
            assert row["uniform_messages"] > 0
            assert row["uniform_over_nonuniform"] > 0
        assert len(document["runs"]) == 4
        assert {r["algorithm"] for r in document["runs"]} == {
            "uniform", "nonuniform"
        }

    def test_chunked_matches_serial_executor(self):
        kwargs = dict(
            events_values=(400,), eps=0.4, n_sites=3, checkpoints=2,
            eval_events=50, seed=1,
        )
        serial = long_crossover_experiment(executor="serial", **kwargs)
        chunked = long_crossover_experiment(executor="chunked", **kwargs)
        assert json.dumps(strip_timing(serial), sort_keys=True) == json.dumps(
            strip_timing(chunked), sort_keys=True
        )


class TestFigures:
    def test_ascii_plot_renders_series_and_legend(self):
        text = format_ascii_plot(
            {"a": [(1, 10), (10, 100)], "b": [(1, 20), (10, 50)]},
            width=20, height=6, title="t", x_label="m", y_label="msgs",
            logx=True, logy=True,
        )
        assert text.splitlines()[0] == "t"
        assert "  o a" in text and "  x b" in text
        assert "log" in text

    def test_ascii_plot_rejects_empty(self):
        with pytest.raises(ValueError):
            format_ascii_plot({"a": []})

    def test_figures_cli_views(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "messages", "--network", "alarm", "--algorithms",
            "uniform,nonuniform", "--events", "600", "--sites", "3",
            "--eval-events", "100", "--checkpoints", "2",
            "--out", str(out),
        ]) == 0
        assert main(["figures", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "messages along the stream" in rendered
        assert "uniform" in rendered
        # The grid document has no ratio rows.
        with pytest.raises(EvaluationError):
            main(["figures", str(out), "--view", "ratio"])

    def test_figures_ratio_view(self, tmp_path, capsys):
        document = long_crossover_experiment(
            events_values=(400, 800), eps=0.4, n_sites=3,
            checkpoints=2, eval_events=50, executor="serial",
        )
        path = tmp_path / "lc.json"
        path.write_text(json.dumps(document))
        assert main(["figures", str(path), "--view", "ratio"]) == 0
        rendered = capsys.readouterr().out
        assert "message ratio" in rendered

    @staticmethod
    def _ratio_document() -> dict:
        return {
            "benchmark": "separation",
            "crossover_events": 800,
            "results": [
                {"n_events": 400, "uniform_messages": 90,
                 "nonuniform_messages": 120},
                {"n_events": 800, "uniform_messages": 200,
                 "nonuniform_messages": 180},
            ],
        }

    @staticmethod
    def _fake_matplotlib(monkeypatch):
        """Install a minimal matplotlib stand-in that records savefig."""
        class FakeAxes:
            def __getattr__(self, name):
                return lambda *args, **kwargs: None

        class FakeFigure:
            def tight_layout(self):
                pass

            def savefig(self, path, dpi=None):
                with open(path, "wb") as handle:
                    handle.write(b"\x89PNG-fake")

        pyplot = types.ModuleType("matplotlib.pyplot")
        pyplot.subplots = lambda rows, cols, figsize, squeeze: (
            FakeFigure(), [[FakeAxes()] for _ in range(rows)]
        )
        pyplot.close = lambda fig: None
        matplotlib = types.ModuleType("matplotlib")
        matplotlib.use = lambda backend: None
        matplotlib.pyplot = pyplot
        monkeypatch.setitem(sys.modules, "matplotlib", matplotlib)
        monkeypatch.setitem(sys.modules, "matplotlib.pyplot", pyplot)

    def test_render_png_without_matplotlib(self, tmp_path, monkeypatch):
        # A None entry makes ``import matplotlib`` raise ImportError even
        # on hosts that do have it installed.
        monkeypatch.setitem(sys.modules, "matplotlib", None)
        assert not figures.matplotlib_available()
        with pytest.raises(EvaluationError, match="matplotlib"):
            figures.render_png(
                self._ratio_document(), tmp_path / "out.png", view="ratio"
            )
        assert not (tmp_path / "out.png").exists()

    def test_render_png_with_matplotlib(self, tmp_path, monkeypatch):
        self._fake_matplotlib(monkeypatch)
        assert figures.matplotlib_available()
        out = tmp_path / "out.png"
        assert figures.render_png(
            self._ratio_document(), out, view="ratio"
        ) == str(out)
        assert out.read_bytes().startswith(b"\x89PNG")
        # View validation still happens before any matplotlib work.
        with pytest.raises(EvaluationError):
            figures.render_png(self._ratio_document(), out, view="messages")

    def test_figures_cli_png_falls_back_to_ascii(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setitem(sys.modules, "matplotlib", None)
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(self._ratio_document()))
        png = tmp_path / "doc.png"
        assert main(["figures", str(path), "--png", str(png)]) == 0
        captured = capsys.readouterr()
        assert "falling back" in captured.err
        assert "message ratio" in captured.out
        assert not png.exists()

    def test_figures_cli_png_writes_file(self, tmp_path, monkeypatch, capsys):
        self._fake_matplotlib(monkeypatch)
        path = tmp_path / "doc.json"
        path.write_text(json.dumps(self._ratio_document()))
        png = tmp_path / "doc.png"
        assert main(["figures", str(path), "--png", str(png)]) == 0
        assert png.exists()
        assert str(png) in capsys.readouterr().err


class TestCLIExecutors:
    def test_multiprocess_flag_matches_serial(self, tmp_path):
        base = [
            "messages", "--network", "alarm", "--algorithms",
            "uniform,nonuniform", "--events", "600", "--sites", "3",
            "--eval-events", "100", "--checkpoints", "2",
        ]
        serial_out = tmp_path / "serial.json"
        mp_out = tmp_path / "mp.json"
        assert main(base + ["--out", str(serial_out)]) == 0
        assert main(
            base + ["--executor", "multiprocess", "--jobs", "2",
                    "--out", str(mp_out)]
        ) == 0
        a = strip_timing(json.loads(serial_out.read_text()))
        b = strip_timing(json.loads(mp_out.read_text()))
        assert a == b
