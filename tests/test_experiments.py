"""Tests for the experiment harness: runner, results schema, and CLI."""

import json

import numpy as np
import pytest

from repro.errors import StreamError
from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    checkpoint_schedule,
    make_partitioner,
)
from repro.experiments.cli import main


class TestCheckpointSchedule:
    def test_even_spacing_ends_at_n_events(self):
        assert checkpoint_schedule(10_000, 5) == [
            2_000, 4_000, 6_000, 8_000, 10_000
        ]

    def test_more_checkpoints_than_events(self):
        assert checkpoint_schedule(3, 10) == [1, 2, 3]


class TestPartitionerFactory:
    def test_known_names(self):
        assert make_partitioner("uniform", 4, seed=0).n_sites == 4
        assert make_partitioner("round-robin", 4).n_sites == 4
        zipf = make_partitioner("zipf", 4, seed=0, exponent=2.0)
        shares = zipf.site_shares(20_000)
        assert shares[0] > shares[-1]

    def test_unknown_name(self):
        with pytest.raises(StreamError):
            make_partitioner("hash-ring", 4)


class TestExperimentRunner:
    def test_run_one_exact(self, alarm_net):
        runner = ExperimentRunner(eval_events=300, seed=0)
        run = runner.run_one(
            alarm_net, "exact", n_sites=5, n_events=2_000, checkpoints=4
        )
        assert run.algorithm == "exact"
        assert [c.events for c in run.checkpoints] == [500, 1_000, 1_500, 2_000]
        # Message counts are cumulative and exact costs 2n per event.
        totals = [c.total_messages for c in run.checkpoints]
        assert totals == sorted(totals)
        assert run.total_messages == 2 * alarm_net.n_variables * 2_000
        assert run.runtime["runtime_seconds"] > 0
        assert run.wall_seconds > 0

    def test_accuracy_improves_with_data(self, alarm_net):
        runner = ExperimentRunner(eval_events=500, seed=1)
        run = runner.run_one(
            alarm_net, "exact", n_sites=5, n_events=8_000, checkpoints=4
        )
        first = run.checkpoints[0].mean_abs_log_error
        last = run.checkpoints[-1].mean_abs_log_error
        assert first is not None and last is not None
        assert last < first

    def test_run_grid_shape_and_roundtrip(self, alarm_net, tmp_path):
        runner = ExperimentRunner(eval_events=200, seed=2)
        result = runner.run_grid(
            "unit-grid",
            networks=[alarm_net],
            algorithms=["exact", "nonuniform"],
            eps_values=[0.2],
            site_counts=[3, 6],
            n_events=1_000,
            checkpoints=2,
        )
        assert len(result.runs) == 4
        assert {run.n_sites for run in result.runs} == {3, 6}
        path = result.save(tmp_path / "BENCH_unit.json")
        loaded = ExperimentResult.load(path)
        assert loaded.name == "unit-grid"
        assert len(loaded.runs) == 4
        for original, restored in zip(result.runs, loaded.runs):
            assert original.algorithm == restored.algorithm
            assert original.total_messages == restored.total_messages
            assert original.final.mean_abs_log_error == pytest.approx(
                restored.final.mean_abs_log_error
            )
        assert loaded.runs_for(algorithm="exact", n_sites=3)[0].n_events == 1_000

    def test_deterministic_given_seed(self, alarm_net):
        runs = [
            ExperimentRunner(eval_events=200, seed=33).run_one(
                alarm_net, "nonuniform", eps=0.3, n_sites=4, n_events=1_000,
                checkpoints=2,
            )
            for _ in range(2)
        ]
        assert runs[0].total_messages == runs[1].total_messages
        assert (
            runs[0].final.mean_abs_log_error
            == runs[1].final.mean_abs_log_error
        )


class TestCLI:
    def test_messages_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main([
            "messages", "--network", "alarm",
            "--algorithms", "exact,nonuniform",
            "--events", "1000", "--sites", "5", "--eval-events", "150",
            "--checkpoints", "2", "--out", str(out),
        ])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["schema"] == "repro-bench-v1"
        by_algorithm = {r["algorithm"]: r for r in document["results"]}
        assert set(by_algorithm) == {"exact", "nonuniform"}
        for payload in by_algorithm.values():
            assert payload["total_messages"] > 0
            assert payload["mean_abs_log_error"] is not None
            assert len(payload["checkpoints"]) == 2
        summary = capsys.readouterr().err
        assert "messages-vs-stream" in summary

    def test_stdout_when_no_out_flag(self, capsys):
        rc = main([
            "messages", "--network", "alarm", "--algorithms", "exact",
            "--events", "500", "--sites", "3", "--eval-events", "100",
            "--checkpoints", "1",
        ])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["benchmark"] == "messages-vs-stream"

    def test_eps_sweep_subcommand(self, tmp_path):
        out = tmp_path / "eps.json"
        rc = main([
            "eps", "--network", "alarm", "--algorithms", "nonuniform",
            "--events", "600", "--sites", "3", "--eval-events", "100",
            "--checkpoints", "1", "--eps-values", "0.2,0.4",
            "--out", str(out),
        ])
        assert rc == 0
        document = json.loads(out.read_text())
        assert sorted(r["eps"] for r in document["results"]) == [0.2, 0.4]

    def test_bench_subcommand(self, tmp_path):
        out = tmp_path / "micro.json"
        rc = main([
            "bench", "--events", "1500", "--sites", "6", "--repeats", "1",
            "--out", str(out),
        ])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["states_identical"] is True
        assert [r["strategy"] for r in document["results"]][0] == "masked"

    def test_bench_hyz_subcommand(self, tmp_path):
        out = tmp_path / "hyz.json"
        rc = main([
            "bench-hyz", "--events", "1200", "--sites", "5", "--eps", "0.2",
            "--repeats", "1", "--out", str(out),
        ])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["benchmark"] == "hyz-engines"
        engines = [r["engine"] for r in document["results"]]
        assert engines == ["sequential", "vectorized"]
        assert document["results"][1]["speedup_vs_sequential"] > 0
