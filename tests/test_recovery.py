"""Tests for coordinator durability (``repro.dist.recovery``).

The load-bearing guarantee extends the dist suite's conformance
contract across a coordinator *crash*: kill the coordinator process at
any durability point — before a round's WAL append, after the append
but before the apply, or midway through a checkpoint — and
``DistributedSession(recover_from=dir)`` must come back byte-identical
to an uninterrupted run: same metrics, same per-site message counts,
same estimates (HYZ RNG state included), same serve-layer snapshot
epoch.  The chaos matrix drives all three crash points across both
transports and every counter backend.

Below the matrix sit the artifact-damage tests (a torn WAL tail
recovers to the last complete record; CRC/structural corruption raises
:class:`WalCorrupt`; a stale checkpoint ``meta.json`` raises a typed
error — a partial round is never applied), the WAL unit tests, and the
TCP bind/advertise + frame-cap/heartbeat session knobs.
"""

import json
import multiprocessing
import os
import struct

import numpy as np
import pytest

from dist_faults import CRASH_POINTS, FAULT_EXIT_CODE, coordinator_crash
from repro.api.session import MonitoringSession
from repro.api.spec import EstimatorSpec
from repro.bn.repository import network_by_name
from repro.dist import (
    DistributedSession,
    RecoveryError,
    WalCorrupt,
    WriteAheadLog,
    load_recovery,
    run_crashing_coordinator,
)
from repro.dist.messages import SiteAggregate
from repro.dist.recovery import (
    CHECKPOINT_NAME,
    STATE_NAME,
    WAL_MAGIC,
    WAL_NAME,
    recovery_stream,
)
from repro.dist.site import START_METHOD
from repro.errors import SessionError

# The chaos-matrix grid, sized for the spawn-heavy single-core CI box:
# 6 rounds of 50 events, a checkpoint every 2 applied rounds, and the
# crash at round 4 — so every injection point leaves both a committed
# checkpoint behind it and WAL rounds in front of it.
NET = "alarm"
K = 4
PROCS = 2
N_EVENTS = 300
CHUNK = 50
SEED = 7
CRASH_SEQ = 4
CHECKPOINT_ROUNDS = 2
BACKENDS = ("exact", "deterministic", "hyz")


def chaos_spec(backend: str) -> EstimatorSpec:
    return EstimatorSpec(
        NET, "nonuniform", eps=0.2, n_sites=K, seed=11,
        counter_backend=backend,
    )


def crash_payload(backend, transport, directory, *, crash,
                  checkpoint_rounds=CHECKPOINT_ROUNDS, fsync="always"):
    return {
        "spec": chaos_spec(backend).to_dict(),
        "procs": PROCS,
        "transport": transport,
        "dir": str(directory),
        "fsync": fsync,
        "checkpoint_rounds": checkpoint_rounds,
        "crash": crash,
        "stream": {"seed": SEED, "n_events": N_EVENTS, "chunk": CHUNK},
    }


def run_child(payload) -> int:
    ctx = multiprocessing.get_context(START_METHOD)
    child = ctx.Process(target=run_crashing_coordinator, args=(payload,))
    child.start()
    child.join(timeout=180)
    if child.is_alive():  # pragma: no cover - hang diagnostics
        child.kill()
        child.join()
        pytest.fail("crashing-coordinator child hung")
    return child.exitcode


@pytest.fixture(scope="module")
def chaos_net():
    return network_by_name(NET)


@pytest.fixture(scope="module")
def chaos_batches(chaos_net):
    return recovery_stream(chaos_net, n_events=N_EVENTS, chunk=CHUNK,
                           seed=SEED)


@pytest.fixture(scope="module")
def chaos_refs(chaos_net, chaos_batches):
    """Uninterrupted in-process reference, one per counter backend."""
    refs = {}
    for backend in BACKENDS:
        ref = MonitoringSession(chaos_spec(backend), network=chaos_net)
        for batch in chaos_batches:
            ref.ingest(batch, validate=False)
        refs[backend] = ref
    return refs


@pytest.fixture(scope="module")
def chaos_dist_epochs(chaos_net, chaos_batches, chaos_refs):
    """Final sync epoch of an *uninterrupted distributed* run per backend.

    The epoch advances once per message-*recording call*, and the
    coordinator's apply path makes one call per worker/site aggregate
    where the in-process session makes one per batch — so epoch
    continuity across a crash must be judged against an uninterrupted
    distributed run, not the in-process reference (whose metrics,
    per-site counts, and estimates the distributed runtime does match
    exactly).
    """
    epochs = {}
    for backend in BACKENDS:
        with DistributedSession(
            chaos_spec(backend), network=chaos_net, procs=PROCS
        ) as dist:
            for batch in chaos_batches:
                dist.ingest(batch, validate=False)
            dist.flush()
            assert dist.metrics() == chaos_refs[backend].metrics()
            epochs[backend] = dist.message_log.epoch
    return epochs


def sample_reports(seq: int) -> dict:
    """Two workers' worth of plausible WAL aggregates for round ``seq``."""
    return {
        0: [
            SiteAggregate(0, np.array([1, 4, 9], dtype=np.int64),
                          np.array([2, 1, 5], dtype=np.int64), 8),
            SiteAggregate(2, np.array([0], dtype=np.int64),
                          np.array([seq], dtype=np.int64), seq),
        ],
        1: [
            SiteAggregate(1, np.array([3, 7], dtype=np.int64),
                          np.array([1, 1], dtype=np.int64), 2),
        ],
    }


def append_rounds(path, seqs, *, fsync="off", partitioner=None):
    wal = WriteAheadLog(path, fsync=fsync)
    for seq in seqs:
        wal.append_round(seq, 50, seq - 1, partitioner, sample_reports(seq))
    wal.close()
    return wal


# ----------------------------------------------------------------------
# Write-ahead log unit tests
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_scan_round_trip(self, tmp_path):
        path = tmp_path / WAL_NAME
        state = {"kind": "uniform", "cursor": 17}
        wal = append_rounds(path, [1, 2], partitioner=state)
        assert wal.records_appended == 2
        assert wal.bytes_appended == path.stat().st_size
        records = WriteAheadLog.scan(path)
        assert [r.seq for r in records] == [1, 2]
        for record in records:
            assert record.m == 50
            assert record.epoch == record.seq - 1
            assert record.partitioner == state
            expected = sample_reports(record.seq)
            assert sorted(record.reports) == sorted(expected)
            for worker, aggs in expected.items():
                got = record.reports[worker]
                assert [a.site for a in got] == [a.site for a in aggs]
                for g, a in zip(got, aggs):
                    assert np.array_equal(g.counter_ids, a.counter_ids)
                    assert np.array_equal(g.counts, a.counts)

    def test_scan_missing_or_empty(self, tmp_path):
        path = tmp_path / WAL_NAME
        path.write_bytes(b"")
        assert WriteAheadLog.scan(path) == []

    def test_truncate_through_keeps_later_records(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = WriteAheadLog(path, fsync="off")
        for seq in (1, 2, 3, 4):
            wal.append_round(seq, 50, seq - 1, None, sample_reports(seq))
        wal.truncate_through(2)
        wal.append_round(5, 50, 4, None, sample_reports(5))
        wal.close()
        assert [r.seq for r in WriteAheadLog.scan(path)] == [3, 4, 5]

    def test_truncate_through_none_drops_everything(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = WriteAheadLog(path, fsync="off")
        wal.append_round(1, 50, 0, None, sample_reports(1))
        wal.truncate_through(None)
        wal.close()
        assert path.stat().st_size == 0
        assert WriteAheadLog.scan(path) == []

    def test_fsync_policies(self, tmp_path):
        always = WriteAheadLog(tmp_path / "a.log", fsync="always")
        for seq in (1, 2, 3):
            always.append_round(seq, 50, seq - 1, None, sample_reports(seq))
        assert always.fsyncs == 3
        always.close()

        interval = WriteAheadLog(tmp_path / "i.log", fsync="interval",
                                 fsync_interval=2)
        for seq in (1, 2, 3):
            interval.append_round(seq, 50, seq - 1, None, sample_reports(seq))
        assert interval.fsyncs == 1  # after the 2nd append
        interval.close()  # close syncs the straggler
        assert interval.fsyncs == 2

        off = WriteAheadLog(tmp_path / "o.log", fsync="off")
        for seq in (1, 2, 3):
            off.append_round(seq, 50, seq - 1, None, sample_reports(seq))
        off.close()
        assert off.fsyncs == 0
        # All three policies persist identical records.
        for name in ("a.log", "i.log", "o.log"):
            assert [r.seq for r in WriteAheadLog.scan(tmp_path / name)] == \
                [1, 2, 3]

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(RecoveryError, match="fsync policy"):
            WriteAheadLog(tmp_path / WAL_NAME, fsync="sometimes")
        with pytest.raises(RecoveryError, match="fsync_interval"):
            WriteAheadLog(tmp_path / WAL_NAME, fsync="interval",
                          fsync_interval=0)


class TestWalDamage:
    """Structural damage raises; a torn tail is where the log stops."""

    def _wal(self, tmp_path):
        path = tmp_path / WAL_NAME
        append_rounds(path, [1, 2, 3])
        return path, path.read_bytes()

    def test_torn_tail_partial_header(self, tmp_path):
        path, blob = self._wal(tmp_path)
        path.write_bytes(blob[:len(blob) - len(blob) // 3] )
        # Cutting into the last record's payload (or header) drops only
        # that record; everything before it still replays.
        records = WriteAheadLog.scan(path)
        assert [r.seq for r in records] == [1, 2]

    def test_torn_tail_partial_payload(self, tmp_path):
        path, blob = self._wal(tmp_path)
        path.write_bytes(blob[:-1])
        assert [r.seq for r in WriteAheadLog.scan(path)] == [1, 2]

    def test_crc_corruption_raises(self, tmp_path):
        path, blob = self._wal(tmp_path)
        # Flip one byte deep inside the final record's payload.
        damaged = bytearray(blob)
        damaged[-2] ^= 0xFF
        path.write_bytes(bytes(damaged))
        with pytest.raises(WalCorrupt, match="CRC"):
            WriteAheadLog.scan(path)

    def test_bad_magic_raises(self, tmp_path):
        path, blob = self._wal(tmp_path)
        path.write_bytes(b"XX" + blob[2:])
        with pytest.raises(WalCorrupt, match="magic"):
            WriteAheadLog.scan(path)

    def test_unsupported_version_raises(self, tmp_path):
        path, blob = self._wal(tmp_path)
        damaged = bytearray(blob)
        damaged[2] = 99  # version byte of the first header
        path.write_bytes(bytes(damaged))
        with pytest.raises(WalCorrupt, match="version"):
            WriteAheadLog.scan(path)

    def test_implausible_length_raises(self, tmp_path):
        path = tmp_path / WAL_NAME
        header = struct.Struct("<2sBBII")
        path.write_bytes(header.pack(WAL_MAGIC, 1, 1, 2 ** 31, 0)
                         + b"\x00" * 64)
        with pytest.raises(WalCorrupt, match="limit"):
            WriteAheadLog.scan(path, max_bytes=1 << 20)


# ----------------------------------------------------------------------
# Durable session: happy path and recovery-directory damage
# ----------------------------------------------------------------------
class TestDurableSession:
    def test_clean_run_round_trips_through_recovery(
        self, tmp_path, chaos_net, chaos_batches, chaos_refs
    ):
        wal_dir = tmp_path / "durable"
        with DistributedSession(
            chaos_spec("hyz"), network=chaos_net, procs=PROCS,
            wal_dir=str(wal_dir), checkpoint_rounds=CHECKPOINT_ROUNDS,
        ) as dist:
            for batch in chaos_batches:
                dist.ingest(batch, validate=False)
            dist.flush()
            stats = dist.durability_stats()
            assert stats["wal_records"] == N_EVENTS // CHUNK
            assert stats["checkpoints"] == (N_EVENTS // CHUNK) \
                // CHECKPOINT_ROUNDS
        # A clean close checkpoints, so the WAL is empty...
        assert (wal_dir / WAL_NAME).stat().st_size == 0
        # ...and recovery replays nothing but lands on the same state.
        inner, incarnation, info = load_recovery(wal_dir, network=chaos_net)
        assert info["replayed_rounds"] == 0
        assert incarnation == 1
        ref = chaos_refs["hyz"]
        assert inner.metrics() == ref.metrics()
        assert np.array_equal(inner.estimates(), ref.estimates())

    def test_plain_session_reports_no_durability(self, chaos_net):
        with DistributedSession(
            chaos_spec("exact"), network=chaos_net, procs=PROCS
        ) as dist:
            assert dist.durability_stats() == {}

    def test_wal_crash_requires_wal_dir(self, chaos_net):
        with pytest.raises(SessionError, match="wal_crash requires wal_dir"):
            DistributedSession(
                chaos_spec("exact"), network=chaos_net, procs=PROCS,
                wal_crash=coordinator_crash(1, "pre-append"),
            )

    def test_recover_from_excludes_spec(self, tmp_path, chaos_net):
        with pytest.raises(SessionError, match="recover_from"):
            DistributedSession(
                chaos_spec("exact"), network=chaos_net,
                recover_from=str(tmp_path),
            )

    def test_recover_from_non_recovery_dir(self, tmp_path):
        with pytest.raises(RecoveryError, match="no coordinator state"):
            load_recovery(tmp_path)

    def test_corrupt_state_file(self, tmp_path):
        (tmp_path / STATE_NAME).write_text("{not json")
        with pytest.raises(RecoveryError, match="not valid JSON"):
            load_recovery(tmp_path)

    def test_wrong_state_schema(self, tmp_path):
        (tmp_path / STATE_NAME).write_text(
            json.dumps({"schema": "something-else", "spec": {}})
        )
        with pytest.raises(RecoveryError, match="schema"):
            load_recovery(tmp_path)


class TestCrashedDirectoryDamage:
    """Damage on top of a *real* crashed coordinator's directory."""

    @pytest.fixture()
    def crashed_dir(self, tmp_path):
        # post-append at round 4, no periodic checkpoints: the WAL holds
        # rounds 1..4 and the checkpoint directory stays empty.
        directory = tmp_path / "crashed"
        payload = crash_payload(
            "hyz", "queue", directory,
            crash=coordinator_crash(CRASH_SEQ, "post-append"),
            checkpoint_rounds=None,
        )
        assert run_child(payload) == FAULT_EXIT_CODE
        return directory

    def test_torn_wal_tail_recovers_prefix(
        self, crashed_dir, chaos_net, chaos_batches
    ):
        wal = crashed_dir / WAL_NAME
        blob = wal.read_bytes()
        complete = WriteAheadLog.scan(wal)
        assert [r.seq for r in complete] == [1, 2, 3, 4]
        wal.write_bytes(blob[:-3])  # tear into round 4's record
        inner, _, info = load_recovery(crashed_dir, network=chaos_net)
        assert info["replayed_rounds"] == 3
        ref = MonitoringSession(chaos_spec("hyz"), network=chaos_net)
        for batch in chaos_batches[:3]:
            ref.ingest(batch, validate=False)
        assert inner.metrics() == ref.metrics()
        assert np.array_equal(inner.estimates(), ref.estimates())

    def test_crc_corrupt_wal_record_refuses_recovery(
        self, crashed_dir, chaos_net
    ):
        wal = crashed_dir / WAL_NAME
        blob = bytearray(wal.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # deep inside a middle record
        wal.write_bytes(bytes(blob))
        with pytest.raises(WalCorrupt):
            load_recovery(crashed_dir, network=chaos_net)

    def test_non_contiguous_wal_refuses_recovery(
        self, crashed_dir, chaos_net
    ):
        # Drop round 1 from the log while no checkpoint covers it.
        wal = WriteAheadLog(crashed_dir / WAL_NAME, fsync="off")
        wal.truncate_through(1)
        wal.close()
        with pytest.raises(RecoveryError, match="not contiguous"):
            load_recovery(crashed_dir, network=chaos_net)

    def test_stale_checkpoint_meta_refuses_recovery(self, tmp_path, chaos_net):
        # A checkpointing run this time, so the bundle exists...
        directory = tmp_path / "crashed-ckpt"
        payload = crash_payload(
            "hyz", "queue", directory,
            crash=coordinator_crash(CRASH_SEQ, "post-append"),
        )
        assert run_child(payload) == FAULT_EXIT_CODE
        checkpoint = directory / CHECKPOINT_NAME
        arrays = sorted(checkpoint.glob("arrays-*.npz"))
        assert arrays, "checkpoint bundle should hold an arrays file"
        # ...then its meta.json goes stale: the arrays it names vanish.
        for path in arrays:
            os.remove(path)
        with pytest.raises(SessionError):
            load_recovery(directory, network=chaos_net)


# ----------------------------------------------------------------------
# The chaos matrix
# ----------------------------------------------------------------------
class TestChaosMatrix:
    """Crash point x transport x counter backend, byte-identical always."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("transport", ["queue", "tcp"])
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_recover_conformance(
        self, point, transport, backend, tmp_path,
        chaos_net, chaos_batches, chaos_refs, chaos_dist_epochs,
    ):
        directory = tmp_path / "wal"
        payload = crash_payload(
            backend, transport, directory,
            crash=coordinator_crash(CRASH_SEQ, point),
        )
        assert run_child(payload) == FAULT_EXIT_CODE, (
            f"child must die at {point} of round {CRASH_SEQ}"
        )
        recovered = DistributedSession(
            recover_from=str(directory), network=chaos_net,
            procs=PROCS, transport=transport,
        )
        ref = chaos_refs[backend]
        try:
            info = recovered.recovery_info
            assert info["incarnation"] == 1
            assert recovered.inner.events_seen % CHUNK == 0
            resume_at = recovered.inner.events_seen // CHUNK
            # The crash point dictates how much the WAL replays: a
            # pre-append crash loses the in-flight round; the other two
            # have it durable before dying.
            assert resume_at == (
                CRASH_SEQ - 1 if point == "pre-append" else CRASH_SEQ
            )
            assert info["replayed_rounds"] == resume_at - (
                info["checkpoint_seq"] or 0
            )
            for batch in chaos_batches[resume_at:]:
                recovered.ingest(batch, validate=False)
            recovered.flush()
            assert recovered.metrics() == ref.metrics()
            assert np.array_equal(
                recovered.message_log.site_messages,
                ref.message_log.site_messages,
            )
            assert np.array_equal(recovered.estimates(), ref.estimates())
            # Serve-layer continuity: the recovered coordinator's sync
            # epoch — and therefore the epoch stamped on every
            # ModelSnapshot built over it — matches an uninterrupted
            # distributed run's exactly (see chaos_dist_epochs).
            assert recovered.message_log.epoch == \
                chaos_dist_epochs[backend]
            assert recovered.serve().snapshot().epoch == \
                chaos_dist_epochs[backend]
        finally:
            recovered.close()


# ----------------------------------------------------------------------
# TCP session knobs (bind/advertise, frame cap, heartbeat)
# ----------------------------------------------------------------------
class TestSessionNetworkKnobs:
    def test_bind_all_interfaces_advertise_loopback(
        self, chaos_net, chaos_batches, chaos_refs
    ):
        with DistributedSession(
            chaos_spec("exact"), network=chaos_net, procs=PROCS,
            transport="tcp", bind_address="0.0.0.0",
            advertise_address="127.0.0.1",
        ) as dist:
            listener = dist._listener
            assert listener.bound_address[0] == "0.0.0.0"
            assert listener.address == ("127.0.0.1",
                                        listener.bound_address[1])
            for batch in chaos_batches[:2]:
                dist.ingest(batch, validate=False)
            dist.flush()
            assert dist.events_seen == 2 * CHUNK

    def test_frame_cap_and_heartbeat_reach_the_listener(
        self, chaos_net, chaos_batches
    ):
        with DistributedSession(
            chaos_spec("exact"), network=chaos_net, procs=PROCS,
            transport="tcp", max_frame_bytes=1 << 20,
            heartbeat_timeout=30.0,
        ) as dist:
            assert dist._listener.max_frame_bytes == 1 << 20
            dist.ingest(chaos_batches[0], validate=False)
            dist.flush()
            assert dist.events_seen == CHUNK

    @pytest.mark.parametrize("kwargs", [
        {"bind_address": "0.0.0.0"},
        {"advertise_address": "127.0.0.1"},
        {"max_frame_bytes": 1 << 20},
        {"heartbeat_timeout": 10.0},
    ])
    def test_tcp_only_knobs_rejected_on_queue_transport(
        self, chaos_net, kwargs
    ):
        with pytest.raises(SessionError, match="tcp"):
            DistributedSession(
                chaos_spec("exact"), network=chaos_net, procs=PROCS,
                **kwargs,
            )

    @pytest.mark.parametrize("kwargs", [
        {"max_frame_bytes": 0},
        {"heartbeat_timeout": 0.0},
    ])
    def test_non_positive_knobs_rejected(self, chaos_net, kwargs):
        with pytest.raises(SessionError, match="positive"):
            DistributedSession(
                chaos_spec("exact"), network=chaos_net, procs=PROCS,
                transport="tcp", **kwargs,
            )
