"""Tests for the monitoring session lifecycle and snapshot/resume.

The central contract (the PR's acceptance criterion): a session
snapshotted mid-stream and restored — as from a fresh process, since the
restore path rebuilds everything from the serialized bundle — finishes
the stream with estimates, message counts, and RNG state byte-identical
to a session that never stopped.
"""

import json

import numpy as np
import pytest

from repro import (
    EstimatorSpec,
    ForwardSampler,
    MonitoringSession,
    naive_bayes_network,
)
from repro.counters.hyz import ENGINES
from repro.errors import EvaluationError, SessionError
from repro.experiments import ExperimentRunner, classification_experiment
from repro.experiments.cli import EXIT_INCOMPLETE, main
from repro.experiments.presets import separation_experiment


def _stream(net, m, seed=1):
    return ForwardSampler(net, seed=seed).sample(m)


def _snapshot_resume_identical(net, spec, tmp_path, *, m=1_200):
    """Assert interrupted+restored == uninterrupted, byte for byte."""
    data = _stream(net, m)
    half = m // 2

    uninterrupted = MonitoringSession(spec, network=net)
    uninterrupted.ingest(data[:half])
    uninterrupted.ingest(data[half:])

    interrupted = MonitoringSession(spec, network=net)
    interrupted.ingest(data[:half])
    bundle = interrupted.snapshot(tmp_path / "snap")
    assert (bundle / "meta.json").is_file()
    meta = MonitoringSession.peek(bundle)
    assert (bundle / meta["arrays"]).is_file()

    resumed = MonitoringSession.restore(bundle, network=net)
    assert resumed.events_seen == half
    resumed.ingest(data[half:])

    assert np.array_equal(uninterrupted.estimates(), resumed.estimates())
    assert uninterrupted.total_messages == resumed.total_messages
    assert np.array_equal(
        uninterrupted.message_log.site_messages,
        resumed.message_log.site_messages,
    )
    assert uninterrupted.metrics() == resumed.metrics()
    bank_a, bank_b = uninterrupted.estimator.bank, resumed.estimator.bank
    assert np.array_equal(bank_a._local, bank_b._local)
    if hasattr(bank_a, "_rng"):
        # RNG continuation: after the same total draw history the
        # bit-generator states must coincide exactly.
        assert bank_a._rng.bit_generator.state == bank_b._rng.bit_generator.state
    return uninterrupted, resumed


class TestSnapshotResumeMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "algorithm", ["exact", "baseline", "uniform", "nonuniform"]
    )
    def test_all_algorithms_both_engines(
        self, small_net, tmp_path, algorithm, engine
    ):
        spec = EstimatorSpec(
            small_net, algorithm, eps=0.3, n_sites=4, seed=17,
            hyz_engine=engine,
        )
        _snapshot_resume_identical(small_net, spec, tmp_path)

    def test_deterministic_backend(self, small_net, tmp_path):
        spec = EstimatorSpec(
            small_net, "uniform", eps=0.4, n_sites=3, seed=5,
            counter_backend="deterministic",
        )
        _snapshot_resume_identical(small_net, spec, tmp_path)

    def test_naive_bayes_on_its_network(self, tmp_path):
        net = naive_bayes_network(n_features=5)
        spec = EstimatorSpec(net, "naive-bayes", eps=0.2, n_sites=3, seed=2)
        _snapshot_resume_identical(net, spec, tmp_path)

    def test_inline_network_restores_without_override(self, tmp_path):
        # An inline-embedded network must rebuild the *identical* counter
        # layout from the bundle alone (no network= override): the
        # serialized parents mapping is order-significant and seeds the
        # restored DAG's topological order.
        from repro import alarm

        net = alarm()
        spec = EstimatorSpec(net, "nonuniform", eps=0.3, n_sites=3, seed=6)
        data = _stream(net, 800)

        full = MonitoringSession(spec, network=net)
        full.ingest(data[:400])
        full.ingest(data[400:])

        half = MonitoringSession(spec, network=net)
        half.ingest(data[:400])
        half.snapshot(tmp_path / "inline")

        resumed = MonitoringSession.restore(tmp_path / "inline")
        assert resumed.network.node_names == net.node_names
        resumed.ingest(data[400:])
        assert np.array_equal(full.estimates(), resumed.estimates())
        assert full.total_messages == resumed.total_messages

    def test_network_by_name_cross_bundle(self, tmp_path):
        # Name-referenced networks rebuild from the repository on restore.
        spec = EstimatorSpec("alarm", "nonuniform", eps=0.3, n_sites=3, seed=4)
        net = spec.resolve_network()
        data = _stream(net, 600)
        session = spec.session()
        session.ingest(data)
        session.snapshot(tmp_path / "named")
        resumed = MonitoringSession.restore(tmp_path / "named")
        assert resumed.network.name == "alarm"
        assert np.array_equal(session.estimates(), resumed.estimates())

    def test_zipf_partitioner_state_resumes(self, small_net, tmp_path):
        spec = EstimatorSpec(
            small_net, "uniform", eps=0.3, n_sites=4, seed=8,
            partitioner="zipf", zipf_exponent=1.3,
        )
        _snapshot_resume_identical(small_net, spec, tmp_path)

    def test_snapshot_roundtrips_extra(self, small_net, tmp_path):
        session = EstimatorSpec(small_net, "exact", n_sites=2).session()
        session.ingest(_stream(small_net, 50))
        session.snapshot(tmp_path / "x", extra={"cursor": 50, "tag": "grid"})
        restored = MonitoringSession.restore(tmp_path / "x")
        assert restored.restored_extra == {"cursor": 50, "tag": "grid"}

    def test_restore_errors(self, small_net, tmp_path):
        with pytest.raises(SessionError):
            MonitoringSession.restore(tmp_path / "missing")
        session = EstimatorSpec(small_net, "exact", n_sites=2).session()
        session.ingest(_stream(small_net, 20))
        bundle = session.snapshot(tmp_path / "bad")
        meta = json.loads((bundle / "meta.json").read_text())
        meta["schema"] = "repro-session-v99"
        (bundle / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(SessionError):
            MonitoringSession.restore(bundle)


class TestSessionLifecycle:
    def test_ingest_with_and_without_sites(self, small_net):
        session = EstimatorSpec(small_net, "exact", n_sites=4, seed=0).session()
        data = _stream(small_net, 100)
        assert session.ingest(data[:40], np.arange(40) % 4) == 40
        assert session.ingest(data[40:]) == 60  # partitioner assigns
        assert session.ingest(data[0]) == 1     # single event promoted
        assert session.events_seen == 101
        assert session.total_messages == 2 * small_net.n_variables * 101

    def test_ingest_stream_mixed_items(self, small_net):
        session = EstimatorSpec(small_net, "exact", n_sites=3, seed=1).session()
        data = _stream(small_net, 90)

        def batches():
            yield data[:30], np.arange(30) % 3      # explicit pair
            yield data[30:60]                       # partitioner assigns
            yield data[60:], np.zeros(30, dtype=np.int64)

        assert session.ingest_stream(batches()) == 90
        assert session.events_seen == 90

    def test_queries_delegate(self, small_net):
        session = EstimatorSpec(small_net, "exact", n_sites=2, seed=3).session()
        data = _stream(small_net, 2_000)
        session.ingest(data)
        row = data[0]
        assert session.query(row) == pytest.approx(
            np.exp(session.log_query(row))
        )
        batch = session.log_query_batch(data[:10])
        assert batch.shape == (10,)
        assert batch[0] == pytest.approx(session.log_query(row))
        learned = session.estimated_network()
        assert learned.n_variables == small_net.n_variables

    def test_metrics_shape(self, small_net):
        session = EstimatorSpec(
            small_net, "nonuniform", eps=0.3, n_sites=5, seed=6
        ).session()
        session.ingest(_stream(small_net, 500))
        metrics = session.metrics()
        assert metrics["events_seen"] == 500
        assert metrics["n_sites"] == 5
        assert metrics["algorithm"] == "nonuniform"
        assert metrics["counter_backend"] == "hyz"
        assert len(metrics["site_messages"]) == 5
        assert metrics["total_messages"] == metrics["messages_by_kind"]["total"]
        assert (
            metrics["max_site_messages"] == max(metrics["site_messages"])
        )
        json.dumps(metrics)  # JSON-ready

    def test_classifier_anytime(self):
        net = naive_bayes_network(n_features=4)
        session = EstimatorSpec(net, "exact", n_sites=2, seed=0).session()
        data = ForwardSampler(net, seed=2).sample(3_000)
        session.ingest(data)
        classifier = session.classifier()
        predictions = classifier.predict_batch(["C"] * 50, data[:50])
        class_idx = net.variable_index("C")
        # Better than chance on its own training distribution.
        assert np.mean(predictions == data[:50, class_idx]) > 1.0 / 3.0

    def test_same_seed_sessions_identical(self, small_net):
        spec = EstimatorSpec(small_net, "nonuniform", eps=0.3, n_sites=4, seed=9)
        data = _stream(small_net, 400)
        a, b = spec.session(), spec.session()
        a.ingest(data)
        b.ingest(data)
        assert np.array_equal(a.estimates(), b.estimates())
        assert a.total_messages == b.total_messages


class TestRunnerResume:
    def test_stop_resume_matches_uninterrupted(self, tmp_path):
        runner = ExperimentRunner(eval_events=100, seed=3)
        kwargs = dict(
            eps=0.3, n_sites=4, n_events=800, checkpoints=4,
        )
        full = runner.run_one("alarm", "nonuniform", **kwargs)
        snapshot_path = tmp_path / "ck"
        partial = runner.run_one(
            "alarm", "nonuniform", snapshot_path=snapshot_path,
            stop_after=400, **kwargs,
        )
        assert partial is None
        assert (snapshot_path / "meta.json").is_file()
        resumed = runner.run_one(
            "alarm", "nonuniform", snapshot_path=snapshot_path, **kwargs
        )
        assert not (snapshot_path / "meta.json").exists()  # cleaned up
        assert resumed.total_messages == full.total_messages
        assert [c.to_dict() for c in resumed.checkpoints] == [
            c.to_dict() for c in full.checkpoints
        ]
        assert resumed.to_dict()["mean_abs_log_error"] == (
            full.to_dict()["mean_abs_log_error"]
        )

    def test_resume_rejects_changed_parameters(self, tmp_path):
        runner = ExperimentRunner(eval_events=100, seed=3)
        snapshot_path = tmp_path / "ck"
        runner.run_one(
            "alarm", "exact", n_sites=3, n_events=600, checkpoints=3,
            snapshot_path=snapshot_path, stop_after=200,
        )
        with pytest.raises(EvaluationError):
            runner.run_one(
                "alarm", "exact", n_sites=3, n_events=900, checkpoints=3,
                snapshot_path=snapshot_path,
            )

    def test_object_network_stop_resume(self, alarm_net, tmp_path):
        # Inline-embedded networks must resume too: the spec guard
        # compares structure, not CPD floats (which drift one ULP across
        # the serialize/renormalize round-trip).
        runner = ExperimentRunner(eval_events=100, seed=3)
        kwargs = dict(eps=0.2, n_sites=3, n_events=400, checkpoints=2)
        full = runner.run_one(alarm_net, "nonuniform", **kwargs)
        snapshot_path = tmp_path / "obj"
        assert runner.run_one(
            alarm_net, "nonuniform", snapshot_path=snapshot_path,
            stop_after=200, **kwargs,
        ) is None
        resumed = runner.run_one(
            alarm_net, "nonuniform", snapshot_path=snapshot_path, **kwargs
        )
        assert resumed.total_messages == full.total_messages

    def test_resume_rejects_changed_spec(self, tmp_path):
        runner = ExperimentRunner(eval_events=100, seed=3)
        snapshot_path = tmp_path / "ck"
        runner.run_one(
            "alarm", "nonuniform", eps=0.3, n_sites=3, n_events=600,
            checkpoints=3, snapshot_path=snapshot_path, stop_after=200,
        )
        with pytest.raises(EvaluationError, match="different"):
            runner.run_one(
                "alarm", "uniform", eps=0.3, n_sites=3, n_events=600,
                checkpoints=3, snapshot_path=snapshot_path,
            )

    def test_stop_after_requires_snapshot_path(self):
        runner = ExperimentRunner(eval_events=100, seed=3)
        with pytest.raises(EvaluationError):
            runner.run_one(
                "alarm", "exact", n_sites=3, n_events=600, stop_after=200
            )
        with pytest.raises(EvaluationError):
            runner.run_grid("x", n_events=600, stop_after=200)

    def test_zipf_partitioner_rejects_changed_exponent(self):
        from repro.errors import StreamError
        from repro.monitoring.stream import ZipfPartitioner

        state = ZipfPartitioner(4, exponent=2.0, seed=1).state_dict()
        with pytest.raises(StreamError):
            ZipfPartitioner(4, exponent=1.0, seed=1).load_state_dict(state)

    def test_cache_key_distinguishes_engine(self):
        from repro.exec import RunTask

        task = RunTask(
            network="alarm", algorithm="nonuniform", eps=0.1, n_sites=3,
            n_events=600, checkpoints=(300, 600), hyz_engine="vectorized",
        )
        assert task.cache_key != task.replace(
            hyz_engine="sequential"
        ).cache_key

    def test_grid_snapshots_reference_networks_by_name(self, tmp_path):
        import json as _json

        runner = ExperimentRunner(eval_events=100, seed=5)
        resume_dir = tmp_path / "grid"
        runner.run_grid(
            "named", networks=["alarm"], algorithms=["nonuniform"],
            eps_values=[0.3], site_counts=[3], n_events=600, checkpoints=3,
            resume_dir=resume_dir, stop_after=200,
        )
        bundles = list(resume_dir.glob("*.ckpt"))
        assert len(bundles) == 1
        meta = _json.loads((bundles[0] / "meta.json").read_text())
        # Name-referenced spec: the snapshot stays small, no inline CPDs.
        assert meta["spec"]["network"] == "alarm"

    def test_grid_resume_dir_caches_and_completes(self, tmp_path):
        runner = ExperimentRunner(eval_events=100, seed=5)
        grid = dict(
            networks=["alarm"], algorithms=["exact", "nonuniform"],
            eps_values=[0.3], site_counts=[3], n_events=600, checkpoints=3,
        )
        reference = runner.run_grid("ref", **grid)
        resume_dir = tmp_path / "grid"
        first = runner.run_grid(
            "resumable", resume_dir=resume_dir, stop_after=200, **grid
        )
        assert len(first.runs) == 0
        assert len(first.params["incomplete_runs"]) == 2
        second = runner.run_grid("resumable", resume_dir=resume_dir, **grid)
        assert "incomplete_runs" not in second.params
        assert [r.total_messages for r in second.runs] == [
            r.total_messages for r in reference.runs
        ]
        # Results are cached: a third call loads them without re-running.
        third = runner.run_grid("resumable", resume_dir=resume_dir, **grid)
        assert [r.to_dict() for r in third.runs] == [
            r.to_dict() for r in second.runs
        ]


class TestCLI:
    def test_messages_resume_roundtrip(self, tmp_path, capsys):
        base = [
            "messages", "--network", "alarm", "--algorithms", "nonuniform",
            "--events", "600", "--sites", "3", "--eval-events", "100",
            "--checkpoints", "3",
        ]
        out_full = tmp_path / "full.json"
        assert main(base + ["--out", str(out_full)]) == 0
        resume_dir = tmp_path / "resume"
        out_part = tmp_path / "part.json"
        code = main(
            base
            + ["--resume-dir", str(resume_dir), "--stop-after", "200",
               "--out", str(out_part)]
        )
        assert code == EXIT_INCOMPLETE
        out_done = tmp_path / "done.json"
        code = main(
            base + ["--resume-dir", str(resume_dir), "--out", str(out_done)]
        )
        assert code == 0
        full = json.loads(out_full.read_text())
        done = json.loads(out_done.read_text())
        assert [r["total_messages"] for r in done["results"]] == [
            r["total_messages"] for r in full["results"]
        ]

    def test_stop_after_requires_resume_dir(self, capsys):
        assert main(["messages", "--stop-after", "100"]) == 2

    def test_classify_subcommand(self, tmp_path):
        out = tmp_path / "cls.json"
        code = main([
            "classify", "--features", "4", "--events", "1500",
            "--eval-events", "300", "--sites", "3", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["benchmark"] == "classification"
        assert document["schema"] == "repro-bench-v1"
        rows = {r["algorithm"]: r for r in document["results"]}
        assert set(rows) == {"exact", "naive-bayes", "nonuniform"}
        for name in ("naive-bayes", "nonuniform"):
            assert 0.0 <= rows[name]["agreement_vs_exact"] <= 1.0
            assert "error_rate_gap" in rows[name]
            assert rows[name]["total_messages"] > 0

    def test_separation_subcommand(self, tmp_path):
        out = tmp_path / "sep.json"
        code = main([
            "separation", "--events-values", "400,800",
            "--example-events", "500", "--eval-events", "50",
            "--sites", "3", "--out", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["benchmark"] == "separation"
        assert document["schema"] == "repro-bench-v1"
        assert document["theory"]["ratio"] > 1.0
        assert document["example"]["theory"]["ratio"] > 1.0
        assert len(document["results"]) == 2
        for row in document["results"]:
            assert row["uniform_messages"] > 0
            assert row["nonuniform_messages"] > 0


class TestPresetFunctions:
    def test_classification_document_paired_training(self):
        document = classification_experiment(
            n_features=4, n_events=4_000, eval_events=200, n_sites=3, seed=1,
            eps=0.5, algorithms=("naive-bayes",),
        )
        rows = {r["algorithm"]: r for r in document["results"]}
        # Exact counting costs exactly 2n per event; with a generous eps
        # on a long-enough stream the approximation must beat it.
        n = document["params"]["n_features"] + 1
        assert rows["exact"]["total_messages"] == 2 * n * 4_000
        assert rows["naive-bayes"]["total_messages"] < (
            rows["exact"]["total_messages"]
        )
        assert 0 <= document["params"]["ground_truth_error_rate"] <= 1

    def test_separation_document_shape(self):
        document = separation_experiment(
            events_values=(300,), example_events=300, eval_events=50,
            n_sites=3, seed=2,
        )
        assert document["crossover_events"] in (None, 300)
        assert document["example"]["n_events"] == 300
        assert document["params"]["events_values"] == [300]
