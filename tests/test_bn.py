"""Unit tests for the Bayesian-network layer (Table I, sampling, inference)."""

import itertools

import numpy as np
import pytest

from repro import ForwardSampler, VariableElimination, network_by_name
from repro.errors import ModelError, QueryError


class TestAlarmTable1:
    def test_node_edge_parameter_counts(self, alarm_net):
        # Table I of the paper: ALARM has 37 nodes, 46 edges, and 509 free
        # parameters under the sum_i (J_i - 1) K_i convention.
        assert alarm_net.n_variables == 37
        assert alarm_net.n_edges == 46
        assert alarm_net.parameter_count == 509

    def test_node_names_are_topological(self, alarm_net):
        seen = set()
        for name in alarm_net.node_names:
            for parent in alarm_net.dag.parents(name):
                assert parent in seen, f"{parent} after child {name}"
            seen.add(name)

    def test_registry_lookup_and_aliases(self, alarm_net):
        assert network_by_name("ALARM").n_variables == 37
        assert network_by_name("new-alarm").n_variables == 37
        with pytest.raises(ModelError):
            network_by_name("no-such-network")


class TestForwardSampler:
    def test_deterministic_under_fixed_seed(self, alarm_net):
        a = ForwardSampler(alarm_net, seed=123).sample(500)
        b = ForwardSampler(alarm_net, seed=123).sample(500)
        assert np.array_equal(a, b)
        c = ForwardSampler(alarm_net, seed=124).sample(500)
        assert not np.array_equal(a, c)

    def test_samples_in_range(self, alarm_net):
        data = ForwardSampler(alarm_net, seed=5).sample(200)
        cards = alarm_net.cardinalities()
        assert data.shape == (200, 37)
        assert data.min() >= 0
        assert np.all(data < cards[None, :])

    def test_root_marginal_matches_cpd(self, small_net):
        # The root's empirical distribution converges on its CPD column.
        data = ForwardSampler(small_net, seed=9).sample(40_000)
        idx = small_net.variable_index("A")
        freq = np.bincount(data[:, idx], minlength=2) / data.shape[0]
        expected = small_net.cpd("A").values[:, 0]
        assert np.abs(freq - expected).max() < 0.01


def _joint_enumeration(net):
    """Brute-force joint table over all full assignments."""
    cards = net.cardinalities()
    states = [range(int(c)) for c in cards]
    table = {}
    for assignment in itertools.product(*states):
        table[assignment] = net.probability(np.array(assignment))
    total = sum(table.values())
    assert abs(total - 1.0) < 1e-9
    return table


class TestVariableElimination:
    def test_marginal_matches_enumeration(self, small_net):
        joint = _joint_enumeration(small_net)
        engine = VariableElimination(small_net)
        for target in small_net.node_names:
            idx = small_net.variable_index(target)
            expected = np.zeros(small_net.cardinalities()[idx])
            for assignment, p in joint.items():
                expected[assignment[idx]] += p
            np.testing.assert_allclose(
                engine.marginal(target), expected, atol=1e-10
            )

    def test_posterior_matches_enumeration(self, small_net):
        joint = _joint_enumeration(small_net)
        engine = VariableElimination(small_net)
        d_idx = small_net.variable_index("D")
        b_idx = small_net.variable_index("B")
        evidence = {"D": 1}
        expected = np.zeros(3)
        for assignment, p in joint.items():
            if assignment[d_idx] == 1:
                expected[assignment[b_idx]] += p
        expected /= expected.sum()
        np.testing.assert_allclose(
            engine.marginal("B", evidence), expected, atol=1e-10
        )

    def test_evidence_probability_matches_enumeration(self, small_net):
        joint = _joint_enumeration(small_net)
        engine = VariableElimination(small_net)
        b_idx = small_net.variable_index("B")
        c_idx = small_net.variable_index("C")
        expected = sum(
            p for a, p in joint.items() if a[b_idx] == 2 and a[c_idx] == 0
        )
        got = engine.evidence_probability({"B": 2, "C": 0})
        assert got == pytest.approx(expected, abs=1e-12)

    def test_query_validation(self, small_net):
        engine = VariableElimination(small_net)
        with pytest.raises(QueryError):
            engine.query([], {})
        with pytest.raises(QueryError):
            engine.query(["A"], {"A": 0})
        with pytest.raises(QueryError):
            engine.query(["nope"])


class TestJointProbabilities:
    def test_batch_matches_scalar(self, small_net):
        data = ForwardSampler(small_net, seed=3).sample(50)
        batch = small_net.log_probability_batch(data)
        for row, value in zip(data, batch):
            assert value == pytest.approx(
                small_net.log_probability(row), abs=1e-12
            )

    def test_event_probability_of_full_assignment(self, small_net):
        data = ForwardSampler(small_net, seed=4).sample(5)
        for row in data:
            event = {
                name: int(row[i])
                for i, name in enumerate(small_net.node_names)
            }
            assert small_net.event_probability(event) == pytest.approx(
                small_net.probability(row), abs=1e-12
            )
