"""Tests for the HYZ span-replay engines.

The vectorized engine and the sequential engine consume the RNG stream in
different orders, so the contract is *self-consistency* (same seed, same
workload -> byte-identical results per engine) plus *statistical agreement*
with :class:`~repro.counters.reference.ReferenceHYZCounter`, the
per-increment oracle — see ``docs/hyz-protocol.md``.
"""

import numpy as np
import pytest

from repro import EstimatorSpec, HYZCounterBank
from repro.counters.reference import ReferenceHYZCounter
from repro.errors import CounterError, SpecError

ENGINES = ("vectorized", "sequential")


def _ragged_spans(rng, k, n_spans, max_count=50):
    """A shared (site, count) workload replayed into every replica."""
    return [
        (int(rng.integers(0, k)), int(rng.integers(1, max_count)))
        for _ in range(n_spans)
    ]


def _replicated_bank(engine, spans, *, replicas, k, eps, seed):
    bank = HYZCounterBank(replicas, k, eps, seed=seed, engine=engine)
    ids = np.arange(replicas)
    for site, count in spans:
        bank.bulk_add_site(site, ids, np.full(replicas, count))
    return bank


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(CounterError):
            HYZCounterBank(3, 2, 0.5, engine="turbo")

    def test_engine_exposed(self):
        assert HYZCounterBank(3, 2, 0.5).engine == "vectorized"
        assert (
            HYZCounterBank(3, 2, 0.5, engine="sequential").engine
            == "sequential"
        )


class TestVectorizedEngineAgreement:
    REPLICAS = 300

    def test_estimates_agree_with_reference_within_three_sigma(self):
        eps, k = 0.5, 5
        rng = np.random.default_rng(7)
        spans = _ragged_spans(rng, k, 100)
        total = sum(count for _, count in spans)
        bank = _replicated_bank(
            "vectorized", spans, replicas=self.REPLICAS, k=k, eps=eps, seed=99
        )
        assert np.all(bank.true_totals() == total)

        ref_rng = np.random.default_rng(100)
        reference = []
        for _ in range(self.REPLICAS):
            counter = ReferenceHYZCounter(k, eps, seed=ref_rng)
            for site, count in spans:
                counter.add(site, count)
            reference.append(counter.estimate())

        # Var[A] <= (eps * C)^2 bounds how far each *mean of R replicas* can
        # sit from its own expectation; both simulations realize the same
        # protocol, so their means must land within the combined 3-sigma
        # band of each other.
        tolerance = 2.0 * 3.0 * eps * total / np.sqrt(self.REPLICAS)
        assert abs(bank.estimates().mean() - np.mean(reference)) < tolerance

    def test_message_counts_agree_with_reference_in_expectation(self):
        eps, k = 0.5, 5
        rng = np.random.default_rng(8)
        spans = _ragged_spans(rng, k, 80)
        bank = _replicated_bank(
            "vectorized", spans, replicas=self.REPLICAS, k=k, eps=eps, seed=21
        )
        ref_rng = np.random.default_rng(22)
        reference_messages = []
        for _ in range(self.REPLICAS):
            counter = ReferenceHYZCounter(k, eps, seed=ref_rng)
            for site, count in spans:
                counter.add(site, count)
            reference_messages.append(counter.message_log.total)
        per_replica = bank.total_messages / self.REPLICAS
        assert per_replica == pytest.approx(
            np.mean(reference_messages), rel=0.15
        )

    def test_engines_agree_with_each_other(self):
        eps, k = 0.4, 9
        rng = np.random.default_rng(9)
        spans = _ragged_spans(rng, k, 60, max_count=300)
        total = sum(count for _, count in spans)
        banks = {
            engine: _replicated_bank(
                engine, spans, replicas=self.REPLICAS, k=k, eps=eps, seed=5
            )
            for engine in ENGINES
        }
        means = {e: b.estimates().mean() for e, b in banks.items()}
        tolerance = 2.0 * 3.0 * eps * total / np.sqrt(self.REPLICAS)
        assert abs(means["vectorized"] - means["sequential"]) < tolerance
        msgs = {e: b.total_messages for e, b in banks.items()}
        assert msgs["vectorized"] == pytest.approx(
            msgs["sequential"], rel=0.10
        )
        rounds = {e: b.rounds_started.mean() for e, b in banks.items()}
        assert rounds["vectorized"] == pytest.approx(
            rounds["sequential"], rel=0.10
        )

    def test_variance_within_eps_bound(self):
        eps, k, total = 0.4, 9, 4_000
        bank = HYZCounterBank(self.REPLICAS, k, eps, seed=43)
        rng = np.random.default_rng(44)
        remaining = total
        ids = np.arange(self.REPLICAS)
        while remaining > 0:
            chunk = min(remaining, 500)
            site = int(rng.integers(0, k))
            bank.bulk_add_site(site, ids, np.full(self.REPLICAS, chunk))
            remaining -= chunk
        assert bank.estimates().std() <= 1.15 * eps * total


class TestSeededDeterminism:
    """Same seed + same per-site slices -> byte-identical bank state.

    Pins the vectorized engine's RNG consumption order (first-gap batch,
    trailing-gap batch, interior binomial batch, trigger batches, per
    worklist pass); an accidental reordering changes these outputs.
    """

    def _run(self, engine, seed):
        bank = HYZCounterBank(40, 4, 0.3, seed=seed, engine=engine)
        workload_rng = np.random.default_rng(1)
        for _ in range(30):
            site = int(workload_rng.integers(0, 4))
            counts = workload_rng.integers(1, 60, size=40)
            bank.bulk_add_site(site, np.arange(40), counts)
        return bank

    @pytest.mark.parametrize("engine", ENGINES)
    def test_same_seed_same_state(self, engine):
        a = self._run(engine, seed=11)
        b = self._run(engine, seed=11)
        assert np.array_equal(a.estimates(), b.estimates())
        assert np.array_equal(a._local, b._local)
        assert np.array_equal(a._reported, b._reported)
        assert np.array_equal(a.rounds_started, b.rounds_started)
        assert a.message_log.snapshot() == b.message_log.snapshot()

    def test_different_seeds_differ(self):
        a = self._run("vectorized", seed=11)
        b = self._run("vectorized", seed=12)
        assert not np.array_equal(a.estimates(), b.estimates())

    def test_exact_mode_byte_identical_across_engines(self):
        # The exact-mode prefix consumes no randomness, so as long as every
        # counter stays exact (count < sqrt(k)/eps) the engines must agree
        # byte-for-byte, bulk pass or not.
        results = {}
        for engine in ENGINES:
            bank = HYZCounterBank(20, 4, 0.05, seed=1, engine=engine)
            for site in range(4):
                bank.bulk_add_site(site, np.arange(20), np.full(20, 10))
            assert np.all(bank.report_probabilities == 1.0)
            results[engine] = (
                bank.estimates(), bank.message_log.snapshot(),
                bank.rounds_started,
            )
        a, b = results["vectorized"], results["sequential"]
        assert np.array_equal(a[0], b[0])
        assert a[1] == b[1]
        assert np.array_equal(a[2], b[2])


class TestEstimatorEngineRouting:
    def test_spec_routes_engine(self, alarm_net):
        for engine in ENGINES:
            estimator = EstimatorSpec(
                alarm_net, "nonuniform", eps=0.2, n_sites=4, seed=0,
                hyz_engine=engine,
            ).build()
            assert estimator.bank.engine == engine

    def test_unknown_engine_raises_at_spec_validation(self, alarm_net):
        with pytest.raises(SpecError):
            EstimatorSpec(
                alarm_net, "uniform", eps=0.2, n_sites=4, hyz_engine="warp"
            )
