"""Tests for the TCP transport subsystem (``repro.net``).

Three layers, mirroring the package:

1. **Wire format** (``net/wire.py``): every ``dist/messages.py`` frame
   round-trips byte-identically; partial reads reassemble; zero-length
   payloads work; oversized frames and CRC mismatches raise *typed*
   errors synchronously (never hang a reader).
2. **Endpoints** (``net/transport.py`` / ``net/endpoint.py``): the
   handshake (token, channel, incarnation refusal), heartbeats,
   backpressure blocking with ``blocked_sends`` accounting, severed
   connections, and a SIGKILL-style half-written frame — all on a real
   loopback socket pair driven single-coordinator-threaded, the way the
   production event loop runs.
3. **The conformance contract over TCP**: the PR-7 matrix, worker kills
   (injected and SIGKILL), severed connections mid-round with
   reconnect + unreported-round replay, and the executor integration —
   all asserting byte-identical results against the in-process
   reference session.
"""

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from dist_faults import (
    DieOnceMarker,
    discard_frames,
    drop_sends,
    kill_after,
    merge,
    sever_after,
    sockbuf,
)
from repro.api.session import MonitoringSession
from repro.dist import DistributedSession, QueueTransport, TransportClosed
from repro.dist.messages import (
    IngestBatch,
    RoundSync,
    Shutdown,
    SiteAggregate,
    ThresholdUpdate,
    ValueReport,
)
from repro.dist.transport import POLL_INTERVAL
from repro.errors import ExecutionError
from repro.net import (
    ChecksumError,
    CoordinatorChannel,
    FrameDecoder,
    FrameTooLarge,
    HandshakeRefused,
    Hello,
    HelloAck,
    Listener,
    Ping,
    SendQueue,
    SocketTransport,
    WireError,
    decode_payload,
    encode_frame,
    make_hello,
)
from test_dist import assert_conformant, batches_for, run_pair, spec_for


def encoded(frame, **kwargs) -> bytes:
    return b"".join(encode_frame(frame, **kwargs))


def sample_frames():
    """One of every dist/messages.py frame (plus the control frames)."""
    rng = np.random.default_rng(7)
    data = rng.integers(0, 4, size=(12, 5), dtype=np.int64)
    site_ids = rng.integers(0, 3, size=12, dtype=np.int64)
    aggregates = [
        SiteAggregate(
            0, np.array([2, 5, 9], dtype=np.int64),
            np.array([1, 4, 2], dtype=np.int64), 7,
        ),
        SiteAggregate(
            2, np.array([1], dtype=np.int64),
            np.array([5], dtype=np.int64), 5,
        ),
    ]
    state = {"kind": "site-shard", "sites": [0, 2], "events_seen": 12,
             "next_seq": 3}
    return [
        IngestBatch(1, data, site_ids),
        ValueReport(0, 1, aggregates, state),
        ValueReport(1, 2, [], None),
        ThresholdUpdate(3, 2),
        RoundSync(1, 4),
        Shutdown(),
        Hello(1, 2, "reports", "deadbeef", coordinator=3),
        HelloAck(False, "stale incarnation"),
        Ping(),
    ]


def assert_frames_equal(a, b):
    assert type(a) is type(b)
    if isinstance(a, IngestBatch):
        assert a.seq == b.seq
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.site_ids, b.site_ids)
        assert a.data.dtype == b.data.dtype
    elif isinstance(a, ValueReport):
        assert (a.worker, a.seq, a.state) == (b.worker, b.seq, b.state)
        assert len(a.aggregates) == len(b.aggregates)
        for x, y in zip(a.aggregates, b.aggregates):
            assert (x.site, x.n_events) == (y.site, y.n_events)
            assert np.array_equal(x.counter_ids, y.counter_ids)
            assert np.array_equal(x.counts, y.counts)
    elif isinstance(a, ThresholdUpdate):
        assert (a.seq, a.rounds) == (b.seq, b.rounds)
    elif isinstance(a, RoundSync):
        assert (a.worker, a.acked) == (b.worker, b.acked)
    elif isinstance(a, Hello):
        assert (a.worker, a.incarnation, a.channel, a.mac, a.coordinator) == (
            b.worker, b.incarnation, b.channel, b.mac, b.coordinator
        )
    elif isinstance(a, HelloAck):
        assert (a.ok, a.reason) == (b.ok, b.reason)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    @pytest.mark.parametrize(
        "frame", sample_frames(), ids=lambda f: type(f).__name__
    )
    def test_every_frame_round_trips_byte_identically(self, frame):
        blob = encoded(frame)
        decoder = FrameDecoder()
        frames = decoder.feed(blob)
        assert len(frames) == 1
        assert_frames_equal(frames[0], frame)
        # Byte identity: re-encoding the decoded frame reproduces the
        # original stream exactly (dtype strings, meta order, arrays).
        assert encoded(frames[0]) == blob

    def test_zero_length_payload_frames(self):
        for frame in (Shutdown(), Ping()):
            blob = encoded(frame)
            assert len(blob) == 12  # header only: truly empty payload
            (out,) = FrameDecoder().feed(blob)
            assert type(out) is type(frame)

    def test_partial_reads_reassemble(self):
        frames = sample_frames()
        blob = b"".join(encoded(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(blob), 7):  # 7-byte reads split every header
            out.extend(decoder.feed(blob[i:i + 7]))
        assert len(out) == len(frames)
        for got, want in zip(out, frames):
            assert_frames_equal(got, want)
        assert decoder.frames_decoded == len(frames)
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_feed(self):
        frames = sample_frames()
        blob = b"".join(encoded(f) for f in frames)
        out = FrameDecoder().feed(blob)
        assert [type(f) for f in out] == [type(f) for f in frames]

    def test_oversized_frame_raises_on_encode(self):
        batch = IngestBatch(1, np.zeros((100, 10), np.int64),
                            np.zeros(100, np.int64))
        with pytest.raises(FrameTooLarge, match="frame limit"):
            encode_frame(batch, max_bytes=64)

    def test_oversized_frame_raises_on_decode_not_hangs(self):
        batch = IngestBatch(1, np.zeros((100, 10), np.int64),
                            np.zeros(100, np.int64))
        decoder = FrameDecoder(max_bytes=64)
        with pytest.raises(FrameTooLarge, match="limit"):
            decoder.feed(encoded(batch))
        # Poisoned: the stream position is unrecoverable.
        with pytest.raises(WireError, match="reconnect"):
            decoder.feed(b"")

    def test_crc_mismatch_raises_typed_error(self):
        blob = bytearray(encoded(RoundSync(1, 2)))
        blob[-1] ^= 0xFF  # flip one payload byte
        with pytest.raises(ChecksumError, match="CRC"):
            FrameDecoder().feed(bytes(blob))

    def test_bad_magic_raises(self):
        with pytest.raises(WireError, match="magic"):
            FrameDecoder().feed(b"XX" + b"\x00" * 10)

    def test_bad_version_raises(self):
        blob = bytearray(encoded(Ping()))
        blob[2] = 9
        with pytest.raises(WireError, match="version"):
            FrameDecoder().feed(bytes(blob))

    def test_unknown_frame_type_raises_on_encode(self):
        with pytest.raises(WireError, match="not a wire frame"):
            encode_frame(object())

    def test_unknown_kind_byte_raises_on_decode(self):
        with pytest.raises(WireError, match="unknown frame kind"):
            decode_payload(200, bytearray())

    def test_truncated_payload_raises(self):
        blob = encoded(IngestBatch(1, np.arange(8, dtype=np.int64).reshape(2, 4),
                                   np.zeros(2, np.int64)))
        header, payload = blob[:12], bytearray(blob[12:-8])
        with pytest.raises(WireError, match="overruns"):
            decode_payload(1, payload)

    def test_decoded_arrays_are_zero_copy_views(self):
        batch = IngestBatch(5, np.arange(20, dtype=np.int64).reshape(4, 5),
                            np.arange(4, dtype=np.int64))
        blob = encoded(batch)
        payload = bytearray(blob[12:])
        out = decode_payload(1, payload)
        backing = np.frombuffer(payload, dtype=np.uint8)
        assert np.shares_memory(out.data, backing)
        assert np.shares_memory(out.site_ids, backing)

    def test_empty_arrays_round_trip(self):
        batch = IngestBatch(
            1, np.empty((0, 5), np.int64), np.empty(0, np.int64)
        )
        (out,) = FrameDecoder().feed(encoded(batch))
        assert out.data.shape == (0, 5)
        assert out.site_ids.shape == (0,)


class TestSendQueue:
    def _entry_bytes(self, queue):
        return b"".join(bytes(b) for b in queue.buffers(limit=1000))

    def test_partial_write_bookkeeping_across_buffers(self):
        q = SendQueue()
        first = q.push(encode_frame(RoundSync(0, 1)))
        second = q.push(encode_frame(
            IngestBatch(1, np.arange(6, dtype=np.int64).reshape(2, 3),
                        np.zeros(2, np.int64))
        ))
        total = encoded(RoundSync(0, 1)) + encoded(
            IngestBatch(1, np.arange(6, dtype=np.int64).reshape(2, 3),
                        np.zeros(2, np.int64))
        )
        assert self._entry_bytes(q) == total
        assert q.pending_frames == 2
        # Advance through the first frame and into the second.
        cut = first["nbytes"] + 5
        q.advance(cut)
        assert first["done"] and not second["done"]
        assert self._entry_bytes(q) == total[cut:]
        assert q.pending_bytes == len(total) - cut
        q.advance(len(total) - cut)
        assert second["done"]
        assert not q

    def test_rewind_restarts_head_frame(self):
        q = SendQueue()
        q.push(encode_frame(RoundSync(0, 1)))
        blob = encoded(RoundSync(0, 1))
        q.advance(4)
        assert self._entry_bytes(q) == blob[4:]
        q.rewind()
        assert self._entry_bytes(q) == blob

    def test_drop_control_discards_stale_pings(self):
        q = SendQueue()
        q.push(encode_frame(Ping()), control=True)
        q.push(encode_frame(RoundSync(0, 1)))
        q.push(encode_frame(Ping()), control=True)
        q.drop_control()
        assert q.pending_frames == 1
        assert self._entry_bytes(q) == encoded(RoundSync(0, 1))


# ----------------------------------------------------------------------
# Endpoints on a real loopback socket pair
# ----------------------------------------------------------------------
def pump_until(listener, cond, timeout=5.0, step=0.02):
    deadline = time.monotonic() + timeout
    while not cond():
        listener.pump(step)
        if time.monotonic() >= deadline:
            raise AssertionError("listener condition never became true")


def raw_dial(listener, hello):
    """Dial + handshake with a bare socket; returns (sock, ack)."""
    sock = socket.create_connection(listener.address, timeout=5.0)
    sock.sendall(encoded(hello))
    decoder = FrameDecoder()
    frames = []
    sock.settimeout(5.0)
    got = {"data": b""}

    def drain():
        try:
            sock.setblocking(False)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                got["data"] += chunk
        except (BlockingIOError, InterruptedError):
            pass
        finally:
            sock.setblocking(True)
        frames.extend(decoder.feed(got["data"]))
        got["data"] = b""
        return bool(frames)

    pump_until(listener, drain)
    return sock, frames.pop(0)


class _Worker(threading.Thread):
    """Run transport-side blocking calls off the coordinator thread.

    Mirrors production: the dialer blocks in its own process while the
    coordinator thread pumps the listener; here a thread stands in for
    the process.
    """

    def __init__(self, fn):
        super().__init__(daemon=True)
        self.fn = fn
        self.value = None
        self.error = None
        self.start()

    def run(self):
        try:
            self.value = self.fn()
        except BaseException as exc:  # noqa: BLE001 - reported to the test
            self.error = exc

    def finish(self, timeout=10.0):
        self.join(timeout)
        assert not self.is_alive(), "worker thread hung"
        if self.error is not None:
            raise self.error
        return self.value


@pytest.fixture()
def listener():
    lst = Listener(poll_interval=0.01)
    yield lst
    lst.close()


@pytest.fixture()
def listener_gen2():
    """A listener acting as coordinator incarnation 2 (post-recovery)."""
    lst = Listener(poll_interval=0.01, incarnation=2)
    yield lst
    lst.close()


def transport_for(listener, channel="reports", *, worker=0, incarnation=0,
                  **kwargs):
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("connect_timeout", 5.0)
    return SocketTransport(
        listener.address, worker=worker, channel=channel,
        incarnation=incarnation, token=listener.token, **kwargs
    )


class TestHandshake:
    def test_accepts_expected_incarnation(self, listener):
        chan = listener.open_channel(0, "reports", 1)
        sock, ack = raw_dial(
            listener, make_hello(listener.token, 0, 1, "reports")
        )
        assert ack.ok
        assert chan.connected
        assert listener.stats()["accepted"] == 1
        sock.close()

    def test_refuses_bad_token(self, listener):
        # A dialer with the wrong session token produces a wrong MAC.
        listener.open_channel(0, "reports", 0)
        sock, ack = raw_dial(listener, make_hello("wrong", 0, 0, "reports"))
        assert not ack.ok and "token" in ack.reason
        assert listener.stats()["refused"] == 1
        sock.close()

    def test_refuses_tampered_identity(self, listener):
        # The MAC binds the identity fields: a captured Hello replayed
        # under a different worker/channel fails verification even
        # though the MAC itself was produced with the right token.
        listener.open_channel(0, "reports", 0)
        listener.open_channel(1, "reports", 0)
        hello = make_hello(listener.token, 0, 0, "reports")
        hello.worker = 1
        sock, ack = raw_dial(listener, hello)
        assert not ack.ok and "MAC" in ack.reason
        sock.close()

    def test_refuses_stale_coordinator_incarnation(self, listener_gen2):
        # The recovery guard: a worker spawned by a crashed coordinator
        # life dials the successor and is refused (docs/recovery.md).
        listener_gen2.open_channel(0, "reports", 0)
        sock, ack = raw_dial(
            listener_gen2,
            make_hello(listener_gen2.token, 0, 0, "reports", coordinator=1),
        )
        assert not ack.ok and "stale coordinator incarnation" in ack.reason
        sock2, ack2 = raw_dial(
            listener_gen2,
            make_hello(listener_gen2.token, 0, 0, "reports", coordinator=2),
        )
        assert ack2.ok
        sock.close()
        sock2.close()

    def test_refuses_stale_incarnation(self, listener):
        # The SIGKILL guard: after a respawn bumps the expected
        # incarnation, the dead worker's lingering dial is refused.
        listener.open_channel(0, "reports", 2)
        sock, ack = raw_dial(
            listener, make_hello(listener.token, 0, 1, "reports")
        )
        assert not ack.ok and "stale incarnation" in ack.reason
        sock.close()

    def test_refuses_unknown_channel(self, listener):
        sock, ack = raw_dial(
            listener, make_hello(listener.token, 5, 0, "reports")
        )
        assert not ack.ok and "unknown channel" in ack.reason
        sock.close()

    def test_bad_token_raises_typed_error_not_hang(self, listener):
        # End-to-end through SocketTransport: a refused MAC surfaces as
        # HandshakeRefused (a typed TransportClosed) instead of a hang.
        listener.open_channel(0, "reports", 0)
        transport = SocketTransport(
            listener.address, worker=0, channel="reports",
            incarnation=0, token="not-the-session-token",
            poll_interval=0.01, connect_timeout=5.0,
        )
        worker = _Worker(lambda: transport.recv(timeout=5.0))
        pump_until(listener, lambda: not worker.is_alive())
        with pytest.raises(HandshakeRefused, match="token"):
            worker.finish()
        transport.close()

    def test_transport_raises_handshake_refused(self, listener):
        listener.open_channel(0, "reports", 3)
        transport = transport_for(listener, incarnation=1)
        worker = _Worker(lambda: transport.recv(timeout=5.0))
        pump_until(listener, lambda: not worker.is_alive())
        with pytest.raises(HandshakeRefused, match="stale incarnation"):
            worker.finish()
        transport.close()

    def test_connect_timeout_when_nobody_listens(self):
        transport = SocketTransport(
            ("127.0.0.1", 1), worker=0, channel="reports",
            connect_timeout=0.3, poll_interval=0.01,
        )
        t0 = time.monotonic()
        with pytest.raises(TransportClosed, match="could not connect"):
            transport.send(RoundSync(0, 1))
        assert time.monotonic() - t0 < 5.0
        transport.close()


class TestSocketEndpoints:
    def test_both_directions_round_trip(self, listener):
        inbox_chan = listener.open_channel(0, "inbox", 0)
        reports_chan = listener.open_channel(0, "reports", 0)
        batch = IngestBatch(
            1, np.arange(15, dtype=np.int64).reshape(3, 5),
            np.zeros(3, np.int64),
        )

        def worker_side():
            inbox = transport_for(listener, "inbox")
            reports = transport_for(listener, "reports")
            try:
                frame = inbox.recv(timeout=10.0)
                reports.send(RoundSync(0, frame.seq))
                return frame, inbox.stats(), reports.stats()
            finally:
                reports.close()
                inbox.close()

        worker = _Worker(worker_side)
        inbox_chan.send(batch, timeout=10.0)
        sync = reports_chan.recv(timeout=10.0)
        frame, inbox_stats, report_stats = worker.finish()
        assert isinstance(sync, RoundSync) and sync.acked == 1
        assert_frames_equal(frame, batch)
        assert inbox_chan.stats()["sent"] == 1
        assert reports_chan.stats()["received"] == 1
        assert inbox_stats["received"] == 1
        assert report_stats["sent"] == 1

    def test_coordinator_send_backpressure_blocks_and_resumes(self):
        # Narrow windows both sides (the listener's sockbuf is applied
        # pre-listen, so accepted sockets inherit it); the worker
        # refuses to read until released, so a large frame must block
        # the channel send.  64 KiB windows, not pathological 8 KiB
        # ones: tiny receive windows trip the kernel's persist timer
        # and turn the drain into a ~5 frames/second crawl.
        listener = Listener(poll_interval=0.01, sockbuf=65536)
        self._backpressure_case(listener)

    def _backpressure_case(self, listener):
        chan = listener.open_channel(0, "inbox", 0)
        big = IngestBatch(
            1, np.arange(1_000_000, dtype=np.int64).reshape(-1, 5),
            np.zeros(200_000, np.int64),
        )
        release = threading.Event()

        def worker_side():
            transport = transport_for(listener, "inbox",
                                      fault=sockbuf(65536))
            try:
                transport._ensure_connected()
                release.wait(timeout=10.0)
                return transport.recv(timeout=10.0)
            finally:
                transport.close()

        worker = _Worker(worker_side)
        pump_until(listener, lambda: chan.connected)
        with pytest.raises(TransportClosed, match="backpressure"):
            chan.send(big, timeout=0.4)
        assert chan.blocked_sends == 1
        assert chan.blocked_seconds > 0.0
        release.set()
        try:
            # Identity-tracked retry: the same frame object resumes the
            # partially-written entry instead of queueing a duplicate.
            chan.send(big, timeout=10.0)
            assert chan.sent == 1
            frame = worker.finish()
            assert_frames_equal(frame, big)
        finally:
            listener.close()

    def test_worker_send_backpressure_blocks_then_pump_completes(self):
        listener = Listener(poll_interval=0.01, sockbuf=65536)
        chan = listener.open_channel(0, "reports", 0)
        big = ValueReport(0, 1, [
            SiteAggregate(
                0, np.arange(500_000, dtype=np.int64),
                np.ones(500_000, dtype=np.int64), 9,
            )
        ], None)

        timed_out = threading.Event()

        def worker_side():
            transport = transport_for(listener, "reports",
                                      fault=sockbuf(65536))
            try:
                transport._ensure_connected()
                # Past the handshake the coordinator stops pumping, so
                # the big frame must jam the kernel buffers and time
                # out.
                with pytest.raises(TransportClosed, match="backpressure"):
                    transport.send(big, timeout=0.4)
                stats_blocked = transport.stats()
                timed_out.set()
                # On timeout the frame stays queued (a wire stream
                # cannot un-send a partial frame); pumping finishes it.
                while transport._outbox:
                    transport.pump(0.02)
                return stats_blocked
            finally:
                transport.close()

        worker = _Worker(worker_side)
        try:
            pump_until(listener, lambda: chan.connected)
            assert timed_out.wait(10.0)
            pump_until(listener, lambda: chan._inbound)
            frame = chan.try_recv()
            stats_blocked = worker.finish()
        finally:
            listener.close()
        assert stats_blocked["blocked_sends"] == 1
        assert stats_blocked["blocked_seconds"] > 0.0
        assert_frames_equal(frame, big)

    def test_severed_connection_reconnects(self, listener, tmp_path):
        chan = listener.open_channel(0, "reports", 0)
        marker = DieOnceMarker(tmp_path, "sever")

        def worker_side():
            transport = transport_for(
                listener, "reports", fault=sever_after(1, marker),
            )
            try:
                transport.send(RoundSync(0, 1), timeout=10.0)
                transport.send(RoundSync(0, 2), timeout=10.0)
                return transport.stats()
            finally:
                transport.close()

        worker = _Worker(worker_side)
        got = [chan.recv(timeout=10.0), chan.recv(timeout=10.0)]
        stats = worker.finish()
        assert [f.acked for f in got] == [1, 2]
        assert stats["reconnects"] == 1
        assert chan.replacements == 1
        assert 0 in listener.take_disrupted()

    def test_drop_sends_fault_discards_silently(self, listener):
        chan = listener.open_channel(0, "reports", 0)

        def worker_side():
            transport = transport_for(listener, "reports",
                                      fault=drop_sends(1))
            try:
                transport.send(RoundSync(0, 1), timeout=10.0)  # dropped
                transport.send(RoundSync(0, 2), timeout=10.0)  # delivered
                return transport.stats()
            finally:
                transport.close()

        worker = _Worker(worker_side)
        frame = chan.recv(timeout=10.0)
        stats = worker.finish()
        assert frame.acked == 2
        assert stats == merge(stats, {"sent": 1, "dropped_frames": 1})

    def test_half_written_frame_on_eof_is_discarded(self, listener):
        # The SIGKILL-mid-send shape: EOF with a partial frame pending.
        # The connection is dropped, nothing is routed, no error leaks,
        # and the listener keeps serving new dials.
        chan = listener.open_channel(0, "reports", 0)
        sock, ack = raw_dial(listener, make_hello(listener.token, 0, 0, "reports"))
        assert ack.ok
        blob = encoded(RoundSync(0, 7))
        sock.sendall(blob[:len(blob) - 4])
        sock.close()
        pump_until(listener, lambda: not chan.connected)
        assert chan._inbound == []
        assert listener.stats()["wire_errors"] == 0
        assert listener.take_disrupted() == {0}
        # Still live: a fresh dial handshakes and delivers.
        sock2, ack2 = raw_dial(listener, make_hello(listener.token, 0, 0, "reports"))
        assert ack2.ok
        sock2.sendall(blob)
        pump_until(listener, lambda: chan._inbound)
        assert chan.try_recv().acked == 7
        sock2.close()

    def test_corrupt_stream_drops_connection_not_listener(self, listener):
        chan = listener.open_channel(0, "reports", 0)
        sock, ack = raw_dial(listener, make_hello(listener.token, 0, 0, "reports"))
        assert ack.ok
        blob = bytearray(encoded(RoundSync(0, 1)))
        blob[-1] ^= 0xFF
        sock.sendall(bytes(blob))
        pump_until(listener, lambda: not chan.connected)
        assert listener.stats()["wire_errors"] == 1
        assert chan._inbound == []
        sock.close()
        sock2, ack2 = raw_dial(listener, make_hello(listener.token, 0, 0, "reports"))
        assert ack2.ok
        sock2.close()

    def test_heartbeats_are_sent_and_never_counted(self, listener):
        chan = listener.open_channel(0, "reports", 0)

        def worker_side():
            transport = transport_for(
                listener, "reports", heartbeat_interval=0.05,
            )
            try:
                transport._ensure_connected()
                deadline = time.monotonic() + 0.5
                while time.monotonic() < deadline:
                    transport.pump(0.02)
                return transport.stats(), transport.connected
            finally:
                transport.close()

        worker = _Worker(worker_side)
        pump_until(listener, lambda: not worker.is_alive())
        stats, still_connected = worker.finish()
        listener.pump(0.0)
        # Pings crossed the wire but appear in no payload accounting,
        # and the connection stayed healthy throughout.
        assert stats["sent"] == 0
        assert stats["reconnects"] == 0
        assert still_connected
        assert chan.stats()["received"] == 0
        assert chan._inbound == []

    def test_heartbeat_timeout_drops_silent_peer(self, listener):
        listener.open_channel(0, "reports", 0)

        def worker_side():
            transport = transport_for(
                listener, "reports", heartbeat_timeout=0.15,
                heartbeat_interval=10.0,
            )
            try:
                transport._ensure_connected()
                assert transport.connected
                deadline = time.monotonic() + 2.0
                while transport.connected and time.monotonic() < deadline:
                    time.sleep(0.05)
                    transport.pump(0.0)
                return transport.connected
            finally:
                transport.close()

        worker = _Worker(worker_side)
        pump_until(listener, lambda: not worker.is_alive())
        assert worker.finish() is False

    def test_respawn_closes_old_channel_and_refuses_old_dials(self, listener):
        first = listener.open_channel(0, "reports", 0)
        sock, ack = raw_dial(listener, make_hello(listener.token, 0, 0, "reports"))
        assert ack.ok
        second = listener.open_channel(0, "reports", 1)
        assert first.closed and not second.closed
        with pytest.raises(TransportClosed, match="closed"):
            first.recv(timeout=0.01)
        sock.close()
        sock2, ack2 = raw_dial(listener, make_hello(listener.token, 0, 0, "reports"))
        assert not ack2.ok and "stale" in ack2.reason
        sock2.close()


# ----------------------------------------------------------------------
# Satellite: poll_interval threading (default pinned)
# ----------------------------------------------------------------------
class TestPollInterval:
    def test_queue_transport_default_unchanged(self):
        import queue

        assert POLL_INTERVAL == 0.05  # the regression pin
        transport = QueueTransport(queue.Queue())
        assert transport.poll_interval == POLL_INTERVAL
        assert QueueTransport(
            queue.Queue(), poll_interval=0.01
        ).poll_interval == 0.01

    def test_socket_endpoints_default_unchanged(self):
        lst = Listener()
        try:
            assert lst.poll_interval == POLL_INTERVAL
            assert lst.open_channel(0, "inbox", 0).poll_interval == POLL_INTERVAL
            transport = SocketTransport(
                lst.address, worker=0, channel="inbox"
            )
            assert transport.poll_interval == POLL_INTERVAL
            transport.close()
        finally:
            lst.close()

    def test_session_threads_poll_interval_into_transports(self):
        spec = spec_for("exact", "exact", k=2)
        with DistributedSession(spec, procs=2, poll_interval=0.01) as dist:
            assert all(
                h.inbox.poll_interval == 0.01 and
                h.reports.poll_interval == 0.01
                for h in dist._workers
            )


# ----------------------------------------------------------------------
# The conformance contract over TCP (real worker processes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["exact", "deterministic", "hyz"])
@pytest.mark.parametrize(
    "algorithm", ["exact", "baseline", "uniform", "nonuniform"]
)
class TestTcpConformanceMatrix:
    def test_tcp_equals_inprocess(self, algorithm, backend):
        spec = spec_for(algorithm, backend)
        batches = batches_for(spec.resolve_network(), rounds=2)
        run_pair(spec, batches, procs=2, transport="tcp")


class TestTcpFaultInjection:
    def test_killed_worker_recovers_over_tcp(self, tmp_path):
        marker = DieOnceMarker(tmp_path)
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=5)
        _, dist = run_pair(
            spec, batches, procs=2, transport="tcp",
            worker_faults={0: kill_after(2, marker)},
        )
        assert marker.fired
        assert dist.wire_stats()["worker_respawns"] == 1

    def test_sigkill_between_rounds_recovers_over_tcp(self):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=6)
        ref = MonitoringSession(spec)
        with DistributedSession(spec, procs=2, transport="tcp") as dist:
            for index, batch in enumerate(batches):
                ref.ingest(batch, validate=False)
                dist.ingest(batch, validate=False)
                if index == 2:
                    victim = dist._workers[1].process
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(timeout=5.0)
            assert_conformant(ref, dist)
            assert dist.wire_stats()["worker_respawns"] == 1

    def test_severed_reports_connection_mid_stream(self, tmp_path):
        # A network cut after the second report: the worker survives,
        # re-dials, and the stream completes conformantly.
        marker = DieOnceMarker(tmp_path, "sever")
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=5)
        _, dist = run_pair(
            spec, batches, procs=2, transport="tcp",
            worker_faults={0: sever_after(2, marker)},
        )
        assert marker.fired
        assert dist.wire_stats()["worker_respawns"] == 0
        assert dist._listener.stats()["replacements"] >= 1

    def test_discarded_report_is_replayed_without_duplicates(self):
        # Deterministic in-flight loss: the listener eats worker 0's
        # first report and severs.  Without the reconnect-replay path
        # the round could never complete; with it the run must both
        # finish and stay conformant, applying the round exactly once.
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=4)
        _, dist = run_pair(
            spec, batches, procs=2, transport="tcp",
            coordinator_faults={0: discard_frames(1)},
        )
        wire = dist.wire_stats()
        assert wire["replayed_rounds"] >= 1
        assert wire["duplicate_report_frames"] == 0
        assert wire["worker_respawns"] == 0
        assert dist._listener.stats()["discarded_frames"] == 1

    def test_tcp_backpressure_under_slow_consumer(self):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=4, size=40)
        _, dist = run_pair(
            spec, batches, procs=2, transport="tcp", max_pending=3,
            worker_inbox_faults={0: delay_recv_spec()},
        )
        stats = dist.wire_stats()
        assert stats["rounds_applied"] == 4

    def test_tcp_sampler_stream_with_kill(self, tmp_path):
        marker = DieOnceMarker(tmp_path)
        spec = spec_for("nonuniform", "hyz")
        ref = MonitoringSession(spec)
        ref.ingest_sampler(ref.sampler(seed=9), 300, chunk=60)
        with DistributedSession(
            spec, procs=2, transport="tcp",
            worker_faults={0: kill_after(2, marker)},
        ) as dist:
            dist.ingest_sampler(dist.sampler(seed=9), 300, chunk=60)
            assert_conformant(ref, dist)
            assert dist.wire_stats()["worker_respawns"] == 1


def delay_recv_spec():
    from dist_faults import delay_recv

    return delay_recv(0.2)


# ----------------------------------------------------------------------
# Executor / CLI integration
# ----------------------------------------------------------------------
class TestTransportTaskField:
    CHECKPOINTS = (200, 400)

    def _task(self, **kwargs):
        from repro.exec import RunTask

        return RunTask(
            network="alarm", algorithm="nonuniform", eps=0.3, n_sites=4,
            n_events=400, checkpoints=self.CHECKPOINTS, **kwargs
        )

    def test_default_transport_keeps_legacy_cache_keys(self):
        task = self._task(runtime="distributed")
        payload = task.to_dict()
        assert "transport" not in payload
        assert task.cache_key == self._task(
            runtime="distributed", transport="queue"
        ).cache_key

    def test_tcp_transport_round_trips(self):
        from repro.exec import RunTask

        task = self._task(runtime="distributed", transport="tcp")
        payload = task.to_dict()
        assert payload["transport"] == "tcp"
        assert RunTask.from_dict(payload) == task
        assert task.cache_key != self._task(runtime="distributed").cache_key

    def test_tcp_requires_distributed_runtime(self):
        with pytest.raises(ExecutionError, match="requires runtime"):
            self._task(transport="tcp")
        with pytest.raises(ExecutionError, match="transport"):
            self._task(runtime="distributed", transport="carrier-pigeon")

    def test_run_one_tcp_matches_inprocess(self):
        from repro.experiments.results import strip_timing
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(eval_events=100, seed=0)
        kwargs = dict(eps=0.3, n_sites=4, n_events=400, checkpoints=2)
        ref = runner.run_one("alarm", "nonuniform", **kwargs)
        tcp = runner.run_one(
            "alarm", "nonuniform", runtime="distributed", sites_procs=2,
            transport="tcp", **kwargs
        )
        assert strip_timing(tcp.to_dict()) == strip_timing(ref.to_dict())

    def test_cli_exposes_transport_flag(self, capsys):
        # argparse rejects unknown choices with exit code 2, proving the
        # flag is wired on the grid subcommands and on bench-dist.
        from repro.experiments.cli import main

        for argv in (
            ["messages", "--transport", "bogus"],
            ["bench-dist", "--transport", "bogus"],
        ):
            with pytest.raises(SystemExit) as err:
                main(argv)
            assert err.value.code == 2
            assert "--transport" in capsys.readouterr().err
