"""The read-serving subsystem: epochs, snapshots, caches, staleness.

Layers covered:

- ``MessageLog.epoch`` — every record path advances the sync epoch
  exactly once per call carrying messages; no-op calls never do.
- ``ModelSnapshot`` / ``QueryServer`` — served answers are bit-identical
  to the live session's scalar walks at every sync epoch, snapshots are
  rebuilt only on epoch advances, and all three LRUs behave.
- Theorem-3 staleness policy — exposed margin/threshold math, cached
  decisions served across epochs only while the margin provably holds.
- The satellite fixes — ``log_query_batch(strict=)`` unification with
  the scalar zero-denominator semantics, and the precomputed
  ``log_query_event`` plans.
"""

import math

import numpy as np
import pytest

from repro.api.session import MonitoringSession
from repro.api.spec import EstimatorSpec
from repro.errors import QueryError
from repro.monitoring.channel import MessageKind, MessageLog
from repro.serve import ModelSnapshot, QueryServer, QueryWorkload
from repro.serve.snapshot import ServePlan


def _session(alarm_net, *, backend="hyz", algorithm="nonuniform",
             eps=0.2, sites=4, seed=11, events=2500):
    spec = EstimatorSpec(
        network=alarm_net, algorithm=algorithm, eps=eps, n_sites=sites,
        seed=seed, counter_backend=backend,
    )
    session = MonitoringSession(spec, network=alarm_net)
    sampler = session.sampler(seed=seed + 1)
    session.ingest_sampler(sampler, events, chunk=500)
    return session, sampler


# ---------------------------------------------------------------------------
# MessageLog sync epoch
# ---------------------------------------------------------------------------
class TestMessageLogEpoch:
    def test_fresh_log_is_epoch_zero(self):
        assert MessageLog(3).epoch == 0

    def test_record_advances_once_per_call(self):
        log = MessageLog(3)
        log.record(MessageKind.REPORT, 0, 5)
        assert log.epoch == 1
        log.record(MessageKind.SYNC, 2, 1)
        assert log.epoch == 2
        log.record(MessageKind.BROADCAST, 1, 3)
        assert log.epoch == 3

    def test_zero_count_record_is_a_noop_epoch(self):
        log = MessageLog(3)
        log.record(MessageKind.REPORT, 0, 0)
        assert log.epoch == 0

    def test_broadcast_all_advances_once(self):
        log = MessageLog(5)
        log.record_broadcast_all(2)
        assert log.epoch == 1
        log.record_broadcast_all(0)
        assert log.epoch == 1

    def test_syncs_all_advances_once_per_batch(self):
        log = MessageLog(5)
        log.record_syncs_all(3)
        assert log.epoch == 1
        log.record_syncs_all()
        assert log.epoch == 2
        log.record_syncs_all(0)
        assert log.epoch == 2

    def test_reports_bulk_advances_once_per_call(self):
        log = MessageLog(4)
        log.record_reports_bulk(
            np.array([0, 1, 2, 3]), np.array([5, 1, 2, 9])
        )
        assert log.epoch == 1

    def test_reports_bulk_empty_and_zero_are_noops(self):
        log = MessageLog(4)
        log.record_reports_bulk(np.array([], dtype=np.int64),
                                np.array([], dtype=np.int64))
        assert log.epoch == 0
        log.record_reports_bulk(np.array([1, 2]), np.array([0, 0]))
        assert log.epoch == 0

    def test_state_dict_roundtrip_carries_epoch(self):
        log = MessageLog(2)
        log.record(MessageKind.REPORT, 0, 2)
        log.record_syncs_all()
        state = log.state_dict()
        assert state["epoch"] == 2
        other = MessageLog(2)
        other.load_state_dict(state)
        assert other.epoch == 2

    def test_load_tolerates_pre_epoch_bundles(self):
        log = MessageLog(2)
        log.record(MessageKind.REPORT, 0, 2)
        state = log.state_dict()
        del state["epoch"]
        other = MessageLog(2)
        other.load_state_dict(state)
        assert other.epoch == 0

    def test_every_ingest_advances_each_backend(self, alarm_net):
        for backend in ("exact", "deterministic", "hyz"):
            session, sampler = _session(
                alarm_net, backend=backend,
                algorithm="exact" if backend == "exact" else "nonuniform",
                events=300,
            )
            before = session.message_log.epoch
            assert before > 0
            session.ingest(sampler.sample(50))
            assert session.message_log.epoch > before

    def test_empty_ingest_is_a_noop_round(self, alarm_net):
        session, _ = _session(alarm_net, events=300)
        before = session.message_log.epoch
        session.ingest(np.empty((0, alarm_net.n_variables), dtype=np.int64))
        assert session.message_log.epoch == before


# ---------------------------------------------------------------------------
# Snapshot lifecycle
# ---------------------------------------------------------------------------
class TestSnapshotLifecycle:
    def test_snapshot_reused_within_epoch(self, alarm_net):
        session, _ = _session(alarm_net)
        server = session.serve()
        first = server.snapshot()
        again = server.snapshot()
        assert again is first
        assert server.snapshot_refreshes == 1

    def test_epoch_advance_rebuilds_exactly_once(self, alarm_net):
        session, sampler = _session(alarm_net)
        server = session.serve()
        server.snapshot()
        session.ingest(sampler.sample(100))
        rebuilt = server.snapshot()
        assert server.snapshot_refreshes == 2
        assert rebuilt.version == 2
        assert rebuilt.epoch == session.message_log.epoch
        assert server.snapshot() is rebuilt

    def test_noop_round_does_not_rebuild(self, alarm_net):
        session, _ = _session(alarm_net)
        server = session.serve()
        server.snapshot()
        session.ingest(np.empty((0, alarm_net.n_variables), dtype=np.int64))
        server.snapshot()
        assert server.snapshot_refreshes == 1

    def test_snapshot_arrays_are_immutable(self, alarm_net):
        session, _ = _session(alarm_net)
        snap = session.serve().snapshot()
        with pytest.raises(ValueError):
            snap.terms[0] = 0.0
        with pytest.raises(ValueError):
            snap.neg[0] = True

    def test_terms_match_live_estimates(self, alarm_net):
        session, _ = _session(alarm_net, backend="exact", algorithm="exact")
        estimator = session.estimator
        snap = session.serve().snapshot()
        estimates = estimator.bank.estimates()
        plan = ServePlan(estimator)
        for jid in range(0, estimator.n_joint_counters, 97):
            num = estimates[jid]
            den = estimates[plan.parent_of_joint[jid]]
            if num > 0 and den > 0:
                assert snap.terms[jid] == math.log(num) - math.log(den)
            else:
                assert snap.terms[jid] == -math.inf

    def test_value_caches_cleared_on_refresh(self, alarm_net):
        session, sampler = _session(alarm_net)
        server = session.serve()
        workload = QueryWorkload(alarm_net, seed=5)
        event = workload.events(1, pool_size=1)[0]
        server.log_event(event)
        server.log_event(event)
        assert server.stats()["event_cache"]["hits"] == 1
        session.ingest(sampler.sample(100))
        value = server.log_event(event)
        assert server.stats()["event_cache"]["size"] == 1
        assert value == session.estimator.log_query_event(event)


# ---------------------------------------------------------------------------
# Bit-identity to the live session at every sync epoch
# ---------------------------------------------------------------------------
class TestServedConformance:
    @pytest.mark.parametrize("backend,algorithm", [
        ("exact", "exact"),
        ("deterministic", "nonuniform"),
        ("hyz", "nonuniform"),
    ])
    def test_bit_identity_across_epochs(self, alarm_net, backend, algorithm):
        session, sampler = _session(
            alarm_net, backend=backend, algorithm=algorithm, events=1500
        )
        server = session.serve()
        workload = QueryWorkload(alarm_net, seed=3)
        rows = workload.assignments(60)
        events = workload.events(30, pool_size=8)
        targets, data = workload.classification_batch(30, pool_size=8)
        classifier = session.classifier()
        for _ in range(3):  # fresh epoch each pass
            for row in rows[:20]:
                assert server.log_joint(row) == session.log_query(row)
                assert server.joint(row) == session.query(row)
            live = np.array([session.log_query(r) for r in rows])
            assert np.array_equal(server.log_joint_batch(rows), live)
            for event in events:
                assert server.log_event(event) == \
                    session.estimator.log_query_event(event)
                assert server.event_probability(event) == \
                    session.query_event(event)
            assert np.array_equal(
                server.log_event_batch(events),
                np.array([
                    session.estimator.log_query_event(e) for e in events
                ]),
            )
            assert np.array_equal(
                server.classify_batch(targets, data),
                classifier.predict_batch(targets, data),
            )
            session.ingest(sampler.sample(120))

    def test_scores_and_predict_bitwise(self, alarm_net):
        session, _ = _session(alarm_net, events=1200)
        server = session.serve()
        classifier = session.classifier()
        workload = QueryWorkload(alarm_net, seed=9)
        rows = workload.assignments(10)
        names = alarm_net.node_names
        for target in (names[0], names[len(names) // 2], names[-1]):
            for row in rows:
                evidence = {
                    name: int(row[i])
                    for i, name in enumerate(names) if name != target
                }
                assert np.array_equal(
                    server.scores(target, evidence),
                    classifier.scores(target, evidence),
                )
                assert server.classify(target, evidence) == \
                    classifier.predict(target, evidence)

    def test_unseen_configuration_serves_neg_inf(self, small_net):
        spec = EstimatorSpec(
            network=small_net, algorithm="exact", n_sites=2, seed=0,
            counter_backend="exact",
        )
        session = MonitoringSession(spec, network=small_net)
        session.ingest(np.zeros((5, 4), dtype=np.int64))
        server = session.serve()
        unseen = np.array([1, 2, 1, 1], dtype=np.int64)
        assert session.log_query(unseen) == -math.inf
        assert server.log_joint(unseen) == -math.inf
        assert server.joint(unseen) == 0.0

    def test_error_parity_with_live_paths(self, alarm_net):
        session, _ = _session(alarm_net, events=500)
        server = session.serve()
        names = alarm_net.node_names
        with pytest.raises(QueryError):
            server.log_event({"no-such-variable": 0})
        # A child assigned without its parent: not ancestrally closed.
        child = next(n for n in names if alarm_net.dag.parents(n))
        with pytest.raises(QueryError):
            server.log_event({child: 0})
        with pytest.raises(QueryError):
            server.scores("no-such-variable", {})
        with pytest.raises(QueryError):
            server.classify(names[0], {})  # missing evidence
        full = {n: 0 for n in names}
        with pytest.raises(QueryError):
            server.classify(names[0], full)  # target in evidence

    def test_distributed_session_serve(self, alarm_net):
        from repro.dist import DistributedSession

        spec = EstimatorSpec(
            network=alarm_net, algorithm="nonuniform", eps=0.2, n_sites=3,
            seed=21, counter_backend="hyz",
        )
        ref = MonitoringSession(spec, network=alarm_net)
        sampler = ref.sampler(seed=22)
        batches = [sampler.sample(200) for _ in range(3)]
        for batch in batches:
            ref.ingest(batch, validate=False)
        workload = QueryWorkload(alarm_net, seed=23)
        rows = workload.assignments(20)
        with DistributedSession(spec, procs=2) as dist:
            for batch in batches:
                dist.ingest(batch, validate=False)
            server = dist.serve()
            assert np.array_equal(
                server.log_joint_batch(rows),
                np.array([ref.log_query(r) for r in rows]),
            )
            assert server.snapshot().epoch == ref.message_log.epoch


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------
class TestServerCaches:
    def test_event_lru_hits_on_repeats(self, alarm_net):
        session, _ = _session(alarm_net)
        server = session.serve()
        events = QueryWorkload(alarm_net, seed=2).events(
            100, pool_size=5, zipf_exponent=1.3
        )
        served = server.log_event_batch(events)
        stats = server.stats()["event_cache"]
        assert stats["misses"] == 5
        assert stats["hits"] == 95
        live = np.array([
            session.estimator.log_query_event(e) for e in events
        ])
        assert np.array_equal(served, live)

    def test_event_lru_evicts_beyond_capacity(self, alarm_net):
        session, _ = _session(alarm_net)
        server = session.serve(event_cache_size=3)
        events = QueryWorkload(alarm_net, seed=2).events(8, pool_size=8)
        for event in events:
            server.log_event(event)
        assert server.stats()["event_cache"]["size"] <= 3

    def test_decision_cache_same_epoch_hit(self, alarm_net):
        session, _ = _session(alarm_net)
        server = session.serve()
        targets, data = QueryWorkload(alarm_net, seed=4).classification_batch(
            10, pool_size=10
        )
        first = server.classify_batch(targets, data)
        again = server.classify_batch(targets, data)
        assert np.array_equal(first, again)
        distinct = len({
            (t, row.tobytes()) for t, row in zip(targets, data)
        })
        stats = server.stats()["decision_cache"]
        assert stats["misses"] == distinct
        assert stats["hits"] == 20 - distinct
        assert stats["stale_hits"] == 0


# ---------------------------------------------------------------------------
# Theorem-3 staleness policy
# ---------------------------------------------------------------------------
class TestStalenessBound:
    def test_decision_margin_math(self):
        margin = QueryServer.decision_margin
        assert margin(np.array([-1.0, -3.0])) == 2.0
        assert margin(np.array([-3.0, -1.0])) == 2.0
        assert margin(np.array([-1.0, -1.0])) == 0.0
        assert margin(np.array([-1.0])) == math.inf
        assert margin(np.array([-1.0, -math.inf])) == math.inf
        assert margin(np.array([-math.inf, -math.inf])) == 0.0

    def test_family_drift_zero_for_exact(self, alarm_net):
        session, _ = _session(
            alarm_net, backend="exact", algorithm="exact", events=500
        )
        server = session.serve()
        assert np.all(server.family_drift == 0.0)
        assert server.staleness_threshold(alarm_net.node_names[0]) == 0.0

    def test_family_drift_formula(self, alarm_net):
        session, _ = _session(alarm_net, events=500)
        server = session.serve()
        estimator = session.estimator
        eps = np.asarray(estimator.bank.eps, dtype=np.float64)
        for i, layout in enumerate(estimator._layouts[:5]):
            family = np.concatenate([
                eps[layout.joint_offset:
                    layout.joint_offset
                    + layout.cardinality * layout.k_configs],
                eps[layout.parent_offset:
                    layout.parent_offset + layout.k_configs],
            ])
            worst = float(family.max())
            expected = math.log((1 + worst) / (1 - worst))
            assert server.family_drift[i] == pytest.approx(expected)
            assert server.family_drift[i] > 0.0

    def test_threshold_sums_affected_families(self, alarm_net):
        session, _ = _session(alarm_net, events=500)
        server = session.serve()
        target = alarm_net.node_names[0]
        affected = [target, *alarm_net.dag.children(target)]
        expected = 2.0 * sum(
            float(server.family_drift[alarm_net.variable_index(name)])
            for name in affected
        )
        assert server.staleness_threshold(target) == pytest.approx(expected)

    def test_exact_decisions_survive_epoch_advances(self, alarm_net):
        session, sampler = _session(
            alarm_net, backend="exact", algorithm="exact", events=2000
        )
        server = session.serve()
        targets, data = QueryWorkload(alarm_net, seed=6).classification_batch(
            10, pool_size=10
        )
        first = server.classify_batch(targets, data)
        session.ingest(sampler.sample(50))
        again = server.classify_batch(targets, data)
        # Exact counters: delta = 0, so any positive margin keeps the
        # cached decision valid across the epoch advance.
        stats = server.stats()["decision_cache"]
        assert stats["stale_hits"] > 0
        assert np.array_equal(again, first)
        # ... and the served decisions still match a fresh computation.
        assert np.array_equal(
            again, session.classifier().predict_batch(targets, data)
        )

    def test_small_margin_invalidates_on_epoch_advance(self, alarm_net):
        session, sampler = _session(alarm_net, events=2000)
        server = session.serve()
        targets, data = QueryWorkload(alarm_net, seed=6).classification_batch(
            10, pool_size=10
        )
        server.classify_batch(targets, data)
        # Force every cached margin below its threshold: the policy must
        # invalidate all of them once the epoch moves.
        for entry in server._decision_cache.data.values():
            entry.margin = 0.0
        session.ingest(sampler.sample(50))
        served = server.classify_batch(targets, data)
        distinct = len({
            (t, row.tobytes()) for t, row in zip(targets, data)
        })
        stats = server.stats()["decision_cache"]
        assert stats["stale_hits"] == 0
        assert stats["invalidations"] == distinct
        assert np.array_equal(
            served, session.classifier().predict_batch(targets, data)
        )

    def test_within_epoch_serving_is_unconditional(self, alarm_net):
        session, _ = _session(alarm_net, events=2000)
        server = session.serve()
        targets, data = QueryWorkload(alarm_net, seed=6).classification_batch(
            5, pool_size=5
        )
        server.classify_batch(targets, data)
        for entry in server._decision_cache.data.values():
            entry.margin = 0.0  # even a zero margin serves within-epoch
        served = server.classify_batch(targets, data)
        assert np.array_equal(
            served, session.classifier().predict_batch(targets, data)
        )
        assert server.stats()["decision_cache"]["invalidations"] == 0


# ---------------------------------------------------------------------------
# Satellite: scalar/batch zero-denominator unification
# ---------------------------------------------------------------------------
class TestStrictBatchSemantics:
    def _poisoned_estimator(self, small_net):
        """Joint counter incremented without its parent family: the
        inconsistent state the scalar paths guard with QueryError."""
        spec = EstimatorSpec(
            network=small_net, algorithm="exact", n_sites=2, seed=0,
            counter_backend="exact",
        )
        session = MonitoringSession(spec, network=small_net)
        estimator = session.estimator
        # Make the all-zeros row walk cleanly through A, B, C (num and
        # den positive) so the scalar reaches D; there the joint counter
        # is positive but the (B=0, C=0) parent counter stays 0.
        ids, vals = [], []
        for layout in estimator._layouts[:3]:
            ids += [layout.joint_offset, layout.parent_offset]
            vals += [3, 3]
        ids.append(estimator._layouts[3].joint_offset)  # D=0 | B=0, C=0
        vals.append(3)
        estimator.bank.bulk_add_site(0, np.array(ids), np.array(vals))
        return session, estimator

    def test_scalar_raises_batch_default_folds(self, small_net):
        session, estimator = self._poisoned_estimator(small_net)
        bad_row = np.zeros((1, 4), dtype=np.int64)
        with pytest.raises(QueryError):
            estimator.log_query(bad_row[0])
        folded = estimator.log_query_batch(bad_row)
        assert folded[0] == -math.inf

    def test_strict_batch_matches_scalar_raise(self, small_net):
        session, estimator = self._poisoned_estimator(small_net)
        bad_row = np.zeros((1, 4), dtype=np.int64)
        with pytest.raises(QueryError):
            estimator.log_query_batch(bad_row, strict=True)
        with pytest.raises(QueryError):
            session.log_query_batch(bad_row, strict=True)

    def test_strict_batch_replicates_short_circuit_order(self, small_net):
        # Row whose *first* degenerate family has a zero numerator: the
        # scalar walk returns -inf there and never reaches the poisoned
        # later family, so strict mode must not raise either.
        session, estimator = self._poisoned_estimator(small_net)
        row = np.array([[1, 0, 0, 0]], dtype=np.int64)  # A=1 never seen
        assert estimator.log_query(row[0]) == -math.inf
        strict = estimator.log_query_batch(row, strict=True)
        assert strict[0] == -math.inf

    def test_strict_matches_default_on_consistent_data(self, alarm_net):
        session, _ = _session(alarm_net, events=800)
        rows = QueryWorkload(alarm_net, seed=8).assignments(50)
        assert np.array_equal(
            session.log_query_batch(rows, strict=True),
            session.log_query_batch(rows),
        )

    def test_served_strict_batch_parity(self, small_net):
        session, estimator = self._poisoned_estimator(small_net)
        server = session.serve()
        bad_row = np.zeros((1, 4), dtype=np.int64)
        with pytest.raises(QueryError):
            server.log_joint_batch(bad_row, strict=True)
        assert server.log_joint_batch(bad_row)[0] == -math.inf
        with pytest.raises(QueryError):
            server.log_joint(bad_row[0])


# ---------------------------------------------------------------------------
# Satellite: precomputed event-query plans
# ---------------------------------------------------------------------------
class TestEventQueryPrecompute:
    def test_plans_are_static_and_complete(self, alarm_net):
        session, _ = _session(alarm_net, events=300)
        estimator = session.estimator
        assert set(estimator._event_plans) == set(alarm_net.node_names)
        assert set(estimator._name_to_layout) == set(alarm_net.node_names)
        for name, (layout, parents, strides, _) in \
                estimator._event_plans.items():
            assert parents == alarm_net.cpd(name).parent_names
            assert len(strides) == len(parents)
            assert all(isinstance(s, int) for s in strides)

    def test_event_matches_full_query_on_closure_of_all(self, alarm_net):
        session, _ = _session(alarm_net, events=1500)
        rows = QueryWorkload(alarm_net, seed=1).assignments(20)
        names = alarm_net.node_names
        for row in rows:
            full_event = {name: int(row[i]) for i, name in enumerate(names)}
            assert session.estimator.log_query_event(full_event) == \
                session.log_query(row)


# ---------------------------------------------------------------------------
# Workload generator
# ---------------------------------------------------------------------------
class TestQueryWorkload:
    def test_seeded_determinism(self, alarm_net):
        a = QueryWorkload(alarm_net, seed=42)
        b = QueryWorkload(alarm_net, seed=42)
        assert np.array_equal(a.assignments(20), b.assignments(20))
        assert a.events(20, pool_size=4) == b.events(20, pool_size=4)
        ta, da = a.classification_batch(20, pool_size=4)
        tb, db = b.classification_batch(20, pool_size=4)
        assert ta == tb
        assert np.array_equal(da, db)

    def test_events_are_ancestrally_closed(self, alarm_net):
        for event in QueryWorkload(alarm_net, seed=7).events(
            30, pool_size=16
        ):
            for name in event:
                for parent in alarm_net.dag.parents(name):
                    assert parent in event

    def test_zipf_stream_repeats_hot_keys(self, alarm_net):
        events = QueryWorkload(alarm_net, seed=7).events(
            200, pool_size=10, zipf_exponent=1.5
        )
        distinct = {tuple(e.items()) for e in events}
        assert len(distinct) <= 10
        assert len(events) == 200

    def test_classification_targets_valid(self, alarm_net):
        workload = QueryWorkload(alarm_net, seed=7)
        targets, data = workload.classification_batch(25, pool_size=6)
        assert len(targets) == 25
        assert data.shape == (25, alarm_net.n_variables)
        assert set(targets) <= set(alarm_net.node_names)
        with pytest.raises(ValueError):
            workload.classification_batch(5, target="nope")

    def test_pinned_target_classification(self, alarm_net):
        target = alarm_net.node_names[3]
        targets, _ = QueryWorkload(alarm_net, seed=7).classification_batch(
            10, target=target
        )
        assert targets == [target] * 10
