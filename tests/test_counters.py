"""Property tests for the distributed counter banks."""

import numpy as np
import pytest

from repro import DeterministicCounterBank, ExactCounterBank, HYZCounterBank
from repro.errors import CounterError


def _random_workload(rng, n_counters, n_sites, n_ops):
    counter_ids = rng.integers(0, n_counters, size=n_ops)
    site_ids = rng.integers(0, n_sites, size=n_ops)
    counts = rng.integers(1, 7, size=n_ops)
    return counter_ids, site_ids, counts


class TestExactCounterBank:
    def test_matches_ground_truth_exactly(self):
        rng = np.random.default_rng(0)
        bank = ExactCounterBank(50, 8)
        truth = np.zeros(50, dtype=np.int64)
        for _ in range(5):
            counter_ids, site_ids, counts = _random_workload(rng, 50, 8, 400)
            bank.bulk_add(counter_ids, site_ids, counts)
            np.add.at(truth, counter_ids, counts)
        assert np.array_equal(bank.estimates(), truth.astype(float))
        assert np.array_equal(bank.true_totals(), truth)
        # Lemma 5 accounting: one message per increment.
        assert bank.total_messages == int(truth.sum())

    def test_grouped_path_matches_per_site_path(self):
        rng = np.random.default_rng(1)
        counter_ids, site_ids, counts = _random_workload(rng, 40, 6, 300)
        a = ExactCounterBank(40, 6)
        a.bulk_add(counter_ids, site_ids, counts)
        # Aggregate the same workload into sorted unique grouped triples.
        keys = site_ids * 40 + counter_ids
        dense = np.bincount(keys, weights=counts, minlength=40 * 6).astype(
            np.int64
        )
        touched = np.flatnonzero(dense)
        b = ExactCounterBank(40, 6)
        b.bulk_add_grouped(touched // 40, touched % 40, dense[touched])
        assert np.array_equal(a.estimates(), b.estimates())
        assert np.array_equal(a._local, b._local)
        assert a.total_messages == b.total_messages

    def test_bulk_add_validation(self):
        bank = ExactCounterBank(10, 3)
        with pytest.raises(CounterError):
            bank.bulk_add([0, 1], [0], [1, 1])
        with pytest.raises(CounterError):
            bank.add(10, 0)
        with pytest.raises(CounterError):
            bank.add(0, 3)
        with pytest.raises(CounterError):
            bank.bulk_add([0], [0], [-1])

    def test_bulk_add_grouped_validation(self):
        bank = ExactCounterBank(10, 3)
        with pytest.raises(CounterError):  # sites not sorted
            bank.bulk_add_grouped([1, 0], [0, 0], [1, 1])
        with pytest.raises(CounterError):  # duplicate (site, counter) pair
            bank.bulk_add_grouped([0, 0], [2, 2], [1, 1])
        with pytest.raises(CounterError):  # zero count
            bank.bulk_add_grouped([0], [0], [0])
        with pytest.raises(CounterError):  # counter out of range
            bank.bulk_add_grouped([0], [10], [1])


class TestHYZCounterBank:
    #: Replicate counters per experiment: all counters in one bank receive an
    #: identical stream, so each is an independent draw of the same protocol.
    REPLICAS = 400

    def _replicated_bank(self, eps, k, total, *, seed):
        bank = HYZCounterBank(self.REPLICAS, k, eps, seed=seed)
        rng = np.random.default_rng(seed + 1)
        remaining = total
        all_counters = np.arange(self.REPLICAS)
        while remaining > 0:
            chunk = min(remaining, 500)
            site = int(rng.integers(0, k))
            bank.bulk_add_site(
                site, all_counters, np.full(self.REPLICAS, chunk)
            )
            remaining -= chunk
        return bank

    def test_unbiased_within_three_sigma(self):
        eps, k, total = 0.4, 9, 4_000
        bank = self._replicated_bank(eps, k, total, seed=42)
        estimates = bank.estimates()
        # Var[A] <= (eps * C)^2, so the mean of R replicas deviates from C
        # by more than 3 * eps * C / sqrt(R) with probability < 0.3%.
        tolerance = 3.0 * eps * total / np.sqrt(self.REPLICAS)
        assert abs(estimates.mean() - total) < tolerance

    def test_variance_within_eps_bound(self):
        eps, k, total = 0.4, 9, 4_000
        bank = self._replicated_bank(eps, k, total, seed=43)
        estimates = bank.estimates()
        # The empirical std of R replicas concentrates below eps * C; allow
        # 15% estimation slack on top of the bound.
        assert estimates.std() <= 1.15 * eps * total

    def test_exact_while_counts_small(self):
        # While p == 1 (count below sqrt(k)/eps) the counter is exact.
        bank = HYZCounterBank(5, 4, 0.1, seed=7)
        for site in range(4):
            bank.bulk_add_site(site, np.arange(5), np.full(5, 3))
        assert np.array_equal(bank.estimates(), np.full(5, 12.0))
        assert np.all(bank.report_probabilities == 1.0)

    def test_uses_fewer_messages_than_exact(self):
        eps, k, total = 0.4, 9, 4_000
        bank = self._replicated_bank(eps, k, total, seed=44)
        exact_cost = self.REPLICAS * total
        assert bank.total_messages < 0.5 * exact_cost

    def test_eps_validation(self):
        with pytest.raises(CounterError):
            HYZCounterBank(3, 2, 0.0)
        with pytest.raises(CounterError):
            HYZCounterBank(3, 2, 1.0)
        with pytest.raises(CounterError):
            HYZCounterBank(3, 2, [0.1, 0.5, 1.5])

    @pytest.mark.parametrize("engine", ["sequential", "vectorized"])
    def test_exact_span_entered_past_doubling_threshold(self, engine):
        # Regression: when an exact-mode span starts with the doubling
        # condition already met (reported_sum >= 2 * base), the round must
        # advance *before* any increment is consumed.  The old code clamped
        # the step to max(room, 1) and silently over-stepped, folding the
        # new increment into the pre-advance round.  The state below cannot
        # arise through the public API (advances are eager), so it is
        # constructed directly.
        bank = HYZCounterBank(1, 2, 0.1, seed=0, engine=engine)
        bank._local[0, 0] = 10
        bank._reported[0, 0] = 10
        bank._reported_sum[0] = 10
        # _round_base is still 1.0, so the condition 10 >= 2 already holds.
        bank.bulk_add_site(0, np.array([0]), np.array([1]))
        # The advance must have synced at base 10 (the pre-span total), not
        # at 11 (the total after the over-step), and exactly once.
        assert bank._round_base[0] == 10.0
        assert bank.rounds_started[0] == 1
        assert bank.true_totals()[0] == 11


class TestBulkMatchesReference:
    def test_bulk_simulation_agrees_with_per_increment_protocol(self):
        # The skip-ahead bulk simulation and the per-increment reference
        # must agree statistically: both unbiased, comparable traffic.
        from repro import HYZCounterBank
        from repro.counters.reference import ReferenceHYZCounter

        eps, k, total, replicas = 0.5, 4, 800, 120
        bank = HYZCounterBank(replicas, k, eps, seed=10)
        per_site = total // k
        for site in range(k):
            bank.bulk_add_site(
                site, np.arange(replicas), np.full(replicas, per_site)
            )
        reference_estimates = []
        reference_messages = []
        rng = np.random.default_rng(11)
        for _ in range(replicas):
            counter = ReferenceHYZCounter(k, eps, seed=rng)
            for site in range(k):
                counter.add(site, per_site)
            reference_estimates.append(counter.estimate())
            reference_messages.append(counter.message_log.total)
        tolerance = 3.0 * eps * total / np.sqrt(replicas)
        assert abs(bank.estimates().mean() - total) < tolerance
        assert abs(np.mean(reference_estimates) - total) < tolerance
        bulk_messages = bank.total_messages / replicas
        assert bulk_messages == pytest.approx(
            np.mean(reference_messages), rel=0.3
        )


class TestDeterministicCounterBank:
    def test_sandwich_bounds_hold(self):
        rng = np.random.default_rng(3)
        eps, k = 0.25, 6
        bank = DeterministicCounterBank(30, k, eps)
        truth = np.zeros(30, dtype=np.int64)
        for _ in range(8):
            counter_ids, site_ids, counts = _random_workload(rng, 30, k, 300)
            bank.bulk_add(counter_ids, site_ids, counts)
            np.add.at(truth, counter_ids, counts)
        estimates = bank.estimates()
        # Keralapura-style guarantee: A <= C <= (1 + eps) * A + k.
        assert np.all(estimates <= truth)
        assert np.all(truth <= (1.0 + eps) * estimates + k)
        lower, upper = bank.guaranteed_bounds()
        assert np.all(lower <= truth)
        assert np.all(truth <= upper)

    def test_respects_threshold_growth(self):
        eps = 0.5
        bank = DeterministicCounterBank(1, 1, eps)
        messages = []
        for _ in range(200):
            bank.add(0, 0)
            messages.append(bank.total_messages)
        # Reports must be geometrically spaced: far fewer messages than
        # increments, and the counter never drifts beyond the (1+eps) slack.
        assert bank.total_messages < 30
        truth = bank.true_totals()[0]
        assert bank.estimates()[0] <= truth <= (1 + eps) * bank.estimates()[0] + 1
