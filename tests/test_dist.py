"""Tests for the multiprocess site/coordinator runtime (``repro.dist``).

The load-bearing guarantee is the conformance contract: for any
``EstimatorSpec`` and seeded stream, :class:`~repro.dist.DistributedSession`
produces the **same per-site message counts and the same final
estimates** as the in-process :class:`~repro.api.MonitoringSession`
reference — across the full algorithm × counter-backend matrix, under
pipelining, and across worker kills (SIGKILL included) with
state_dict-based respawn.  The suite also covers the transport layer's
backpressure and fault-injection machinery, the ``MessageLog`` edge
cases, the executor/CLI integration, and the auto-mode sampler.
"""

import os
import queue
import signal
import time

import numpy as np
import pytest

from dist_faults import DieOnceMarker, delay_recv, delay_send, kill_after, merge
from repro.api.session import MonitoringSession
from repro.api.spec import EstimatorSpec
from repro.bn.sampling import ForwardSampler
from repro.dist import (
    FAULT_EXIT_CODE,
    DistributedSession,
    QueueTransport,
    SiteShard,
    TransportClosed,
    create_once,
)
from repro.errors import ExecutionError, SessionError
from repro.exec.sampler import ShardedSampler
from repro.experiments.results import strip_timing
from repro.monitoring.channel import MessageKind, MessageLog


def spec_for(algorithm="nonuniform", backend="hyz", *, eps=0.2, k=5, seed=42):
    return EstimatorSpec(
        "alarm", algorithm, eps=eps, n_sites=k, seed=seed,
        counter_backend=backend,
    )


def batches_for(net, *, rounds=3, size=60, seed=2024):
    sampler = ForwardSampler(net, seed=seed)
    return [sampler.sample(size) for _ in range(rounds)]


def assert_conformant(ref: MonitoringSession, dist: DistributedSession):
    """The contract: identical tallies, per-site counts, and estimates."""
    assert dist.metrics() == ref.metrics()
    assert np.array_equal(
        dist.message_log.site_messages, ref.message_log.site_messages
    )
    assert np.array_equal(dist.estimates(), ref.estimates())
    assert dist.events_seen == ref.events_seen


def run_pair(spec, batches, **dist_kwargs):
    """Feed identical batches to a reference and a distributed session."""
    ref = MonitoringSession(spec)
    dist = DistributedSession(spec, **dist_kwargs)
    try:
        for batch in batches:
            ref.ingest(batch, validate=False)
            dist.ingest(batch, validate=False)
        assert_conformant(ref, dist)
    finally:
        dist.close()
    return ref, dist


# ----------------------------------------------------------------------
# Transport layer
# ----------------------------------------------------------------------
class TestCreateOnce:
    def test_first_creator_wins(self, tmp_path):
        marker = tmp_path / "marker"
        assert create_once(marker) is True
        assert create_once(marker) is False

    def test_die_once_marker_helper(self, tmp_path):
        marker = DieOnceMarker(tmp_path)
        assert not marker.fired
        assert marker.arm() is True
        assert marker.fired
        assert marker.arm() is False
        marker.reset()
        assert not marker.fired
        spec = kill_after(3, marker)
        assert spec == {"kill_after_sends": 3, "once_marker": marker.path}
        assert merge(spec, delay_send(0.1), delay_recv(0.2)) == {
            "kill_after_sends": 3, "once_marker": marker.path,
            "delay_send": 0.1, "delay_recv": 0.2,
        }


class TestQueueTransport:
    def test_roundtrip_counts_frames(self):
        transport = QueueTransport(queue.Queue())
        transport.send("a")
        transport.send("b")
        assert transport.recv() == "a"
        assert transport.try_recv() == "b"
        assert transport.sent == 2
        assert transport.received == 2
        assert transport.blocked_sends == 0

    def test_empty_queue_returns_none(self):
        transport = QueueTransport(queue.Queue())
        assert transport.try_recv() is None
        assert transport.recv(timeout=0.01) is None

    def test_full_queue_blocks_then_times_out(self):
        transport = QueueTransport(queue.Queue(maxsize=1))
        transport.send("fill")
        with pytest.raises(TransportClosed, match="backpressure"):
            transport.send("blocked", timeout=0.15)
        assert transport.blocked_sends == 1
        assert transport.blocked_seconds > 0.0

    def test_send_to_dead_peer_raises(self):
        transport = QueueTransport(queue.Queue(maxsize=1), name="inbox")
        transport.send("fill")
        with pytest.raises(TransportClosed, match="died"):
            transport.send("lost", alive=lambda: False)

    def test_recv_drains_before_reporting_death(self):
        transport = QueueTransport(queue.Queue())
        transport.queue.put("last-words")
        assert transport.recv(alive=lambda: False) == "last-words"
        with pytest.raises(TransportClosed, match="died"):
            transport.recv(alive=lambda: False)

    def test_delay_faults_slow_the_endpoint(self):
        slow = QueueTransport(queue.Queue(), fault=merge(
            delay_send(0.05), delay_recv(0.05)
        ))
        t0 = time.monotonic()
        slow.send("x")
        assert time.monotonic() - t0 >= 0.05
        t0 = time.monotonic()
        assert slow.recv() == "x"
        assert time.monotonic() - t0 >= 0.05

    def test_stats_are_json_ready(self):
        transport = QueueTransport(queue.Queue())
        transport.send("x")
        transport.recv()
        assert transport.stats() == {
            "sent": 1, "received": 1,
            "blocked_sends": 0, "blocked_seconds": 0.0,
        }

    def test_fault_exit_code_is_distinct(self):
        # 43 must differ from the chunked executor's 23 and from Python
        # traceback exits, so post-mortems can tell the faults apart.
        assert FAULT_EXIT_CODE == 43


# ----------------------------------------------------------------------
# Site shard (the worker's half, in-process)
# ----------------------------------------------------------------------
class TestSiteShard:
    def _shard(self, spec, sites):
        return SiteShard(spec, sites)

    def test_encode_emits_bulk_add_site_slices(self):
        spec = spec_for("exact", "exact", k=4)
        shard = self._shard(spec, range(4))
        net = spec.resolve_network()
        data = ForwardSampler(net, seed=1).sample(50)
        site_ids = np.arange(50) % 4
        aggregates = shard.encode(1, data, site_ids)
        sites = [a.site for a in aggregates]
        assert sites == sorted(sites)
        for agg in aggregates:
            assert np.all(np.diff(agg.counter_ids) > 0)  # unique ascending
            assert np.all(agg.counts > 0)
            assert agg.n_events == int((site_ids == agg.site).sum())
        assert shard.events_seen == 50
        assert shard.next_seq == 2

    def test_silent_sites_are_omitted(self):
        spec = spec_for("exact", "exact", k=6)
        shard = self._shard(spec, range(6))
        net = spec.resolve_network()
        data = ForwardSampler(net, seed=1).sample(20)
        site_ids = np.full(20, 3, dtype=np.int64)  # one busy site
        aggregates = shard.encode(1, data, site_ids)
        assert [a.site for a in aggregates] == [3]

    def test_aggregates_replay_into_a_real_bank(self):
        # Applying the shipped aggregates reproduces a direct update.
        spec = spec_for("exact", "exact", k=4)
        net = spec.resolve_network()
        data = ForwardSampler(net, seed=7).sample(80)
        site_ids = np.arange(80) % 4
        reference = spec.build(network=net)
        reference.update_batch(data, site_ids)
        shard = self._shard(spec, range(4))
        replayed = spec.build(network=net)
        for agg in shard.encode(1, data, site_ids):
            replayed.bank.bulk_add_site(agg.site, agg.counter_ids, agg.counts)
        assert np.array_equal(
            replayed.bank.estimates(), reference.bank.estimates()
        )

    def test_state_dict_roundtrip(self):
        spec = spec_for("exact", "exact", k=4)
        shard = self._shard(spec, (1, 2))
        shard.events_seen = 17
        shard.next_seq = 5
        fresh = self._shard(spec, (1, 2))
        fresh.load_state_dict(shard.state_dict())
        assert fresh.events_seen == 17
        assert fresh.next_seq == 5

    def test_load_state_dict_rejects_mismatches(self):
        spec = spec_for("exact", "exact", k=4)
        shard = self._shard(spec, (1, 2))
        with pytest.raises(ValueError, match="cannot"):
            shard.load_state_dict({"kind": "something-else"})
        other = self._shard(spec, (0, 3))
        with pytest.raises(ValueError, match="hosts"):
            shard.load_state_dict(other.state_dict())


# ----------------------------------------------------------------------
# The conformance matrix (the contract, across all algorithms x banks)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["exact", "deterministic", "hyz"])
@pytest.mark.parametrize(
    "algorithm", ["exact", "baseline", "uniform", "nonuniform"]
)
class TestConformanceMatrix:
    def test_channel_equals_distributed(self, algorithm, backend):
        spec = spec_for(algorithm, backend)
        batches = batches_for(spec.resolve_network())
        run_pair(spec, batches, procs=2)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_killed_worker_recovers_mid_round(self, tmp_path):
        marker = DieOnceMarker(tmp_path)
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=5)
        _, dist = run_pair(
            spec, batches, procs=2,
            worker_faults={0: kill_after(2, marker)},
        )
        assert marker.fired
        assert dist.wire_stats()["worker_respawns"] == 1

    def test_sigkill_between_rounds_recovers(self):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=6)
        ref = MonitoringSession(spec)
        with DistributedSession(spec, procs=2) as dist:
            for index, batch in enumerate(batches):
                ref.ingest(batch, validate=False)
                dist.ingest(batch, validate=False)
                if index == 2:
                    victim = dist._workers[1].process
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(timeout=5.0)
            assert_conformant(ref, dist)
            assert dist.wire_stats()["worker_respawns"] == 1

    def test_unrecoverable_worker_raises(self, tmp_path):
        # Without a die-once marker every respawned incarnation dies
        # again; the coordinator must give up instead of looping.
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=2)
        dist = DistributedSession(
            spec, procs=2, max_respawns=2,
            worker_faults={0: kill_after(0)},
        )
        try:
            with pytest.raises(ExecutionError, match="died"):
                for batch in batches:
                    dist.ingest(batch, validate=False)
        finally:
            dist._closed = True  # workers are already gone

    def test_backpressure_under_slow_consumer(self, tmp_path):
        # A slow site worker (delayed inbox consumption), a 1-slot
        # inbox, and pipelined rounds: ingest must stall (bounded
        # memory), record the stall, and still satisfy the contract.
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=4, size=40)
        _, dist = run_pair(
            spec, batches, procs=2, inbox_slots=1, max_pending=3,
            worker_inbox_faults={0: delay_recv(0.3)},
        )
        stats = dist.wire_stats()
        assert stats["blocked_sends"] > 0
        assert stats["blocked_seconds"] > 0.0

    def test_slow_reporter_still_conforms(self):
        spec = spec_for("uniform", "deterministic")
        batches = batches_for(spec.resolve_network(), rounds=3, size=40)
        run_pair(
            spec, batches, procs=2,
            worker_faults={1: delay_send(0.1)},
        )

    def test_kill_with_sampler_stream(self, tmp_path):
        # The fused ingest_sampler path must survive a kill too.
        marker = DieOnceMarker(tmp_path)
        spec = spec_for("nonuniform", "hyz")
        ref = MonitoringSession(spec)
        ref.ingest_sampler(ref.sampler(seed=9), 300, chunk=60)
        with DistributedSession(
            spec, procs=2, worker_faults={0: kill_after(2, marker)},
        ) as dist:
            dist.ingest_sampler(dist.sampler(seed=9), 300, chunk=60)
            assert_conformant(ref, dist)
            assert dist.wire_stats()["worker_respawns"] == 1


# ----------------------------------------------------------------------
# Deterministic replay pins (message-log values frozen in this file)
# ----------------------------------------------------------------------
class TestDeterministicReplay:
    def test_pinned_message_log_nonuniform_hyz(self):
        spec = spec_for("nonuniform", "hyz")  # eps=.2, k=5, seed=42
        batches = batches_for(spec.resolve_network(), rounds=3, size=80)
        with DistributedSession(spec, procs=2) as dist:
            for batch in batches:
                dist.ingest(batch, validate=False)
            assert dist.message_log.snapshot() == {
                "report": 17760, "broadcast": 10185, "sync": 0,
                "total": 27945,
            }
            assert dist.message_log.site_messages.tolist() == [
                3700, 2738, 3922, 3848, 3552,
            ]

    def test_pinned_message_log_with_syncs(self):
        # eps=.4 pushes HYZ report probabilities below 1, so round
        # advances emit SYNC traffic — pinned through the wire.
        spec = spec_for("uniform", "hyz", eps=0.4)
        batches = batches_for(spec.resolve_network(), rounds=6, size=400)
        with DistributedSession(spec, procs=2) as dist:
            for batch in batches:
                dist.ingest(batch, validate=False)
            assert dist.message_log.snapshot() == {
                "report": 158949, "broadcast": 24005, "sync": 110,
                "total": 183064,
            }
            assert dist.message_log.site_messages.tolist() == [
                33693, 31073, 32360, 31867, 30066,
            ]

    def test_same_seed_replays_identically(self):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=2)
        logs, estimates = [], []
        for _ in range(2):
            with DistributedSession(spec, procs=2) as dist:
                for batch in batches:
                    dist.ingest(batch, validate=False)
                logs.append(dist.message_log.state_dict())
                estimates.append(dist.estimates())
        assert np.array_equal(logs[0]["per_site"], logs[1]["per_site"])
        assert logs[0]["per_kind"] == logs[1]["per_kind"]
        assert np.array_equal(estimates[0], estimates[1])


# ----------------------------------------------------------------------
# MessageLog edge cases (previously untested)
# ----------------------------------------------------------------------
class TestMessageLogEdges:
    def test_empty_stream_log_is_all_zero(self):
        log = MessageLog(4)
        assert log.total == 0
        assert all(log.count(kind) == 0 for kind in MessageKind)
        assert log.site_messages.tolist() == [0, 0, 0, 0]
        assert log.snapshot() == {
            "report": 0, "broadcast": 0, "sync": 0, "total": 0,
        }

    def test_record_syncs_all_order_commutes(self):
        # Tallies are counters, so any interleaving of bulk records
        # lands on the same state — the property the coordinator's
        # batched ThresholdUpdate fan-out relies on.
        first, second = MessageLog(3), MessageLog(3)
        first.record_broadcast_all(2)
        first.record_syncs_all(1)
        first.record(MessageKind.REPORT, 1, 5)
        second.record(MessageKind.REPORT, 1, 5)
        second.record_syncs_all(1)
        second.record_broadcast_all(2)
        assert first.snapshot() == second.snapshot()
        assert np.array_equal(first.site_messages, second.site_messages)
        # Broadcasts are coordinator-sent (never in per-site tallies);
        # SYNC touches every site, REPORT only its own.
        assert first.count(MessageKind.BROADCAST) == 6
        assert first.count(MessageKind.SYNC) == 3
        assert first.coordinator_messages_sent == 6
        assert first.site_messages.tolist() == [1, 6, 1]

    def test_state_dict_roundtrip(self):
        log = MessageLog(3)
        log.record_broadcast_all()
        log.record_syncs_all()
        log.record(MessageKind.REPORT, 2, 4)
        restored = MessageLog(3)
        restored.load_state_dict(log.state_dict())
        assert restored.snapshot() == log.snapshot()
        assert np.array_equal(restored.site_messages, log.site_messages)

    def test_load_state_dict_rejects_wrong_shape(self):
        log = MessageLog(3)
        state = log.state_dict()
        wrong = dict(state)
        wrong["per_site"] = np.zeros(5, dtype=np.int64)
        with pytest.raises(Exception):
            MessageLog(3).load_state_dict(wrong)

    def test_empty_stream_through_distributed_session(self):
        spec = spec_for("nonuniform", "hyz", k=3)
        net = spec.resolve_network()
        with DistributedSession(spec, procs=2) as dist:
            empty = np.empty((0, net.n_variables), dtype=np.int64)
            assert dist.ingest(empty) == 0
            assert dist.total_messages == 0
            assert dist.events_seen == 0
            assert dist.message_log.site_messages.tolist() == [0, 0, 0]


# ----------------------------------------------------------------------
# The session API surface
# ----------------------------------------------------------------------
class TestDistributedSessionAPI:
    def _pair(self, rounds=2):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=rounds)
        ref = MonitoringSession(spec)
        dist = DistributedSession(spec, procs=2)
        for batch in batches:
            ref.ingest(batch, validate=False)
            dist.ingest(batch, validate=False)
        return ref, dist

    def test_queries_match_reference(self):
        ref, dist = self._pair()
        try:
            event = ForwardSampler(ref.network, seed=5).sample(4)
            assert dist.query(event[0]) == ref.query(event[0])
            assert dist.log_query(event[1]) == ref.log_query(event[1])
            assert np.array_equal(
                dist.log_query_batch(event), ref.log_query_batch(event)
            )
            named = {
                v.name: int(s)
                for v, s in zip(ref.network.variables(), event[2])
            }
            assert dist.query_event(named) == ref.query_event(named)
            assert np.array_equal(
                dist.estimated_network().log_probability_batch(event),
                ref.estimated_network().log_probability_batch(event),
            )
            assert dist.classifier() is not None
        finally:
            dist.close()

    def test_snapshot_restores_into_distributed(self, tmp_path):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=4)
        ref = MonitoringSession(spec)
        with DistributedSession(spec, procs=2) as dist:
            for batch in batches[:2]:
                ref.ingest(batch, validate=False)
                dist.ingest(batch, validate=False)
            dist.snapshot(tmp_path / "bundle")
        resumed = DistributedSession.restore(tmp_path / "bundle", procs=2)
        try:
            for batch in batches[2:]:
                ref.ingest(batch, validate=False)
                resumed.ingest(batch, validate=False)
            assert_conformant(ref, resumed)
        finally:
            resumed.close()

    def test_snapshots_are_runtime_agnostic(self, tmp_path):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=4)
        ref = MonitoringSession(spec)
        with DistributedSession(spec, procs=2) as dist:
            for batch in batches[:2]:
                ref.ingest(batch, validate=False)
                dist.ingest(batch, validate=False)
            dist.snapshot(tmp_path / "bundle")
        resumed = MonitoringSession.restore(tmp_path / "bundle")
        for batch in batches[2:]:
            ref.ingest(batch, validate=False)
            resumed.ingest(batch, validate=False)
        assert resumed.metrics() == ref.metrics()
        assert np.array_equal(resumed.estimates(), ref.estimates())

    def test_generator_seed_is_rejected(self):
        spec = EstimatorSpec(
            "alarm", "nonuniform", eps=0.2, n_sites=4,
            seed=np.random.default_rng(0),
        )
        with pytest.raises(SessionError, match="serializable"):
            DistributedSession(spec, procs=2)

    def test_closed_session_rejects_ingest(self):
        spec = spec_for("exact", "exact", k=3)
        dist = DistributedSession(spec, procs=2)
        dist.close()
        dist.close()  # idempotent
        with pytest.raises(SessionError, match="closed"):
            dist.ingest(np.zeros((1, 37), dtype=np.int64))

    def test_procs_validation_and_clamping(self):
        spec = spec_for("exact", "exact", k=3)
        with pytest.raises(SessionError, match="positive"):
            DistributedSession(spec, procs=0)
        with DistributedSession(spec, procs=16) as dist:
            assert dist.procs == 3  # clamped to k
            sites = [s for w in dist._workers for s in w.sites]
            assert sites == [0, 1, 2]  # contiguous ascending shards

    def test_pipelined_rounds_conform(self):
        spec = spec_for("nonuniform", "hyz")
        batches = batches_for(spec.resolve_network(), rounds=6, size=40)
        run_pair(spec, batches, procs=2, max_pending=3)

    def test_validation_catches_bad_events(self):
        spec = spec_for("exact", "exact", k=3)
        with DistributedSession(spec, procs=2) as dist:
            bad = np.full((2, 37), 999, dtype=np.int64)
            with pytest.raises(Exception, match="out-of-range"):
                dist.ingest(bad)

    def test_ingest_sampler_matches_reference(self):
        spec = spec_for("nonuniform", "hyz")
        ref = MonitoringSession(spec)
        ref.ingest_sampler(ref.sampler(seed=3), 240, chunk=80)
        with DistributedSession(spec, procs=2) as dist:
            assert dist.ingest_sampler(dist.sampler(seed=3), 240, chunk=80) == 240
            assert_conformant(ref, dist)


# ----------------------------------------------------------------------
# Executor / CLI integration
# ----------------------------------------------------------------------
class TestRunTaskRuntime:
    CHECKPOINTS = (200, 400)

    def _task(self, **kwargs):
        from repro.exec import RunTask

        return RunTask(
            network="alarm", algorithm="nonuniform", eps=0.3, n_sites=4,
            n_events=400, checkpoints=self.CHECKPOINTS, **kwargs
        )

    def test_default_runtime_keeps_legacy_cache_keys(self):
        task = self._task()
        payload = task.to_dict()
        # Serialized form (and therefore the cache key) is identical to
        # the pre-runtime-field schema for default descriptors.
        assert "runtime" not in payload
        assert "sites_procs" not in payload
        assert task.cache_key == self._task(runtime="inprocess").cache_key

    def test_distributed_runtime_round_trips(self):
        from repro.exec import RunTask

        task = self._task(runtime="distributed", sites_procs=2)
        payload = task.to_dict()
        assert payload["runtime"] == "distributed"
        assert payload["sites_procs"] == 2
        assert RunTask.from_dict(payload) == task
        assert task.cache_key != self._task().cache_key

    def test_invalid_runtime_fields_raise(self):
        with pytest.raises(ExecutionError, match="runtime"):
            self._task(runtime="cluster")
        with pytest.raises(ExecutionError, match="sites_procs"):
            self._task(sites_procs=0)

    def test_run_one_distributed_matches_inprocess(self):
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(eval_events=100, seed=0)
        kwargs = dict(
            eps=0.3, n_sites=4, n_events=400, checkpoints=2,
        )
        ref = runner.run_one("alarm", "nonuniform", **kwargs)
        dist = runner.run_one(
            "alarm", "nonuniform", runtime="distributed", sites_procs=2,
            **kwargs
        )
        assert strip_timing(dist.to_dict()) == strip_timing(ref.to_dict())

    def test_bench_dist_document(self):
        from repro.experiments.bench_dist import benchmark_distributed_runtime

        document = benchmark_distributed_runtime(
            "alarm", algorithm="nonuniform", eps=0.3, site_counts=(3,),
            procs=2, n_events=300, chunk=100, fault_events=150,
        )
        entry = document["results"][0]
        assert entry["conformant"] is True
        assert entry["wire"]["rounds_applied"] == 3
        assert document["fault_recovery"]["worker_respawns"] >= 1
        stripped = strip_timing(document)["results"][0]
        # Satellite fix: the dist timing fields are canonicalized, so
        # compare_bench stays stable across hosts.
        assert stripped["msgs_per_second"] == 0.0
        assert stripped["round_latency_ms"] == 0.0
        assert stripped["wall_seconds"] == 0.0
        assert stripped["model"]["speedup_vs_model"] == 0.0
        assert stripped["model"]["modeled_runtime_seconds"] != 0.0


# ----------------------------------------------------------------------
# Auto-mode sampler (ingest_sampler shard auto-selection)
# ----------------------------------------------------------------------
class TestSamplerAutoMode:
    def test_auto_mode_resolves_from_cpu_count(self):
        spec = spec_for("exact", "exact", k=3)
        session = MonitoringSession(spec)
        sampler = session.sampler(seed=1, mode="auto")
        assert isinstance(sampler, ShardedSampler)
        cores = os.cpu_count() or 1
        assert sampler.shards == cores
        assert sampler.mode == ("serial" if cores == 1 else "thread")

    def test_auto_mode_bytes_match_every_explicit_mode(self):
        # The draw layout depends only on the shard count, so auto mode
        # (whatever it resolves to) reproduces serial/thread/process
        # byte-identically at the same count.
        spec = spec_for("exact", "exact", k=3)
        session = MonitoringSession(spec)
        auto = session.sampler(seed=11, mode="auto", shards=3).sample(500)
        for mode in ("serial", "thread", "process"):
            explicit = session.sampler(seed=11, mode=mode, shards=3)
            assert explicit.shards == 3
            assert np.array_equal(explicit.sample(500), auto)

    def test_auto_mode_ingest_sampler_unchanged(self):
        # Ingesting through an auto-mode sampler changes nothing about
        # the protocol stream (the satellite's byte-identity pin).
        spec = spec_for("nonuniform", "hyz", k=3)
        explicit = MonitoringSession(spec)
        explicit.ingest_sampler(
            explicit.sampler(seed=4, mode="serial", shards=2), 200, chunk=50
        )
        auto = MonitoringSession(spec)
        auto.ingest_sampler(
            auto.sampler(seed=4, mode="auto", shards=2), 200, chunk=50
        )
        assert auto.metrics() == explicit.metrics()
        assert np.array_equal(auto.estimates(), explicit.estimates())
