"""End-to-end tests for the streaming MLE estimator (Algorithms 1-3)."""

import numpy as np
import pytest

from repro import (
    ALGORITHMS,
    EstimatorSpec,
    ForwardSampler,
    UniformPartitioner,
)
from repro.errors import AllocationError, CounterError, SpecError, StreamError


def build(network, algorithm, **kwargs):
    return EstimatorSpec(network, algorithm, **kwargs).build()


class TestExactEstimator:
    def test_message_count_is_2nm(self, alarm_net):
        # Lemma 5 / Table III: EXACTMLE costs exactly 2n messages per event.
        m, k = 1_500, 7
        estimator = build(alarm_net, "exact", n_sites=k)
        data = ForwardSampler(alarm_net, seed=11).sample(m)
        sites = UniformPartitioner(k, seed=12).assign(m)
        estimator.update_batch(data, sites)
        assert estimator.total_messages == 2 * alarm_net.n_variables * m
        assert estimator.events_seen == m

    def test_query_is_product_of_empirical_cpds(self, small_net):
        m, k = 4_000, 4
        estimator = build(small_net, "exact", n_sites=k)
        data = ForwardSampler(small_net, seed=21).sample(m)
        sites = UniformPartitioner(k, seed=22).assign(m)
        estimator.update_batch(data, sites)
        row = data[0]
        # With exact counters the estimate is exactly the empirical MLE.
        expected = 1.0
        for idx, name in enumerate(small_net.node_names):
            cpd = small_net.cpd(name)
            parents = [small_net.variable_index(p) for p in cpd.parent_names]
            joint_hits = np.sum(
                (data[:, idx] == row[idx])
                & np.all(data[:, parents] == row[parents], axis=1)
            )
            parent_hits = np.sum(np.all(data[:, parents] == row[parents], axis=1))
            expected *= joint_hits / parent_hits
        assert estimator.query(row) == pytest.approx(expected, rel=1e-9)

    def test_log_query_batch_matches_scalar(self, small_net):
        estimator = build(small_net, "exact", n_sites=3)
        data = ForwardSampler(small_net, seed=31).sample(500)
        sites = UniformPartitioner(3, seed=32).assign(500)
        estimator.update_batch(data, sites)
        batch = estimator.log_query_batch(data[:20])
        for row, value in zip(data[:20], batch):
            assert value == pytest.approx(estimator.log_query(row), abs=1e-12)


class TestNonuniformRecovery:
    def test_recovers_cpds_on_alarm(self, alarm_net):
        m, k = 20_000, 10
        estimator = build(
            alarm_net, "nonuniform", eps=0.1, n_sites=k, seed=3
        )
        data = ForwardSampler(alarm_net, seed=1).sample(m)
        sites = UniformPartitioner(k, seed=2).assign(m)
        estimator.update_batch(data, sites)
        errors = []
        for name in alarm_net.node_names:
            cpd = alarm_net.cpd(name)
            estimated = estimator.estimated_cpd_values(name)
            # Only score parent configurations the stream actually visited.
            layout = estimator._layouts[alarm_net.variable_index(name)]
            seen = (
                estimator.bank.estimates()[
                    layout.parent_offset : layout.parent_offset + layout.k_configs
                ]
                >= 50
            )
            if seen.any():
                errors.append(
                    np.abs(estimated[:, seen] - cpd.values[:, seen]).mean()
                )
        assert errors, "no parent configuration got 50+ observations"
        assert float(np.mean(errors)) < 0.05

    def test_learned_network_is_valid(self, small_net):
        estimator = build(small_net, "nonuniform", eps=0.2, n_sites=4,
                                   seed=9)
        data = ForwardSampler(small_net, seed=41).sample(3_000)
        sites = UniformPartitioner(4, seed=42).assign(3_000)
        estimator.update_batch(data, sites)
        learned = estimator.to_network()
        for name in learned.node_names:
            columns = learned.cpd(name).values.sum(axis=0)
            np.testing.assert_allclose(columns, 1.0, atol=1e-9)


class TestMessageOrdering:
    def test_algorithms_ordering_on_long_stream(self, alarm_net):
        # In the sampling regime (large eps, long stream) the paper's
        # hierarchy holds: exact >= baseline >= uniform >= nonuniform.
        net = alarm_net
        m, k, eps = 50_000, 5, 0.8
        data = ForwardSampler(net, seed=1).sample(m)
        sites = UniformPartitioner(k, seed=2).assign(m)
        messages = {}
        for algorithm in ALGORITHMS:
            estimator = build(net, algorithm, eps=eps, n_sites=k,
                                       seed=5)
            estimator.update_batch(data, sites)
            messages[algorithm] = estimator.total_messages
        assert (
            messages["exact"]
            >= messages["baseline"]
            >= messages["uniform"]
            >= messages["nonuniform"]
        ), messages
        # And approximation must be a substantial win over exact counting.
        assert messages["nonuniform"] < 0.5 * messages["exact"]


class TestValidation:
    def test_update_batch_input_errors(self, small_net):
        estimator = build(small_net, "exact", n_sites=4)
        good = np.zeros((3, 4), dtype=np.int64)
        with pytest.raises(StreamError):  # wrong width
            estimator.update_batch(np.zeros((3, 5), dtype=np.int64), [0, 1, 2])
        with pytest.raises(StreamError):  # site count mismatch
            estimator.update_batch(good, [0, 1])
        with pytest.raises(StreamError):  # site out of range
            estimator.update_batch(good, [0, 1, 4])
        with pytest.raises(StreamError):  # state out of range
            bad = good.copy()
            bad[0, 0] = 99
            estimator.update_batch(bad, [0, 1, 2])
        with pytest.raises(StreamError):  # unknown strategy
            estimator.update_batch(good, [0, 1, 2], strategy="quantum")

    def test_unknown_algorithm_and_backend(self, small_net):
        with pytest.raises(AllocationError):
            build(small_net, "no-such-algorithm")
        with pytest.raises(CounterError):
            build(small_net, "nonuniform", counter_backend="bogus")
        with pytest.raises(SpecError):
            build(small_net, "nonuniform", hyz_engine="warp")
        with pytest.raises(SpecError):
            build(small_net, "nonuniform", eps=1.5)

    def test_empty_batch_is_a_noop(self, small_net):
        estimator = build(small_net, "exact", n_sites=2)
        estimator.update_batch(np.zeros((0, 4), dtype=np.int64), [])
        assert estimator.events_seen == 0
        assert estimator.total_messages == 0
