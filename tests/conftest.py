"""Shared fixtures: the paper's ALARM network and a tiny exact-inference net."""

import numpy as np
import pytest

from repro import BayesianNetwork, alarm
from repro.bn.cpd import TabularCPD
from repro.bn.variable import Variable
from repro.graph.dag import DAG


@pytest.fixture(scope="session")
def alarm_net():
    return alarm()


@pytest.fixture(scope="session")
def small_net():
    """A 4-variable network small enough for brute-force joint enumeration.

    Structure: A -> B, A -> C, (B, C) -> D with cardinalities (2, 3, 2, 2).
    """
    dag = DAG({"A": (), "B": ("A",), "C": ("A",), "D": ("B", "C")})
    variables = [
        Variable("A", 2), Variable("B", 3), Variable("C", 2), Variable("D", 2)
    ]
    rng = np.random.default_rng(77)

    def column(j):
        raw = rng.dirichlet(np.ones(j))
        return 0.9 * raw + 0.1 / j

    def table(j, k):
        return np.stack([column(j) for _ in range(k)], axis=1)

    cpds = [
        TabularCPD("A", 2, (), (), table(2, 1)),
        TabularCPD("B", 3, ("A",), (2,), table(3, 2)),
        TabularCPD("C", 2, ("A",), (2,), table(2, 2)),
        TabularCPD("D", 2, ("B", "C"), (3, 2), table(2, 6)),
    ]
    return BayesianNetwork(dag, variables, cpds, name="small")
