"""Tests for the declarative build layer: specs, registries, the shim."""

import numpy as np
import pytest

from repro import EstimatorSpec, ForwardSampler, make_estimator
from repro.api import (
    algorithm_names,
    counter_backend_names,
    get_algorithm,
    get_counter_backend,
    register_algorithm,
    register_counter_backend,
)
from repro.api.registry import _ALGORITHMS, _COUNTER_BACKENDS
from repro.core.allocation import Allocation, uniform_allocation
from repro.counters.deterministic import DeterministicCounterBank
from repro.counters.exact import ExactCounterBank
from repro.counters.hyz import HYZCounterBank
from repro.errors import AllocationError, CounterError, SpecError


@pytest.fixture
def clean_registries():
    """Snapshot/restore the registries around plugin tests."""
    algorithms = dict(_ALGORITHMS)
    backends = dict(_COUNTER_BACKENDS)
    yield
    _ALGORITHMS.clear()
    _ALGORITHMS.update(algorithms)
    _COUNTER_BACKENDS.clear()
    _COUNTER_BACKENDS.update(backends)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(algorithm_names()) >= {
            "exact", "baseline", "uniform", "nonuniform", "naive-bayes"
        }
        assert set(counter_backend_names()) >= {
            "exact", "hyz", "deterministic"
        }

    def test_exact_algorithm_forces_backend(self):
        entry = get_algorithm("exact")
        assert entry.allocator is None
        assert entry.counter_backend == "exact"

    def test_duplicate_registration_rejected(self, clean_registries):
        with pytest.raises(AllocationError):
            register_algorithm("uniform", uniform_allocation)
        with pytest.raises(CounterError):
            register_counter_backend("hyz", lambda *a, **k: None)

    def test_overwrite_allowed_when_explicit(self, clean_registries):
        entry = register_algorithm(
            "uniform", uniform_allocation, overwrite=True,
            description="replacement",
        )
        assert get_algorithm("uniform") is entry

    def test_custom_algorithm_builds(self, small_net, clean_registries):
        def halved(network, eps):
            base = uniform_allocation(network, eps)
            return Allocation(
                base.joint_eps / 2.0, base.parent_eps / 2.0, "halved"
            )

        register_algorithm("halved-uniform", halved)
        estimator = EstimatorSpec(
            small_net, "halved-uniform", eps=0.4, n_sites=3, seed=0
        ).build()
        assert isinstance(estimator.bank, HYZCounterBank)
        base = uniform_allocation(small_net, 0.4)
        assert estimator.bank.eps.max() == pytest.approx(
            base.joint_eps.max() / 2.0
        )

    def test_custom_counter_backend_builds(self, small_net, clean_registries):
        seen = {}

        def factory(n_counters, n_sites, *, eps_per_counter, rng,
                    message_log, options):
            seen["options"] = options
            return DeterministicCounterBank(
                n_counters, n_sites, eps_per_counter, message_log=message_log
            )

        register_counter_backend("my-threshold", factory, randomized=False)
        estimator = EstimatorSpec(
            small_net, "uniform", eps=0.3, n_sites=2,
            counter_backend="my-threshold",
        ).build()
        assert isinstance(estimator.bank, DeterministicCounterBank)
        assert seen["options"]["engine"] == "vectorized"

    def test_unknown_lookups_raise(self):
        with pytest.raises(AllocationError):
            get_algorithm("nope")
        with pytest.raises(CounterError):
            get_counter_backend("nope")


class TestEstimatorSpec:
    def test_validation_errors(self, small_net):
        with pytest.raises(SpecError):
            EstimatorSpec(small_net, "uniform", eps=0.0)
        with pytest.raises(SpecError):
            EstimatorSpec(small_net, "uniform", n_sites=0)
        with pytest.raises(SpecError):
            EstimatorSpec(small_net, "uniform", seed=1.5)
        with pytest.raises(SpecError):
            EstimatorSpec(small_net, "uniform", partitioner="hash-ring")
        with pytest.raises(SpecError):
            EstimatorSpec(small_net, "uniform", zipf_exponent=-1)
        with pytest.raises(SpecError):
            EstimatorSpec(small_net, "uniform", joint_eps=(0.5, 2.0))
        with pytest.raises(SpecError):
            EstimatorSpec(small_net, "exact", joint_eps=(0.1,) * 4)
        with pytest.raises(SpecError):
            EstimatorSpec(42)

    def test_exact_ignores_eps_and_backend(self, small_net):
        spec = EstimatorSpec(small_net, "exact", eps=7.0, n_sites=3)
        estimator = spec.build()
        assert isinstance(estimator.bank, ExactCounterBank)
        assert spec.resolved_backend == "exact"

    def test_names_normalized(self, small_net):
        spec = EstimatorSpec(small_net, "  NonUniform ", partitioner="ROUND_ROBIN")
        assert spec.algorithm == "nonuniform"
        assert spec.partitioner == "round-robin"

    def test_network_by_name_resolution(self):
        spec = EstimatorSpec("alarm", "exact", n_sites=2)
        assert spec.resolve_network().n_variables == 37
        assert spec.network_name == "alarm"

    def test_allocation_overrides_apply(self, small_net):
        n = small_net.n_variables
        spec = EstimatorSpec(
            small_net, "uniform", eps=0.4, n_sites=3,
            joint_eps=(0.11,) * n, parent_eps=(0.07,) * n,
        )
        allocation = spec.allocation(small_net)
        assert np.all(allocation.joint_eps == 0.11)
        assert np.all(allocation.parent_eps == 0.07)
        assert allocation.name.endswith("-override")
        estimator = spec.build()
        assert set(np.unique(estimator.bank.eps)) == {0.11, 0.07}

    def test_allocation_override_wrong_length(self, small_net):
        spec = EstimatorSpec(small_net, "uniform", joint_eps=(0.1, 0.2))
        with pytest.raises(AllocationError):
            spec.allocation(small_net)

    def test_replace(self, small_net):
        spec = EstimatorSpec(small_net, "uniform", eps=0.2)
        other = spec.replace(algorithm="nonuniform")
        assert other.algorithm == "nonuniform"
        assert other.eps == 0.2

    def test_roundtrip_by_name(self):
        spec = EstimatorSpec(
            "alarm", "nonuniform", eps=0.25, n_sites=7, seed=11,
            hyz_engine="sequential", partitioner="zipf", zipf_exponent=1.5,
        )
        clone = EstimatorSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_roundtrip_inline_network(self, small_net):
        n = small_net.n_variables
        spec = EstimatorSpec(
            small_net, "uniform", eps=0.3, n_sites=2,
            joint_eps=(0.05,) * n,
        )
        clone = EstimatorSpec.from_dict(spec.to_dict())
        assert clone.network.name == small_net.name
        assert clone.joint_eps == spec.joint_eps
        # The embedded network rebuilds the identical layout.
        assert clone.build().n_counters == spec.build().n_counters

    def test_generator_seed_serializes_as_none(self, small_net):
        spec = EstimatorSpec(
            small_net, "uniform", seed=np.random.default_rng(3)
        )
        assert spec.to_dict()["seed"] is None

    def test_build_matches_session_estimator_layout(self, small_net):
        spec = EstimatorSpec(small_net, "nonuniform", eps=0.3, n_sites=4, seed=2)
        assert spec.build().n_counters == spec.session().estimator.n_counters


class TestDeprecatedShim:
    def test_warns_and_builds_equivalently(self, small_net):
        with pytest.warns(DeprecationWarning, match="EstimatorSpec"):
            shimmed = make_estimator(
                small_net, "nonuniform", eps=0.2, n_sites=4, seed=9
            )
        direct = EstimatorSpec(
            small_net, "nonuniform", eps=0.2, n_sites=4, seed=9
        ).build()
        data = ForwardSampler(small_net, seed=1).sample(1_000)
        sites = np.arange(1_000) % 4
        shimmed.update_batch(data, sites)
        direct.update_batch(data, sites)
        assert np.array_equal(
            shimmed.bank.estimates(), direct.bank.estimates()
        )
        assert shimmed.total_messages == direct.total_messages

    def test_shim_routes_backend_and_engine(self, small_net):
        with pytest.warns(DeprecationWarning):
            estimator = make_estimator(
                small_net, "uniform", eps=0.3, n_sites=2,
                counter_backend="deterministic",
            )
        assert isinstance(estimator.bank, DeterministicCounterBank)
        with pytest.warns(DeprecationWarning):
            estimator = make_estimator(
                small_net, "uniform", eps=0.3, n_sites=2,
                hyz_engine="sequential",
            )
        assert estimator.bank.engine == "sequential"
