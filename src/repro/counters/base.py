"""Common interface and bookkeeping for banks of distributed counters."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import CounterError
from repro.monitoring.channel import MessageLog
from repro.utils.validation import check_positive_int


class CounterBank(abc.ABC):
    """A bank of ``N`` distributed counters over ``k`` sites.

    A *bank* rather than individual counter objects: the paper's estimators
    need one counter per CPD table entry (hundreds of thousands for MUNIN),
    so state lives in dense arrays indexed by counter id.

    Parameters
    ----------
    n_counters:
        Number of counters ``N``.
    n_sites:
        Number of sites ``k``.
    message_log:
        Where to tally communication; a fresh log is created if omitted.
    """

    def __init__(
        self,
        n_counters: int,
        n_sites: int,
        *,
        message_log: MessageLog | None = None,
    ) -> None:
        self.n_counters = check_positive_int(n_counters, "n_counters")
        self.n_sites = check_positive_int(n_sites, "n_sites")
        self.message_log = message_log or MessageLog(n_sites)
        if self.message_log.n_sites != self.n_sites:
            raise CounterError(
                f"message log has {self.message_log.n_sites} sites, "
                f"bank has {self.n_sites}"
            )
        # Ground-truth per-site counts; the coordinator never reads these
        # directly (only through the protocol), but tests and exact banks do.
        self._local = np.zeros((self.n_counters, self.n_sites), dtype=np.int64)

    # ------------------------------------------------------------------
    def _validate_bulk(self, counter_ids, site_ids, counts):
        counter_ids = np.asarray(counter_ids, dtype=np.int64)
        site_ids = np.asarray(site_ids, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if not (counter_ids.shape == site_ids.shape == counts.shape):
            raise CounterError("counter_ids, site_ids, counts must align")
        if counter_ids.ndim != 1:
            raise CounterError("bulk_add expects 1-D arrays")
        if counter_ids.size == 0:
            return counter_ids, site_ids, counts
        if counter_ids.min() < 0 or counter_ids.max() >= self.n_counters:
            raise CounterError("counter id out of range")
        if site_ids.min() < 0 or site_ids.max() >= self.n_sites:
            raise CounterError("site id out of range")
        if counts.min() < 0:
            raise CounterError("counts must be >= 0")
        return counter_ids, site_ids, counts

    @abc.abstractmethod
    def _apply_site(self, site: int, counter_ids: np.ndarray,
                    counts: np.ndarray) -> None:
        """Apply aggregated increments at one site.

        ``counter_ids`` are unique, sorted, in-range; ``counts`` are the
        positive increment totals.  The simulated protocol decides which
        messages this traffic triggers.

        This is the whole-slice hook of the grouped fast path: every entry
        point (``bulk_add``, ``bulk_add_site``, ``bulk_add_grouped``) hands
        a bank one complete site slice at a time, in ascending site order,
        so implementations may batch work across all counters touched at
        the site — :class:`~repro.counters.hyz.HYZCounterBank` vectorizes
        its whole span replay here.  Banks whose state is site-independent
        can go further and override :meth:`_apply_grouped` to consume the
        entire multi-site batch at once (see
        :class:`~repro.counters.exact.ExactCounterBank`).
        """

    @abc.abstractmethod
    def estimates(self) -> np.ndarray:
        """The coordinator's current estimate of every counter (float64)."""

    # ------------------------------------------------------------------
    # State externalization (the snapshot/resume protocol)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All mutable protocol state as a flat dict.

        Values are either numpy arrays (copied) or JSON-serializable
        objects (ints, floats, nested plain dicts — e.g. a Generator's
        bit-generator state).  Configuration (``eps``, engine, bank
        dimensions) is *not* included: it is reconstructed from the
        :class:`~repro.api.spec.EstimatorSpec` that built the bank, and
        :meth:`load_state_dict` validates shapes against it.  Subclasses
        extend the dict via ``super().state_dict()``.
        """
        return {"local": self._local.copy()}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (in place)."""
        self._load_array(state, "local", self._local)

    def _load_array(self, state: dict, key: str, target: np.ndarray) -> None:
        """Copy ``state[key]`` into ``target`` after shape/dtype checks."""
        if key not in state:
            raise CounterError(f"state dict is missing {key!r}")
        value = np.asarray(state[key])
        if value.shape != target.shape:
            raise CounterError(
                f"state {key!r} has shape {value.shape}, bank expects "
                f"{target.shape}"
            )
        target[...] = value.astype(target.dtype, copy=False)

    # ------------------------------------------------------------------
    def bulk_add(self, counter_ids, site_ids, counts) -> None:
        """Apply ``counts[j]`` increments of counter ``counter_ids[j]``
        observed at site ``site_ids[j]``.  Pairs may repeat."""
        counter_ids, site_ids, counts = self._validate_bulk(
            counter_ids, site_ids, counts
        )
        if counter_ids.size == 0:
            return
        for site in range(self.n_sites):
            mask = site_ids == site
            if not mask.any():
                continue
            dense = np.bincount(
                counter_ids[mask],
                weights=counts[mask].astype(np.float64),
                minlength=self.n_counters,
            ).astype(np.int64)
            touched = np.nonzero(dense)[0]
            if touched.size:
                self._apply_site(site, touched, dense[touched])

    def bulk_add_grouped(self, site_ids, counter_ids, counts, *,
                         check: bool = True) -> None:
        """Apply pre-grouped ``(site, counter, count)`` increment triples.

        The fast path used by the streaming estimator's argsort sharding:
        the triples must already be aggregated so that ``(site, counter)``
        pairs are unique, sorted site-major then counter-minor, with strictly
        positive counts.  Each site's slice is handed to :meth:`_apply_site`
        directly — no per-site masking or dense ``bincount`` scan — and sites
        are visited in ascending order, so randomized banks consume their RNG
        streams exactly as the per-site path would.

        ``check=False`` skips the O(size) ordering/range validation; it is
        reserved for callers that produce the triples by construction (the
        streaming estimator's grouping pass emits ``flatnonzero`` output of
        a dense per-site histogram, which is sorted and unique by design).
        External callers should leave it on.
        """
        site_ids = np.asarray(site_ids, dtype=np.int64)
        counter_ids = np.asarray(counter_ids, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if not (site_ids.shape == counter_ids.shape == counts.shape):
            raise CounterError("site_ids, counter_ids, counts must align")
        if site_ids.ndim != 1:
            raise CounterError("bulk_add_grouped expects 1-D arrays")
        if site_ids.size == 0:
            return
        if check:
            if site_ids[0] < 0 or site_ids[-1] >= self.n_sites:
                raise CounterError("site id out of range")
            if counter_ids.min() < 0 or counter_ids.max() >= self.n_counters:
                raise CounterError("counter id out of range")
            if counts.min() <= 0:
                raise CounterError("bulk_add_grouped counts must be > 0")
            site_steps = np.diff(site_ids)
            if np.any(site_steps < 0):
                raise CounterError("bulk_add_grouped site_ids must be sorted")
            if np.any((site_steps == 0) & (np.diff(counter_ids) <= 0)):
                raise CounterError(
                    "bulk_add_grouped (site, counter) pairs must be unique "
                    "and sorted counter-minor within each site"
                )
        self._apply_grouped(site_ids, counter_ids, counts)

    def _apply_grouped(self, site_ids: np.ndarray, counter_ids: np.ndarray,
                       counts: np.ndarray) -> None:
        """Dispatch validated grouped triples; sites arrive in ascending
        order.  Banks with site-independent state may override this with a
        fully vectorized version (see :class:`ExactCounterBank`)."""
        starts = np.flatnonzero(np.r_[True, site_ids[1:] != site_ids[:-1]])
        bounds = np.append(starts, site_ids.size)
        for i in range(starts.size):
            lo, hi = bounds[i], bounds[i + 1]
            self._apply_site(int(site_ids[lo]), counter_ids[lo:hi], counts[lo:hi])

    def bulk_add_table(self, table: np.ndarray, *, check: bool = True) -> None:
        """Apply a dense ``(n_sites, n_counters)`` increment table.

        The dense-histogram sibling of :meth:`bulk_add_grouped`: row
        ``s`` holds site ``s``'s aggregated increments (zeros allowed).
        The streaming estimator's dense grouping strategy already owns
        exactly this table, so handing it over whole skips the
        flatnonzero/divmod round-trip through sparse triples.  Sites are
        processed in ascending order and silent sites are skipped, so
        banks see the identical per-site calls the triple form produces
        — byte-identical state and RNG consumption.

        ``check=False`` skips validation for callers whose table is
        non-negative by construction (a ``bincount`` output).
        """
        table = np.asarray(table, dtype=np.int64)
        if table.shape != (self.n_sites, self.n_counters):
            raise CounterError(
                f"table must have shape ({self.n_sites}, "
                f"{self.n_counters}), got {table.shape}"
            )
        if check and table.size and table.min() < 0:
            raise CounterError("bulk_add_table counts must be >= 0")
        self._apply_table(table)

    def _apply_table(self, table: np.ndarray) -> None:
        """Dispatch a validated dense table; sites ascending, silent sites
        skipped.  Banks whose protocol is expressible as whole-table array
        operations override this (see :class:`ExactCounterBank` and
        :class:`~repro.counters.deterministic.DeterministicCounterBank`)."""
        for site in range(self.n_sites):
            row = table[site]
            touched = np.flatnonzero(row)
            if touched.size:
                self._apply_site(site, touched, row[touched])

    def bulk_add_site(self, site: int, counter_ids, counts) -> None:
        """Apply pre-aggregated increments observed at one site.

        ``counter_ids`` must be unique; this is the fast path used by the
        streaming estimator, which already aggregates each batch per site.
        """
        counter_ids = np.asarray(counter_ids, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if counter_ids.shape != counts.shape or counter_ids.ndim != 1:
            raise CounterError("counter_ids and counts must be aligned 1-D")
        if not 0 <= site < self.n_sites:
            raise CounterError(f"site {site} out of range")
        if counter_ids.size == 0:
            return
        if counter_ids.min() < 0 or counter_ids.max() >= self.n_counters:
            raise CounterError("counter id out of range")
        if counts.min() <= 0:
            raise CounterError("bulk_add_site counts must be > 0")
        if np.unique(counter_ids).size != counter_ids.size:
            raise CounterError("bulk_add_site counter_ids must be unique")
        self._apply_site(int(site), counter_ids, counts)

    def add(self, counter_id: int, site_id: int, count: int = 1) -> None:
        """Convenience scalar form of :meth:`bulk_add`."""
        self.bulk_add(
            np.array([counter_id]), np.array([site_id]), np.array([count])
        )

    def true_totals(self) -> np.ndarray:
        """Ground-truth counter values (test/diagnostic use only)."""
        return self._local.sum(axis=1)

    @property
    def total_messages(self) -> int:
        return self.message_log.total
