"""Randomized distributed counters (Huang, Yi & Zhang, PODS 2012).

This is the DISTCOUNTER of Lemma 4: for error parameter ``eps`` it keeps an
unbiased estimate ``A`` of the true count ``C`` with ``Var[A] <= (eps*C)^2``
using ``O(sqrt(k)/eps * log T)`` messages.

Protocol (round-based form)
---------------------------
* A round starts with a **sync**: the coordinator broadcasts the new round
  to all sites and every site reports its exact local count
  (``2k`` messages).  ``base`` is then the exact total and the per-increment
  report probability becomes ``p = min(1, sqrt(k) / (eps * base))``.
* Within a round, a site that receives an increment sends its current local
  count to the coordinator with probability ``p`` (while ``p == 1`` the
  counter is exact and every increment is a message).
* The coordinator's estimate is ``sum_i r_i + a * (1 - p) / p`` where
  ``r_i`` is site ``i``'s last report and ``a`` is the number of sites that
  have reported *since the round's sync*.  This is exactly unbiased: with
  ``t_i`` increments at site ``i`` since the sync and ``P0 = (1-p)^{t_i}``,
  the expected unreported gap is ``(1-p)(1-P0)/p``, while the correction is
  applied with probability ``1 - P0`` — the two cancel for every ``t_i``,
  so no steady-state assumption is needed.
* When the estimate reaches ``2 * base`` the coordinator starts a new round.

Within a round, per site, ``Var[c_i - r_i] <= (1-p)/p^2 < 1/p^2``; summing
over ``k`` independent sites and substituting ``p`` gives
``Var <= k/p^2 = (eps * base)^2 <= (eps * C)^2``.  Each round sends an
expected ``p * (increments in round) ~ sqrt(k)/eps`` reports plus ``2k``
sync messages, and the doubling condition bounds the number of rounds by
``O(log T)``.

Simulation (skip-ahead)
-----------------------
Feeding streams increment-by-increment is infeasible in Python, so
``bulk_add`` advances each (counter, site) pair over ``b`` increments by
sampling the geometric inter-report gaps directly:

* With probability ``(1-p)^b`` the span contains no report — one vectorized
  Bernoulli draw per touched pair covers this dominant case.
* Otherwise the first gap is drawn from a geometric distribution truncated
  at ``b`` (inverse-CDF, conditioned on at least one success), the report is
  delivered (possibly triggering a round change, which alters ``p`` for the
  *remaining* increments), and plain geometric draws continue the span.

Rounds only change when a report arrives, so skipping report-free spans is
exactly distribution-preserving.  ``ReferenceHYZCounter`` replays the same
protocol one increment at a time; the test suite checks the two agree
statistically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.counters.base import CounterBank
from repro.errors import CounterError
from repro.monitoring.channel import MessageKind
from repro.utils.rng import as_generator


class HYZCounterBank(CounterBank):
    """A bank of independent randomized distributed counters.

    Parameters
    ----------
    n_counters, n_sites:
        Bank dimensions.
    eps:
        Per-counter error parameter: scalar or array of shape
        ``(n_counters,)`` with entries in (0, 1).
    seed:
        Seed or generator for the protocol's coin flips.
    message_log:
        Shared message tally.
    charge_sync:
        If False, round syncs are not charged to the message log (used in
        ablations isolating report traffic).  Default True.
    """

    def __init__(
        self,
        n_counters: int,
        n_sites: int,
        eps,
        *,
        seed=None,
        message_log=None,
        charge_sync: bool = True,
    ) -> None:
        super().__init__(n_counters, n_sites, message_log=message_log)
        eps_arr = np.broadcast_to(
            np.asarray(eps, dtype=np.float64), (self.n_counters,)
        ).copy()
        if np.any(eps_arr <= 0) or np.any(eps_arr >= 1):
            raise CounterError("eps must lie in (0, 1) for every counter")
        self.eps = eps_arr
        self._rng = as_generator(seed)
        self.charge_sync = bool(charge_sync)
        k = self.n_sites
        self._sqrt_k = math.sqrt(k)

        # Coordinator-side state.  `_round_reported` marks sites that have
        # reported since the current round's sync: only those sites' counts
        # carry the (1-p)/p geometric-gap correction (silent sites stand at
        # their exact sync value), which makes the estimator exactly
        # unbiased — see the estimator derivation in the module docstring.
        self._reported = np.zeros((self.n_counters, k), dtype=np.int64)
        self._reported_sum = np.zeros(self.n_counters, dtype=np.int64)
        self._round_reported = np.zeros((self.n_counters, k), dtype=bool)
        self._round_reported_count = np.zeros(self.n_counters, dtype=np.int64)
        self._round_base = np.ones(self.n_counters, dtype=np.float64)
        self._p = np.minimum(1.0, self._sqrt_k / (self.eps * self._round_base))
        self._rounds_started = np.zeros(self.n_counters, dtype=np.int64)

    # ------------------------------------------------------------------
    # Coordinator-side helpers
    # ------------------------------------------------------------------
    def _estimate_one(self, c: int) -> float:
        p = self._p[c]
        if p >= 1.0:
            return float(self._reported_sum[c])
        return (
            float(self._reported_sum[c])
            + self._round_reported_count[c] * (1.0 - p) / p
        )

    def estimates(self) -> np.ndarray:
        correction = np.where(
            self._p >= 1.0,
            0.0,
            self._round_reported_count * (1.0 - self._p) / self._p,
        )
        return self._reported_sum.astype(np.float64) + correction

    def _advance_round(self, c: int) -> None:
        """Start a new round for counter ``c``: sync then recompute ``p``."""
        # Sync: every site reports its exact count, so every site starts the
        # round with zero gap and no correction.
        self._reported[c, :] = self._local[c, :]
        self._reported_sum[c] = int(self._local[c, :].sum())
        self._round_reported[c, :] = False
        self._round_reported_count[c] = 0
        self._round_base[c] = max(float(self._reported_sum[c]), 1.0)
        old_p = self._p[c]
        self._p[c] = min(1.0, self._sqrt_k / (self.eps[c] * self._round_base[c]))
        self._rounds_started[c] += 1
        if self.charge_sync:
            # Coordinator tells every site the new round/probability, and
            # (except on the exact->exact transition, where it already has
            # the exact counts) every site answers with its local count.
            self.message_log.record_broadcast_all()
            if old_p < 1.0:
                for site in range(self.n_sites):
                    self.message_log.record(MessageKind.SYNC, site)

    def _maybe_advance(self, c: int) -> None:
        # A single advance suffices: after the sync the estimate equals the
        # new base exactly, so the doubling condition cannot re-trigger.
        if self._estimate_one(c) >= 2.0 * self._round_base[c]:
            self._advance_round(c)

    # ------------------------------------------------------------------
    # Site-side simulation
    # ------------------------------------------------------------------
    def _deliver_report(self, c: int, site: int) -> None:
        """Site ``site`` sends its current local count for counter ``c``."""
        delta = int(self._local[c, site] - self._reported[c, site])
        self._reported[c, site] = self._local[c, site]
        self._reported_sum[c] += delta
        if not self._round_reported[c, site]:
            self._round_reported[c, site] = True
            self._round_reported_count[c] += 1
        self.message_log.record(MessageKind.REPORT, site)
        self._maybe_advance(c)

    def _truncated_geometric(self, p: float, limit: int) -> int:
        """First-success position conditioned on success within ``limit``.

        Inverse CDF of ``Geometric(p)`` given the value is ``<= limit``.
        """
        u = self._rng.random()
        tail = (1.0 - p) ** limit
        # CDF(g) = 1 - (1-p)^g; conditioned CDF hits u at:
        g = int(math.ceil(math.log1p(-u * (1.0 - tail)) / math.log1p(-p)))
        return min(max(g, 1), limit)

    def _run_sampling_span(self, c: int, site: int, b: int, *,
                           first_report_known: bool) -> None:
        """Advance counter ``c`` at ``site`` over ``b`` increments, p < 1.

        ``first_report_known`` marks that the caller already determined (via
        the vectorized Bernoulli pre-filter) that at least one report occurs
        in the span *at the entry probability*; the first gap is then drawn
        from the truncated geometric.
        """
        remaining = b
        pending_condition = first_report_known
        while remaining > 0:
            p = float(self._p[c])
            if p >= 1.0:
                # A mid-span round change pushed the counter back to exact
                # mode; cannot happen (base only grows), but guard anyway.
                self._exact_span(c, site, remaining)
                return
            if pending_condition:
                gap = self._truncated_geometric(p, remaining)
                pending_condition = False
            else:
                gap = int(self._rng.geometric(p))
            if gap > remaining:
                self._local[c, site] += remaining
                return
            self._local[c, site] += gap
            remaining -= gap
            self._deliver_report(c, site)

    def _exact_span(self, c: int, site: int, b: int) -> None:
        """Advance an exact-mode (p == 1) counter over ``b`` increments.

        Every increment is a message and the coordinator tracks the count
        exactly; round changes mid-span switch the counter into sampling
        mode for the rest of the span.
        """
        remaining = b
        while remaining > 0 and self._p[c] >= 1.0:
            # Increments until the doubling condition triggers.
            room = int(math.ceil(2.0 * self._round_base[c] - self._reported_sum[c]))
            step = min(remaining, max(room, 1))
            self._local[c, site] += step
            self._reported[c, site] += step
            self._reported_sum[c] += step
            self.message_log.record(MessageKind.REPORT, site, step)
            remaining -= step
            self._maybe_advance(c)
        if remaining > 0:
            # Fell out of exact mode mid-span; continue with sampling.
            self._run_sampling_span(c, site, remaining, first_report_known=False)

    # ------------------------------------------------------------------
    # `bulk_add_grouped` (the estimator's argsort fast path) is inherited
    # from CounterBank: it dispatches each site's slice to `_apply_site` in
    # ascending site order, which consumes this bank's RNG stream in exactly
    # the same order as the legacy per-site-mask path — a property the
    # hot-path regression test pins byte-for-byte.
    def _apply_site(self, site, counter_ids, counts) -> None:
        p_touched = self._p[counter_ids]
        exact_mask = p_touched >= 1.0
        # Exact-mode counters: every increment is a message.
        for c, b in zip(counter_ids[exact_mask], counts[exact_mask]):
            self._exact_span(int(c), site, int(b))
        # Sampling-mode counters: vectorized no-report pre-filter.
        sampling = counter_ids[~exact_mask]
        if sampling.size == 0:
            return
        p_s = p_touched[~exact_mask]
        b_s = counts[~exact_mask]
        no_report_prob = np.exp(b_s.astype(np.float64) * np.log1p(-p_s))
        draws = self._rng.random(sampling.size)
        silent = draws < no_report_prob
        # Silent spans: counts accrue locally, no communication.
        silent_ids = sampling[silent]
        if silent_ids.size:
            self._local[silent_ids, site] += b_s[silent]
        # Reporting spans: exact sequential replay with skip-ahead.
        for c, b in zip(sampling[~silent], b_s[~silent]):
            self._run_sampling_span(
                int(c), site, int(b), first_report_known=True
            )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def report_probabilities(self) -> np.ndarray:
        """Current per-counter report probability ``p`` (copy)."""
        return self._p.copy()

    @property
    def rounds_started(self) -> np.ndarray:
        """Number of round transitions per counter (copy)."""
        return self._rounds_started.copy()

    def relative_errors(self) -> np.ndarray:
        """``|A - C| / max(C, 1)`` per counter (diagnostic)."""
        truth = self.true_totals().astype(np.float64)
        return np.abs(self.estimates() - truth) / np.maximum(truth, 1.0)
