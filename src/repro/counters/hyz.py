"""Randomized distributed counters (Huang, Yi & Zhang, PODS 2012).

This is the DISTCOUNTER of Lemma 4: for error parameter ``eps`` it keeps an
unbiased estimate ``A`` of the true count ``C`` with ``Var[A] <= (eps*C)^2``
using ``O(sqrt(k)/eps * log T)`` messages.  A round starts with a sync that
makes ``base`` the exact total and sets the per-increment report probability
``p = min(1, sqrt(k)/(eps*base))``; within a round a site reports its local
count with probability ``p`` per increment, and the coordinator starts a
new round when its unbiased estimate reaches ``2 * base``.

``bulk_add`` never feeds increments one at a time: a span of ``b``
increments at one site is replayed by sampling the geometric inter-report
gaps directly, and the replay is *vectorized across counters* — one
inverse-CDF batch draws every touched counter's first-report gap, spans
that contain no mid-span round change are finished with pure array updates
(the doubling condition is checked vectorized via the span's last report),
and only the rare counters whose span crosses the doubling threshold fall
back to the sequential per-gap replay.  ``engine="sequential"`` keeps the
pre-vectorization per-(counter, site) replay for benchmarking.

The protocol derivation (unbiasedness, variance bound) and the vectorized
engine's distribution-preservation argument live in ``docs/hyz-protocol.md``.
:class:`~repro.counters.reference.ReferenceHYZCounter` replays the protocol
one increment at a time and serves as the statistical oracle both engines
are tested against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.counters.base import CounterBank
from repro.errors import CounterError
from repro.monitoring.channel import MessageKind
from repro.utils.rng import as_generator, restore_generator_state

#: Supported span-replay engines (see the module docstring).
ENGINES = ("vectorized", "sequential")


class HYZCounterBank(CounterBank):
    """A bank of independent randomized distributed counters.

    Parameters
    ----------
    n_counters, n_sites:
        Bank dimensions.
    eps:
        Per-counter error parameter: scalar or array of shape
        ``(n_counters,)`` with entries in (0, 1).
    seed:
        Seed or generator for the protocol's coin flips.
    message_log:
        Shared message tally.
    charge_sync:
        If False, round syncs are not charged to the message log (used in
        ablations isolating report traffic).  Default True.
    engine:
        ``"vectorized"`` (default) batches the span replay across all
        counters touched at a site; ``"sequential"`` replays each
        (counter, site) span in a Python loop.  Both engines simulate the
        identical protocol distribution but consume the RNG stream in
        different orders, so their outputs agree statistically, not
        byte-for-byte (see ``docs/hyz-protocol.md``).
    """

    def __init__(
        self,
        n_counters: int,
        n_sites: int,
        eps,
        *,
        seed=None,
        message_log=None,
        charge_sync: bool = True,
        engine: str = "vectorized",
    ) -> None:
        super().__init__(n_counters, n_sites, message_log=message_log)
        eps_arr = np.broadcast_to(
            np.asarray(eps, dtype=np.float64), (self.n_counters,)
        ).copy()
        if np.any(eps_arr <= 0) or np.any(eps_arr >= 1):
            raise CounterError("eps must lie in (0, 1) for every counter")
        if engine not in ENGINES:
            raise CounterError(
                f"unknown HYZ engine {engine!r}; expected one of {ENGINES}"
            )
        self.eps = eps_arr
        self.engine = engine
        self._rng = as_generator(seed)
        self.charge_sync = bool(charge_sync)
        k = self.n_sites
        self._sqrt_k = math.sqrt(k)

        # Coordinator-side state.  `_round_reported` marks sites that have
        # reported since the current round's sync: only those sites' counts
        # carry the (1-p)/p geometric-gap correction (silent sites stand at
        # their exact sync value), which makes the estimator exactly
        # unbiased — see docs/hyz-protocol.md for the derivation.
        self._reported = np.zeros((self.n_counters, k), dtype=np.int64)
        self._reported_sum = np.zeros(self.n_counters, dtype=np.int64)
        self._round_reported = np.zeros((self.n_counters, k), dtype=bool)
        self._round_reported_count = np.zeros(self.n_counters, dtype=np.int64)
        self._round_base = np.ones(self.n_counters, dtype=np.float64)
        self._p = np.minimum(1.0, self._sqrt_k / (self.eps * self._round_base))
        self._rounds_started = np.zeros(self.n_counters, dtype=np.int64)

    # ------------------------------------------------------------------
    # State externalization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Protocol state plus the coin-flip Generator's bit-generator state.

        Both engines share this state layout (the engine is configuration,
        not state), so a snapshot taken under one engine can only be
        restored into a bank built with the *same* engine if byte-identical
        continuation is required — the engines consume the restored RNG
        stream in different orders.
        """
        state = super().state_dict()
        state["reported"] = self._reported.copy()
        state["reported_sum"] = self._reported_sum.copy()
        state["round_reported"] = self._round_reported.copy()
        state["round_reported_count"] = self._round_reported_count.copy()
        state["round_base"] = self._round_base.copy()
        state["p"] = self._p.copy()
        state["rounds_started"] = self._rounds_started.copy()
        state["rng_state"] = self._rng.bit_generator.state
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_array(state, "reported", self._reported)
        self._load_array(state, "reported_sum", self._reported_sum)
        self._load_array(state, "round_reported", self._round_reported)
        self._load_array(state, "round_reported_count",
                         self._round_reported_count)
        self._load_array(state, "round_base", self._round_base)
        self._load_array(state, "p", self._p)
        self._load_array(state, "rounds_started", self._rounds_started)
        rng_state = state.get("rng_state")
        if rng_state is None:
            raise CounterError("state dict is missing 'rng_state'")
        try:
            self._rng = restore_generator_state(self._rng, rng_state)
        except ValueError as exc:
            raise CounterError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Coordinator-side helpers
    # ------------------------------------------------------------------
    def _estimate_one(self, c: int) -> float:
        p = self._p[c]
        if p >= 1.0:
            return float(self._reported_sum[c])
        return (
            float(self._reported_sum[c])
            + self._round_reported_count[c] * (1.0 - p) / p
        )

    def estimates(self) -> np.ndarray:
        correction = np.where(
            self._p >= 1.0,
            0.0,
            self._round_reported_count * (1.0 - self._p) / self._p,
        )
        return self._reported_sum.astype(np.float64) + correction

    def _advance_round(self, c: int) -> None:
        """Start a new round for counter ``c``: sync then recompute ``p``."""
        # Sync: every site reports its exact count, so every site starts the
        # round with zero gap and no correction.
        self._reported[c, :] = self._local[c, :]
        self._reported_sum[c] = int(self._local[c, :].sum())
        self._round_reported[c, :] = False
        self._round_reported_count[c] = 0
        self._round_base[c] = max(float(self._reported_sum[c]), 1.0)
        old_p = self._p[c]
        self._p[c] = min(1.0, self._sqrt_k / (self.eps[c] * self._round_base[c]))
        self._rounds_started[c] += 1
        if self.charge_sync:
            # Coordinator tells every site the new round/probability, and
            # (except on the exact->exact transition, where it already has
            # the exact counts) every site answers with its local count.
            self.message_log.record_broadcast_all()
            if old_p < 1.0:
                self.message_log.record_syncs_all()

    def _maybe_advance(self, c: int) -> None:
        # A single advance suffices: after the sync the estimate equals the
        # new base exactly, so the doubling condition cannot re-trigger.
        if self._estimate_one(c) >= 2.0 * self._round_base[c]:
            self._advance_round(c)

    # ------------------------------------------------------------------
    # Site-side simulation — shared sequential building blocks
    # ------------------------------------------------------------------
    def _deliver_report(self, c: int, site: int) -> None:
        """Site ``site`` sends its current local count for counter ``c``."""
        delta = int(self._local[c, site] - self._reported[c, site])
        self._reported[c, site] = self._local[c, site]
        self._reported_sum[c] += delta
        if not self._round_reported[c, site]:
            self._round_reported[c, site] = True
            self._round_reported_count[c] += 1
        self.message_log.record(MessageKind.REPORT, site)
        self._maybe_advance(c)

    def _truncated_geometric(self, p: float, limit: int) -> int:
        """First-success position conditioned on success within ``limit``.

        Inverse CDF of ``Geometric(p)`` given the value is ``<= limit``.
        """
        u = self._rng.random()
        tail = (1.0 - p) ** limit
        # CDF(g) = 1 - (1-p)^g; conditioned CDF hits u at:
        g = int(math.ceil(math.log1p(-u * (1.0 - tail)) / math.log1p(-p)))
        return min(max(g, 1), limit)

    def _run_sampling_span(self, c: int, site: int, b: int, *,
                           first_report_known: bool) -> None:
        """Advance counter ``c`` at ``site`` over ``b`` increments, p < 1.

        ``first_report_known`` marks that the caller already determined (via
        a report-existence pre-filter) that at least one report occurs in
        the span *at the entry probability*; the first gap is then drawn
        from the truncated geometric.
        """
        remaining = b
        pending_condition = first_report_known
        while remaining > 0:
            p = float(self._p[c])
            if p >= 1.0:
                # A mid-span round change pushed the counter back to exact
                # mode; cannot happen (base only grows), but guard anyway.
                self._exact_span(c, site, remaining)
                return
            if pending_condition:
                gap = self._truncated_geometric(p, remaining)
                pending_condition = False
            else:
                gap = int(self._rng.geometric(p))
            if gap > remaining:
                self._local[c, site] += remaining
                return
            self._local[c, site] += gap
            remaining -= gap
            self._deliver_report(c, site)

    def _exact_span(self, c: int, site: int, b: int) -> None:
        """Advance an exact-mode (p == 1) counter over ``b`` increments.

        Every increment is a message and the coordinator tracks the count
        exactly; round changes mid-span switch the counter into sampling
        mode for the rest of the span.
        """
        remaining = self._exact_prefix(c, site, b)
        if remaining > 0:
            # Fell out of exact mode mid-span; continue with sampling.
            self._run_sampling_span(c, site, remaining, first_report_known=False)

    def _exact_prefix(self, c: int, site: int, b: int) -> int:
        """Consume the exact-mode (p == 1) prefix of a ``b``-increment span.

        Returns the number of increments left over once the counter falls
        out of exact mode (0 when the whole span was consumed exactly).
        The exact phase needs no randomness: reports are deterministic and
        the round bases follow the deterministic doubling sequence.
        """
        remaining = b
        while remaining > 0 and self._p[c] >= 1.0:
            # Increments until the doubling condition triggers.
            room = int(math.ceil(2.0 * self._round_base[c] - self._reported_sum[c]))
            if room <= 0:
                # The doubling condition already holds at span entry (the
                # estimate equals the reported sum in exact mode): resolve
                # the round change before consuming any increments, instead
                # of over-stepping by a forced minimum step of 1.
                self._advance_round(c)
                continue
            step = min(remaining, room)
            self._local[c, site] += step
            self._reported[c, site] += step
            self._reported_sum[c] += step
            self.message_log.record(MessageKind.REPORT, site, step)
            remaining -= step
            self._maybe_advance(c)
        return remaining

    # ------------------------------------------------------------------
    # Engine dispatch
    # ------------------------------------------------------------------
    # `bulk_add_grouped` (the estimator's sharded fast path) is inherited
    # from CounterBank: it hands each site's whole (counter, count) slice to
    # `_apply_site` in ascending site order.  Every grouping strategy
    # delivers identical slices in identical order, so for a fixed engine
    # all strategies consume this bank's RNG stream identically — the
    # hot-path regression test pins that byte-for-byte.  Across *engines*
    # the RNG contract differs; see docs/hyz-protocol.md.
    def _apply_site(self, site, counter_ids, counts) -> None:
        if self.engine == "sequential":
            self._apply_site_sequential(site, counter_ids, counts)
        else:
            self._apply_site_vectorized(site, counter_ids, counts)

    # ------------------------------------------------------------------
    # Sequential engine (pre-vectorization reference, kept for benchmarks)
    # ------------------------------------------------------------------
    def _apply_site_sequential(self, site, counter_ids, counts) -> None:
        p_touched = self._p[counter_ids]
        exact_mask = p_touched >= 1.0
        # Exact-mode counters: every increment is a message.
        for c, b in zip(counter_ids[exact_mask], counts[exact_mask]):
            self._exact_span(int(c), site, int(b))
        # Sampling-mode counters: vectorized no-report pre-filter.
        sampling = counter_ids[~exact_mask]
        if sampling.size == 0:
            return
        p_s = p_touched[~exact_mask]
        b_s = counts[~exact_mask]
        no_report_prob = np.exp(b_s.astype(np.float64) * np.log1p(-p_s))
        draws = self._rng.random(sampling.size)
        silent = draws < no_report_prob
        # Silent spans: counts accrue locally, no communication.
        silent_ids = sampling[silent]
        if silent_ids.size:
            self._local[silent_ids, site] += b_s[silent]
        # Reporting spans: exact sequential replay with skip-ahead.
        for c, b in zip(sampling[~silent], b_s[~silent]):
            self._run_sampling_span(
                int(c), site, int(b), first_report_known=True
            )

    # ------------------------------------------------------------------
    # Vectorized engine
    # ------------------------------------------------------------------
    def _apply_site_vectorized(self, site, counter_ids, counts) -> None:
        """Advance every counter touched at ``site`` with batched draws.

        Distribution-preservation argument (full version in
        ``docs/hyz-protocol.md``): within one span the report probability
        ``p`` and the doubling threshold are constant until a round change,
        and the coordinator estimate after a report is strictly increasing
        in the report's position.  Hence (i) a span triggers a round change
        iff a report lands at or beyond a fixed threshold position ``L*``,
        and (ii) for trigger-free spans the final bank state depends only on
        the span's *last* report position while the message tally depends
        only on the report *count* — both samplable directly.  Counters are
        independent, so every draw batches across the site's worklist:

        1. one inverse-CDF batch draws every counter's first-report gap
           (gap > span length  <=>  the span is silent);
        2. a trailing-gap batch yields each reporting span's last report
           position; spans whose last report stays below ``L*`` finish with
           pure array updates plus one binomial batch for the interior
           report count;
        3. spans that reach ``L*`` replay their pre-trigger traffic as a
           binomial batch (those reports are wiped by the sync, only their
           message count survives), place the triggering report with a
           truncated-geometric batch, advance all their rounds in bulk,
           and re-enter the loop with the span remainder at the new ``p``
           — one iteration per round generation, so a span crossing ``r``
           rounds costs ``O(r)`` vectorized passes, never a Python loop
           over reports.
        """
        p_touched = self._p[counter_ids]
        exact_mask = p_touched >= 1.0
        ids = counter_ids[~exact_mask]
        b = counts[~exact_mask].astype(np.int64)
        if exact_mask.any():
            # Exact-mode counters are transient (a counter leaves exact
            # mode for good once its count reaches sqrt(k)/eps); their
            # prefix is deterministic — no randomness — so it advances in
            # bulk too, and any sampled leftover joins the worklist.
            leftover_ids, leftover_b = self._exact_prefix_bulk(
                site,
                counter_ids[exact_mask],
                counts[exact_mask].astype(np.int64),
            )
            if leftover_ids.size:
                ids = np.concatenate([ids, leftover_ids])
                b = np.concatenate([b, leftover_b])
                order = np.argsort(ids, kind="stable")
                ids, b = ids[order], b[order]
        while ids.size:
            ids, b = self._vector_round(site, ids, b)

    def _exact_prefix_bulk(
        self, site: int, ids: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_exact_prefix` over a site's exact-mode slice.

        The exact phase is deterministic (every increment reports, rounds
        advance at fixed doubling thresholds), so each pass steps every
        active counter to its next threshold at once; a counter needs
        O(log span) passes.  Returns the (counter, remaining) pairs that
        fell out of exact mode mid-span.
        """
        ids = ids.astype(np.int64, copy=True)
        rem = b.copy()
        out_ids: list[np.ndarray] = []
        out_b: list[np.ndarray] = []
        while ids.size:
            room = np.ceil(
                2.0 * self._round_base[ids]
                - self._reported_sum[ids].astype(np.float64)
            ).astype(np.int64)
            stuck = room <= 0
            if stuck.any():
                # Doubling condition already met at pass entry (same guard
                # as _exact_prefix): advance before consuming increments.
                self._advance_rounds_bulk(ids[stuck])
                fell = self._p[ids] < 1.0
                if fell.any():
                    out_ids.append(ids[fell])
                    out_b.append(rem[fell])
                    ids, rem = ids[~fell], rem[~fell]
                continue
            step = np.minimum(rem, room)
            self._local[ids, site] += step
            self._reported[ids, site] += step
            self._reported_sum[ids] += step
            self.message_log.record(MessageKind.REPORT, site, int(step.sum()))
            rem -= step
            crossed = (
                self._reported_sum[ids].astype(np.float64)
                >= 2.0 * self._round_base[ids]
            )
            if crossed.any():
                self._advance_rounds_bulk(ids[crossed])
            fell = (self._p[ids] < 1.0) & (rem > 0)
            if fell.any():
                out_ids.append(ids[fell])
                out_b.append(rem[fell])
            cont = ~fell & (rem > 0)
            ids, rem = ids[cont], rem[cont]
        empty = np.empty(0, dtype=np.int64)
        return (
            np.concatenate(out_ids) if out_ids else empty,
            np.concatenate(out_b) if out_b else empty,
        )

    def _vector_round(
        self, site: int, ids: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One vectorized pass over sampling-mode spans at one site.

        Completes every span that stays within its counter's current round
        and returns the worklist of (counter, remaining-increments) spans
        whose round advanced mid-span.  All entries have ``p < 1``.
        """
        empty = np.empty(0, dtype=np.int64)
        p = self._p[ids]
        log_q = np.log1p(-p)  # log(1 - p) < 0

        # --- (1) first-report gaps, one inverse-CDF batch ----------------
        u1 = self._rng.random(ids.size)
        g1 = np.floor(np.log1p(-u1) / log_q).astype(np.int64) + 1
        reporting = g1 <= b
        if not reporting.all():
            silent_ids = ids[~reporting]
            self._local[silent_ids, site] += b[~reporting]
            if not reporting.any():
                return empty, empty
        ids_r = ids[reporting]
        b_r = b[reporting]
        g1_r = g1[reporting]
        p_r = p[reporting]
        log_q_r = log_q[reporting]

        # --- doubling-threshold position L* per reporting counter --------
        # Mirrors _estimate_one exactly: after the first report the
        # estimate at a report delivered x increments into the span is
        #   est(x) = float(reported_sum - old_reported + old_local + x)
        #            + cnt' * (1 - p) / p
        # with cnt' including this site's first-report activation bump.
        old_local = self._local[ids_r, site]
        old_rep = self._reported[ids_r, site]
        newly = ~self._round_reported[ids_r, site]
        cnt = self._round_reported_count[ids_r] + newly
        corr = cnt * (1.0 - p_r) / p_r
        base2 = 2.0 * self._round_base[ids_r]
        i0 = self._reported_sum[ids_r] - old_rep + old_local
        l_star = np.ceil(base2 - corr - i0).astype(np.int64)
        # The float seed above can be off by one ulp-step; nudge to the
        # exact minimal integer x with est(x) >= 2 * base.
        for _ in range(2):
            over = (i0 + l_star - 1).astype(np.float64) + corr >= base2
            l_star = np.where(over, l_star - 1, l_star)
        for _ in range(2):
            under = (i0 + l_star).astype(np.float64) + corr < base2
            l_star = np.where(under, l_star + 1, l_star)

        # Spans whose *first* report already trips the condition advance
        # immediately; the others draw their last report position.
        early = l_star <= g1_r
        nonearly = np.flatnonzero(~early)

        # --- (2) last report position via one trailing-gap batch ---------
        last_pos = np.zeros(ids_r.size, dtype=np.int64)
        trigger = np.zeros(ids_r.size, dtype=bool)
        if nonearly.size:
            rem = b_r[nonearly] - g1_r[nonearly]
            u2 = self._rng.random(nonearly.size)
            g2 = np.floor(np.log1p(-u2) / log_q_r[nonearly]).astype(
                np.int64
            ) + 1
            trail = np.minimum(g2 - 1, rem)
            last_pos[nonearly] = b_r[nonearly] - trail
            trigger[nonearly] = last_pos[nonearly] >= l_star[nonearly]
        clean = np.flatnonzero(~early & ~trigger)

        # --- trigger-free spans: pure array completion --------------------
        if clean.size:
            ids_c = ids_r[clean]
            l_c = last_pos[clean]
            n_mid = np.maximum(l_c - g1_r[clean] - 1, 0)
            mid = self._rng.binomial(n_mid, p_r[clean])
            n_reports = 1 + (l_c > g1_r[clean]).astype(np.int64) + mid
            self._local[ids_c, site] = old_local[clean] + b_r[clean]
            new_rep = old_local[clean] + l_c
            self._reported_sum[ids_c] += new_rep - old_rep[clean]
            self._reported[ids_c, site] = new_rep
            self._round_reported_count[ids_c] += newly[clean]
            self._round_reported[ids_c, site] = True
            self.message_log.record(
                MessageKind.REPORT, site, int(n_reports.sum())
            )

        # --- (3) round-changing spans, advanced in bulk -------------------
        early_idx = np.flatnonzero(early)
        trig_idx = np.flatnonzero(trigger)
        if early_idx.size == 0 and trig_idx.size == 0:
            return empty, empty
        # Early spans: the first report itself trips the condition.  Its
        # state update is wiped by the sync below, so only the increment
        # prefix and the single report message survive.
        n_reports_special = early_idx.size
        if early_idx.size:
            self._local[ids_r[early_idx], site] += g1_r[early_idx]
        # Triggering spans: reports strictly before L* cannot trigger and
        # are wiped by the sync — a binomial batch counts their messages.
        # The triggering report is the first one at or beyond L*, a
        # truncated geometric over [L*, b] (its existence is exactly the
        # event last_pos >= L* already observed).
        if trig_idx.size:
            ls = l_star[trig_idx]
            gt = g1_r[trig_idx]
            pt = p_r[trig_idx]
            pre = self._rng.binomial(np.maximum(ls - gt - 1, 0), pt)
            limit = b_r[trig_idx] - ls + 1
            u3 = self._rng.random(trig_idx.size)
            tail = np.exp(limit * np.log1p(-pt))  # (1-p)^limit
            g3 = np.ceil(
                np.log1p(-u3 * (1.0 - tail)) / np.log1p(-pt)
            ).astype(np.int64)
            m_pos = ls - 1 + np.clip(g3, 1, limit)
            self._local[ids_r[trig_idx], site] += m_pos
            n_reports_special += int(pre.sum()) + 2 * trig_idx.size
        self.message_log.record(MessageKind.REPORT, site, n_reports_special)
        special = np.concatenate([early_idx, trig_idx])
        self._advance_rounds_bulk(ids_r[special])
        # Remainders re-enter the loop as fresh spans at the new p.
        consumed = np.concatenate(
            [g1_r[early_idx], m_pos if trig_idx.size else empty]
        )
        next_b = b_r[special] - consumed
        keep = next_b > 0
        next_ids = ids_r[special][keep]
        next_b = next_b[keep]
        order = np.argsort(next_ids, kind="stable")
        return next_ids[order], next_b[order]

    def _advance_rounds_bulk(self, cs: np.ndarray) -> None:
        """Vectorized :meth:`_advance_round` over unique counters ``cs``."""
        if cs.size == 0:
            return
        self._reported[cs, :] = self._local[cs, :]
        sums = self._local[cs, :].sum(axis=1)
        self._reported_sum[cs] = sums
        self._round_reported[cs, :] = False
        self._round_reported_count[cs] = 0
        self._round_base[cs] = np.maximum(sums.astype(np.float64), 1.0)
        old_p = self._p[cs].copy()
        self._p[cs] = np.minimum(
            1.0, self._sqrt_k / (self.eps[cs] * self._round_base[cs])
        )
        self._rounds_started[cs] += 1
        if self.charge_sync:
            self.message_log.record_broadcast_all(cs.size)
            n_sync = int((old_p < 1.0).sum())
            if n_sync:
                self.message_log.record_syncs_all(n_sync)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def report_probabilities(self) -> np.ndarray:
        """Current per-counter report probability ``p`` (copy)."""
        return self._p.copy()

    @property
    def rounds_started(self) -> np.ndarray:
        """Number of round transitions per counter (copy)."""
        return self._rounds_started.copy()

    def relative_errors(self) -> np.ndarray:
        """``|A - C| / max(C, 1)`` per counter (diagnostic)."""
        truth = self.true_totals().astype(np.float64)
        return np.abs(self.estimates() - truth) / np.maximum(truth, 1.0)
