"""Distributed counters for the continuous monitoring model.

All banks share one interface: ``bulk_add(counter_ids, site_ids, counts)``
applies increments observed at sites, and ``estimates()`` returns the
coordinator's current view of every counter.  Messages are tallied in a
:class:`~repro.monitoring.channel.MessageLog`.

- :class:`ExactCounterBank` — one message per increment (EXACTMLE).
- :class:`HYZCounterBank` — the randomized counter of Huang, Yi & Zhang
  (PODS 2012), Lemma 4 of the paper: unbiased, ``Var <= (eps*C)^2``,
  ``O(sqrt(k)/eps * log T)`` messages.
- :class:`DeterministicCounterBank` — (1+eps)-threshold counters in the
  style of Keralapura et al. (paper ref [22]); deterministic guarantee,
  no ``sqrt(k)`` saving.  Used for counter ablations.
- :class:`ReferenceHYZCounter` — slow per-increment implementation of the
  same protocol, used in tests to validate the bulk simulation.
"""

from repro.counters.base import CounterBank
from repro.counters.deterministic import DeterministicCounterBank
from repro.counters.exact import ExactCounterBank
from repro.counters.hyz import HYZCounterBank
from repro.counters.reference import ReferenceHYZCounter

__all__ = [
    "CounterBank",
    "ExactCounterBank",
    "HYZCounterBank",
    "DeterministicCounterBank",
    "ReferenceHYZCounter",
]
