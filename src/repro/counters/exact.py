"""Exact distributed counters: the EXACTMLE strawman's substrate.

Every increment at a site is forwarded to the coordinator, so the
coordinator always holds the exact count and the communication cost is one
message per increment (Lemma 5: ``O(mn)`` for ``m`` observations over an
``n``-variable network).
"""

from __future__ import annotations

import numpy as np

from repro.counters.base import CounterBank
from repro.monitoring.channel import MessageKind


class ExactCounterBank(CounterBank):
    """Counters maintained exactly at the coordinator."""

    def __init__(self, n_counters: int, n_sites: int, *, message_log=None) -> None:
        super().__init__(n_counters, n_sites, message_log=message_log)
        self._coordinator = np.zeros(self.n_counters, dtype=np.int64)

    def _apply_site(self, site, counter_ids, counts) -> None:
        self._local[counter_ids, site] += counts
        self._coordinator[counter_ids] += counts
        # One REPORT per increment, attributed to the observing site.
        self.message_log.record(MessageKind.REPORT, site, int(counts.sum()))

    def _apply_grouped(self, site_ids, counter_ids, counts) -> None:
        # Exact counters have no per-site protocol state, so the whole
        # grouped batch lands in three vectorized operations instead of a
        # Python loop over sites.  (site, counter) pairs are unique, so the
        # local scatter needs no np.add.at; counter ids repeat across sites,
        # so the coordinator sum does.
        self._local[counter_ids, site_ids] += counts
        np.add.at(self._coordinator, counter_ids, counts)
        per_site = np.bincount(site_ids, weights=counts, minlength=self.n_sites)
        touched = np.flatnonzero(per_site)
        self.message_log.record_reports_bulk(
            touched, per_site[touched].astype(np.int64)
        )

    def _apply_table(self, table) -> None:
        # The dense-table fast path degenerates to three whole-array adds:
        # no per-site slicing at all.
        self._local += table.T
        self._coordinator += table.sum(axis=0)
        per_site = table.sum(axis=1)
        touched = np.flatnonzero(per_site)
        if touched.size:
            self.message_log.record_reports_bulk(touched, per_site[touched])

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["coordinator"] = self._coordinator.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_array(state, "coordinator", self._coordinator)

    def estimates(self) -> np.ndarray:
        return self._coordinator.astype(np.float64)

    def exact_values(self) -> np.ndarray:
        """Integer coordinator counts (identical to :meth:`true_totals`)."""
        return self._coordinator.copy()
