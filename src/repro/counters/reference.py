"""Per-increment reference implementation of the HYZ counter.

This mirrors :class:`~repro.counters.hyz.HYZCounterBank`'s protocol exactly
but processes one increment at a time with an explicit Bernoulli coin per
increment — no skip-ahead, no vectorization.  It is the *statistical
oracle* for both of the bank's span-replay engines: the engines consume
randomness in different orders, so correctness is defined as agreement
with this class's per-increment behaviour in distribution (unbiased
estimates with the same variance, message counts with the same
expectation), never as byte equality.  See ``docs/hyz-protocol.md`` for
the agreement argument and ``tests/test_hyz_engine.py`` for the checks.
"""

from __future__ import annotations

import math

from repro.errors import CounterError
from repro.monitoring.channel import MessageKind, MessageLog
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int


class ReferenceHYZCounter:
    """One randomized distributed counter, simulated increment by increment.

    Parameters
    ----------
    n_sites:
        Number of sites ``k``.
    eps:
        Error parameter in (0, 1).
    seed:
        Seed or generator for the coin flips.
    """

    def __init__(self, n_sites: int, eps: float, *, seed=None,
                 message_log: MessageLog | None = None) -> None:
        self.n_sites = check_positive_int(n_sites, "n_sites")
        self.eps = check_fraction(eps, "eps")
        self._rng = as_generator(seed)
        self.message_log = message_log or MessageLog(self.n_sites)
        self._sqrt_k = math.sqrt(self.n_sites)
        self._local = [0] * self.n_sites
        self._reported = [0] * self.n_sites
        self._round_reported = [False] * self.n_sites
        self._round_base = 1.0
        self._p = min(1.0, self._sqrt_k / (self.eps * self._round_base))
        self.rounds_started = 0

    # ------------------------------------------------------------------
    @property
    def p(self) -> float:
        """Current report probability."""
        return self._p

    def true_total(self) -> int:
        return sum(self._local)

    def estimate(self) -> float:
        reported_sum = sum(self._reported)
        if self._p >= 1.0:
            return float(reported_sum)
        active = sum(self._round_reported)
        return reported_sum + active * (1.0 - self._p) / self._p

    # ------------------------------------------------------------------
    def _advance_round(self) -> None:
        old_p = self._p
        for site in range(self.n_sites):
            self._reported[site] = self._local[site]
            self._round_reported[site] = False
        self._round_base = max(float(sum(self._reported)), 1.0)
        self._p = min(1.0, self._sqrt_k / (self.eps * self._round_base))
        self.rounds_started += 1
        self.message_log.record_broadcast_all()
        if old_p < 1.0:
            for site in range(self.n_sites):
                self.message_log.record(MessageKind.SYNC, site)

    def _deliver_report(self, site: int) -> None:
        self._reported[site] = self._local[site]
        self._round_reported[site] = True
        self.message_log.record(MessageKind.REPORT, site)
        if self.estimate() >= 2.0 * self._round_base:
            self._advance_round()

    def add(self, site: int, count: int = 1) -> None:
        """Apply ``count`` increments at ``site``, one coin per increment."""
        if not 0 <= site < self.n_sites:
            raise CounterError(f"site {site} out of range")
        if count < 0:
            raise CounterError("count must be >= 0")
        for _ in range(count):
            self._local[site] += 1
            if self._p >= 1.0:
                # Exact mode: every increment reports.
                self._deliver_report(site)
            elif self._rng.random() < self._p:
                self._deliver_report(site)
