"""Deterministic (1+eps)-threshold distributed counters.

The style of counter studied by Keralapura et al. (paper reference [22]):
each site reports its local count when it grows by a (1+eps) factor since
its last report.  The coordinator's sum of last reports then satisfies the
deterministic sandwich ``A <= C <= (1+eps) * A + k`` — a per-site relative
guarantee with no coin flips, but the message cost is ``O(k/eps * log T)``
with no ``sqrt(k)`` saving, which is exactly the gap the paper's randomized
counters exploit.  Used by the counter-ablation benchmark.

Threshold advancement comes in two engines.  ``"vectorized"`` (default)
advances every crossing counter at a site together: each pass of the
generation loop fires one report for every still-crossing counter as a
pure array update, so a batch that triggers ``r`` total report
generations costs ``O(r)`` numpy passes instead of one Python loop
iteration per (counter, report).  ``"scalar"`` keeps the original
per-counter ``while`` loop as the reference engine.  The protocol has no
randomness, so both engines leave byte-identical state and message
tallies — the equivalence is pinned by ``tests/test_ingest_fastpath.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.counters.base import CounterBank
from repro.errors import CounterError
from repro.monitoring.channel import MessageKind

#: Supported threshold-advancement engines (see the module docstring).
DETERMINISTIC_ENGINES = ("vectorized", "scalar")


class DeterministicCounterBank(CounterBank):
    """Counters where each site reports on (1+eps)-factor growth.

    Parameters
    ----------
    eps:
        Scalar or per-counter array in (0, 1): the per-site relative slack.
    engine:
        ``"vectorized"`` (default) batches threshold advancement across
        all crossing counters at a site; ``"scalar"`` is the original
        per-counter ``while`` loop.  Both engines are byte-identical —
        the protocol is deterministic — so the choice is purely a
        performance knob.
    """

    def __init__(self, n_counters: int, n_sites: int, eps, *, message_log=None,
                 engine: str = "vectorized") -> None:
        super().__init__(n_counters, n_sites, message_log=message_log)
        eps_arr = np.broadcast_to(
            np.asarray(eps, dtype=np.float64), (self.n_counters,)
        ).copy()
        if np.any(eps_arr <= 0) or np.any(eps_arr >= 1):
            raise CounterError("eps must lie in (0, 1) for every counter")
        if engine not in DETERMINISTIC_ENGINES:
            raise CounterError(
                f"unknown deterministic engine {engine!r}; expected one of "
                f"{DETERMINISTIC_ENGINES}"
            )
        self.eps = eps_arr
        self.engine = engine
        self._reported = np.zeros((self.n_counters, self.n_sites), dtype=np.int64)
        self._reported_sum = np.zeros(self.n_counters, dtype=np.int64)
        # Next local value that triggers a report; the first item always
        # reports (threshold 1).
        self._next_threshold = np.ones(
            (self.n_counters, self.n_sites), dtype=np.int64
        )

    def _advance_thresholds(self, c: int, site: int) -> None:
        """Report and re-arm until the threshold clears the local count."""
        local = int(self._local[c, site])
        messages = 0
        threshold = int(self._next_threshold[c, site])
        eps = float(self.eps[c])
        last_report = int(self._reported[c, site])
        while local >= threshold:
            messages += 1
            # Per-increment semantics: the report fires the moment the local
            # count reaches the threshold, carrying exactly that value.
            last_report = threshold
            threshold = int(math.floor(threshold * (1.0 + eps))) + 1
        if messages:
            delta = last_report - int(self._reported[c, site])
            self._reported[c, site] = last_report
            self._reported_sum[c] += delta
            self._next_threshold[c, site] = threshold
            self.message_log.record(MessageKind.REPORT, site, messages)

    def _advance_thresholds_bulk(self, site: int, crossing: np.ndarray) -> None:
        """Vectorized :meth:`_advance_thresholds` over all crossing counters.

        One generation per pass: every still-crossing counter fires a
        report and re-arms together, so the loop runs ``max_c r_c`` times
        (the deepest report chain) instead of ``sum_c r_c``.  The
        threshold recurrence ``t <- floor(t * (1 + eps)) + 1`` is exact in
        float64 for every count this library can reach (< 2**53), so the
        result is byte-identical to the scalar engine.
        """
        local = self._local[crossing, site]
        threshold = self._next_threshold[crossing, site].copy()
        growth = 1.0 + self.eps[crossing]
        last_report = np.empty_like(threshold)
        messages = np.zeros(crossing.size, dtype=np.int64)
        # All entries cross at least once (the caller pre-filtered), so the
        # first pass runs on the full set and the active set only shrinks.
        active = np.arange(crossing.size)
        while active.size:
            messages[active] += 1
            last_report[active] = threshold[active]
            threshold[active] = (
                np.floor(threshold[active] * growth[active]).astype(np.int64) + 1
            )
            active = active[local[active] >= threshold[active]]
        delta = last_report - self._reported[crossing, site]
        self._reported[crossing, site] = last_report
        self._reported_sum[crossing] += delta
        self._next_threshold[crossing, site] = threshold
        self.message_log.record(MessageKind.REPORT, site, int(messages.sum()))

    def _apply_site(self, site, counter_ids, counts) -> None:
        self._local[counter_ids, site] += counts
        crossing = counter_ids[
            self._local[counter_ids, site]
            >= self._next_threshold[counter_ids, site]
        ]
        if crossing.size == 0:
            return
        if self.engine == "vectorized":
            self._advance_thresholds_bulk(site, crossing)
        else:
            for c in crossing:
                self._advance_thresholds(int(c), site)

    def _apply_table(self, table) -> None:
        # Dense-table fast path: one whole-array add, then per-site
        # threshold advancement.  Scanning the full column for crossings is
        # equivalent to scanning only the incremented counters — the bank
        # invariant guarantees ``local < next_threshold`` everywhere after
        # each apply, so only counters this table touched can cross.
        self._local += table.T
        for site in range(self.n_sites):
            crossing = np.flatnonzero(
                self._local[:, site] >= self._next_threshold[:, site]
            )
            if crossing.size == 0:
                continue
            if self.engine == "vectorized":
                self._advance_thresholds_bulk(site, crossing)
            else:
                for c in crossing:
                    self._advance_thresholds(int(c), site)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["reported"] = self._reported.copy()
        state["reported_sum"] = self._reported_sum.copy()
        state["next_threshold"] = self._next_threshold.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_array(state, "reported", self._reported)
        self._load_array(state, "reported_sum", self._reported_sum)
        self._load_array(state, "next_threshold", self._next_threshold)

    def estimates(self) -> np.ndarray:
        """Sum of last reports; an underestimate within (1+eps) per site."""
        return self._reported_sum.astype(np.float64)

    def guaranteed_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic ``(lower, upper)`` bounds on every true count."""
        lower = self._reported_sum.astype(np.float64)
        # Each site may hold up to its next threshold minus one unreported.
        slack = (self._next_threshold - 1 - self._reported).clip(min=0)
        upper = lower + slack.sum(axis=1)
        return lower, upper
