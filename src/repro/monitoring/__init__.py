"""The continuous distributed monitoring substrate.

Sites receive stream items; a coordinator maintains state and answers
queries.  This package provides the pieces that surround the counters:
message accounting, stream partitioning across sites, and the analytic
cluster model used for runtime/throughput experiments.
"""

from repro.monitoring.channel import MessageKind, MessageLog
from repro.monitoring.cluster import ClusterCostModel, ClusterRunSummary
from repro.monitoring.stream import (
    RoundRobinPartitioner,
    StreamPartitioner,
    UniformPartitioner,
    ZipfPartitioner,
)

__all__ = [
    "MessageKind",
    "MessageLog",
    "StreamPartitioner",
    "UniformPartitioner",
    "RoundRobinPartitioner",
    "ZipfPartitioner",
    "ClusterCostModel",
    "ClusterRunSummary",
]
