"""Analytic cluster cost model for runtime/throughput experiments.

The paper's Figs 7-8 measure wall-clock runtime and throughput on an AWS
cluster.  Without hardware, this module models the same pipeline (DESIGN.md
substitution 1): ``k`` sites process events in parallel, every message
costs send time at its site and receive time at the coordinator, and the
coordinator is serial.  The model is intentionally simple — it is the
*message counts* (measured exactly by the simulation) that drive the
relative runtimes the paper observes.

Default constants are calibrated to a t2.micro-like budget: ~40 µs of site
CPU per event per 37-variable network (scaled by n), ~150 µs per message
send, and ~120 µs per coordinator receive, with messages within one event
bundled as in the paper's "merge updates into a single message"
optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class ClusterRunSummary:
    """Modeled performance for one training run.

    Attributes
    ----------
    runtime_seconds:
        Modeled wall-clock time from first to last coordinator message.
    throughput_events_per_second:
        ``m / runtime_seconds``.
    site_busy_seconds:
        Busiest site's processing time (the parallel part).
    coordinator_busy_seconds:
        Serial coordinator time (the bottleneck for chatty algorithms).
    """

    runtime_seconds: float
    throughput_events_per_second: float
    site_busy_seconds: float
    coordinator_busy_seconds: float


class ClusterCostModel:
    """Maps (events, messages, sites) to modeled runtime and throughput.

    Parameters
    ----------
    event_cpu_seconds:
        Site CPU per event per variable (model update work).
    site_send_seconds:
        Site-side cost to send one bundled message.
    coordinator_receive_seconds:
        Coordinator-side cost to receive/apply one bundled message.
    bundle_size:
        Average counter updates merged into one wire message (the paper
        merges all updates triggered by one event).
    """

    def __init__(
        self,
        *,
        event_cpu_seconds: float = 1.1e-6,
        site_send_seconds: float = 1.5e-4,
        coordinator_receive_seconds: float = 1.2e-4,
        bundle_size: float = 1.0,
    ) -> None:
        if min(event_cpu_seconds, site_send_seconds,
               coordinator_receive_seconds) < 0:
            raise ValueError("cost constants must be nonnegative")
        if bundle_size < 1.0:
            raise ValueError(f"bundle_size must be >= 1, got {bundle_size}")
        self.event_cpu_seconds = float(event_cpu_seconds)
        self.site_send_seconds = float(site_send_seconds)
        self.coordinator_receive_seconds = float(coordinator_receive_seconds)
        self.bundle_size = float(bundle_size)

    def summarize(
        self,
        n_events: int,
        n_variables: int,
        total_messages: int,
        n_sites: int,
        *,
        max_site_messages: int | None = None,
    ) -> ClusterRunSummary:
        """Model one run.

        ``total_messages`` is the per-counter-update message count reported
        by :class:`~repro.monitoring.channel.MessageLog`; it is divided by
        ``bundle_size`` to model the paper's update-merging optimization.

        ``max_site_messages`` (defaults to an even split) captures skew: the
        busiest site bounds the parallel speedup.
        """
        n_events = check_positive_int(n_events, "n_events")
        n_variables = check_positive_int(n_variables, "n_variables")
        n_sites = check_positive_int(n_sites, "n_sites")
        if total_messages < 0:
            raise ValueError("total_messages must be >= 0")
        wire_messages = total_messages / self.bundle_size
        if max_site_messages is None:
            max_site_wire = wire_messages / n_sites
        else:
            max_site_wire = max_site_messages / self.bundle_size
        events_per_site = n_events / n_sites
        site_busy = (
            events_per_site * n_variables * self.event_cpu_seconds
            + max_site_wire * self.site_send_seconds
        )
        coordinator_busy = wire_messages * self.coordinator_receive_seconds
        runtime = max(site_busy, coordinator_busy)
        return ClusterRunSummary(
            runtime_seconds=runtime,
            throughput_events_per_second=n_events / runtime if runtime > 0 else 0.0,
            site_busy_seconds=site_busy,
            coordinator_busy_seconds=coordinator_busy,
        )
