"""Message accounting for the distributed monitoring model.

Communication cost is the headline metric of the paper: every algorithm is
compared by the number of messages exchanged between sites and the
coordinator.  :class:`MessageLog` tallies messages by kind and by site so
experiments can report totals, per-site loads, and broadcast overheads.

Message-size convention (matches the paper's experiments): one counter
update = one message, so EXACTMLE on an ``n``-variable network costs
``2n`` messages per observation (Table III divides out to exactly ``2n``).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.utils.validation import check_positive_int


class MessageKind(enum.Enum):
    """Categories of messages exchanged with the coordinator."""

    #: A site reporting a counter value (site -> coordinator).
    REPORT = "report"
    #: The coordinator starting a new round (coordinator -> one site).
    BROADCAST = "broadcast"
    #: A site answering a round-start sync (site -> coordinator).
    SYNC = "sync"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MessageLog:
    """Tallies messages by :class:`MessageKind` and by site.

    Parameters
    ----------
    n_sites:
        Number of sites ``k`` (excluding the coordinator).
    """

    def __init__(self, n_sites: int) -> None:
        self.n_sites = check_positive_int(n_sites, "n_sites")
        self._per_kind = {kind: 0 for kind in MessageKind}
        self._per_site = np.zeros(self.n_sites, dtype=np.int64)
        self._coordinator_sent = 0
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Sync-epoch counter for the read-serving layer.

        Advances by exactly one per record call that carries at least one
        message; zero-count and empty calls leave it unchanged.  The
        coordinator's estimates can only change when a message is
        recorded (every counter-bank apply path records its reports in
        the same call), so a :class:`~repro.serve.ModelSnapshot` built at
        epoch ``e`` stays exact for as long as ``epoch == e`` — the
        serving layer rebuilds snapshots only on epoch advances, never
        per query (``docs/serving.md``).
        """
        return self._epoch

    # ------------------------------------------------------------------
    def record(self, kind: MessageKind, site: int, count: int = 1) -> None:
        """Record ``count`` messages of ``kind`` touching ``site``.

        For :attr:`MessageKind.BROADCAST` the sender is the coordinator and
        ``site`` is the recipient; otherwise ``site`` is the sender.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range [0, {self.n_sites})")
        self._per_kind[kind] += count
        if count > 0:
            self._epoch += 1
        if kind is MessageKind.BROADCAST:
            self._coordinator_sent += count
        else:
            self._per_site[site] += count

    def record_broadcast_all(self, count: int = 1) -> None:
        """Record a coordinator broadcast to every site (``k`` messages)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._per_kind[MessageKind.BROADCAST] += count * self.n_sites
        self._coordinator_sent += count * self.n_sites
        if count > 0:
            self._epoch += 1

    def record_syncs_all(self, count: int = 1) -> None:
        """Record ``count`` round-sync answers from every site.

        Equivalent to ``count`` :meth:`record` calls of
        :attr:`MessageKind.SYNC` per site (``count * k`` messages total);
        used by the counter banks' bulk round advances.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._per_kind[MessageKind.SYNC] += count * self.n_sites
        self._per_site += count
        if count > 0:
            self._epoch += 1

    def record_reports_bulk(self, sites: np.ndarray, counts: np.ndarray) -> None:
        """Vectorized :meth:`record` for REPORT messages."""
        sites = np.asarray(sites, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if sites.shape != counts.shape:
            raise ValueError("sites and counts must have the same shape")
        if counts.size == 0:
            return
        if np.any(counts < 0):
            raise ValueError("counts must be >= 0")
        if np.any(sites < 0) or np.any(sites >= self.n_sites):
            raise ValueError("site index out of range")
        total = int(counts.sum())
        self._per_kind[MessageKind.REPORT] += total
        np.add.at(self._per_site, sites, counts)
        if total > 0:
            self._epoch += 1

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total messages in either direction."""
        return sum(self._per_kind.values())

    def count(self, kind: MessageKind) -> int:
        return self._per_kind[kind]

    @property
    def site_messages(self) -> np.ndarray:
        """Messages sent by each site (copy)."""
        return self._per_site.copy()

    @property
    def coordinator_messages_sent(self) -> int:
        """Messages sent by the coordinator (broadcasts)."""
        return self._coordinator_sent

    @property
    def coordinator_messages_received(self) -> int:
        """Messages arriving at the coordinator (reports + syncs)."""
        return (
            self._per_kind[MessageKind.REPORT] + self._per_kind[MessageKind.SYNC]
        )

    def snapshot(self) -> dict[str, int]:
        """A plain-dict view of all tallies."""
        result = {str(kind): count for kind, count in self._per_kind.items()}
        result["total"] = self.total
        return result

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All tallies, for the session snapshot protocol.

        ``per_site`` is a numpy array; everything else is JSON-ready.
        """
        return {
            "per_kind": {
                kind.value: int(count)
                for kind, count in self._per_kind.items()
            },
            "per_site": self._per_site.copy(),
            "coordinator_sent": int(self._coordinator_sent),
            "epoch": int(self._epoch),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore tallies captured by :meth:`state_dict` (in place)."""
        per_site = np.asarray(state["per_site"], dtype=np.int64)
        if per_site.shape != self._per_site.shape:
            raise ValueError(
                f"per_site has shape {per_site.shape}, log expects "
                f"{self._per_site.shape}"
            )
        per_kind = dict(state["per_kind"])
        unknown = set(per_kind) - {kind.value for kind in MessageKind}
        if unknown:
            raise ValueError(f"unknown message kinds in state: {sorted(unknown)}")
        self._per_kind = {
            kind: int(per_kind.get(kind.value, 0)) for kind in MessageKind
        }
        self._per_site[...] = per_site
        self._coordinator_sent = int(state["coordinator_sent"])
        # Bundles written before the serving layer carry no epoch; any
        # non-negative restart value is fine — snapshot staleness checks
        # only ever compare epochs taken from the same live log.
        self._epoch = int(state.get("epoch", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageLog(total={self.total}, kinds={self.snapshot()})"
