"""Partitioning a stream of observations across sites.

The paper's experiments send each training event to a site chosen uniformly
at random.  The Zipf partitioner implements the skewed-site setting the
paper lists as future work direction (1), used by the skew ablation bench.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import StreamError
from repro.utils.rng import as_generator, restore_generator_state
from repro.utils.validation import check_positive_int


class StreamPartitioner(abc.ABC):
    """Assigns each stream item to one of ``k`` sites."""

    #: Registry name of the partitioner, recorded in session snapshots.
    kind: str = "abstract"

    def __init__(self, n_sites: int) -> None:
        self.n_sites = check_positive_int(n_sites, "n_sites")

    @abc.abstractmethod
    def assign(self, m: int) -> np.ndarray:
        """Site index in ``[0, k)`` for each of the next ``m`` items."""

    def preview(self, m: int) -> np.ndarray:
        """The next ``m`` assignments *without* consuming the stream.

        Implemented through the snapshot protocol: state (RNG bit
        generator, rotation cursor, ...) is captured, :meth:`assign`
        draws, and the state is restored — so a previewed run is exactly
        what the next real :meth:`assign` calls will produce, and calling
        it mid-stream leaves the live assignment stream byte-identical
        (the snapshot/resume contract of ``MonitoringSession``).
        """
        state = self.state_dict()
        try:
            return self.assign(m)
        finally:
            self.load_state_dict(state)

    def site_shares(self, m: int = 100_000) -> np.ndarray:
        """Empirical fraction of items per site over an ``m``-item draw.

        A diagnostic :meth:`preview`: it never advances the partitioner,
        so probing the share distribution mid-run cannot perturb the
        site-assignment stream of a monitored session.
        """
        sites = self.preview(m)
        return np.bincount(sites, minlength=self.n_sites) / m

    # ------------------------------------------------------------------
    # Snapshot protocol: everything a resumed session needs to continue
    # the site-assignment stream byte-identically.  All values must be
    # JSON-serializable.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"kind": self.kind}

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != self.kind:
            raise StreamError(
                f"snapshot holds a {state.get('kind')!r} partitioner, "
                f"cannot restore into {self.kind!r}"
            )

    def _rng_state(self, rng: np.random.Generator) -> dict:
        return rng.bit_generator.state

    def _load_rng_state(self, rng: np.random.Generator, rng_state) -> np.random.Generator:
        try:
            return restore_generator_state(rng, rng_state)
        except ValueError as exc:
            raise StreamError(str(exc)) from exc


class UniformPartitioner(StreamPartitioner):
    """Each event goes to a uniformly random site (the paper's setup)."""

    kind = "uniform"

    def __init__(self, n_sites: int, *, seed=None) -> None:
        super().__init__(n_sites)
        self._rng = as_generator(seed)

    def assign(self, m: int) -> np.ndarray:
        m = check_positive_int(m, "m")
        return self._rng.integers(0, self.n_sites, size=m)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["rng_state"] = self._rng_state(self._rng)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._rng = self._load_rng_state(self._rng, state["rng_state"])


class RoundRobinPartitioner(StreamPartitioner):
    """Deterministic rotation through sites; perfectly balanced."""

    kind = "round-robin"

    def __init__(self, n_sites: int, *, start: int = 0) -> None:
        super().__init__(n_sites)
        if not 0 <= start < self.n_sites:
            raise StreamError(f"start must be in [0, {self.n_sites}), got {start}")
        self._next = start

    def assign(self, m: int) -> np.ndarray:
        m = check_positive_int(m, "m")
        out = (self._next + np.arange(m, dtype=np.int64)) % self.n_sites
        self._next = int((self._next + m) % self.n_sites)
        return out

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["next"] = int(self._next)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._next = int(state["next"]) % self.n_sites


class ZipfPartitioner(StreamPartitioner):
    """Skewed assignment: site ``i`` receives share proportional to
    ``1 / (i + 1)^exponent``.

    ``exponent = 0`` recovers the uniform distribution; larger exponents
    concentrate the stream on the first few sites (paper future work (1)).
    """

    kind = "zipf"

    def __init__(self, n_sites: int, *, exponent: float = 1.0, seed=None) -> None:
        super().__init__(n_sites)
        if exponent < 0:
            raise StreamError(f"exponent must be >= 0, got {exponent}")
        self.exponent = float(exponent)
        weights = 1.0 / np.arange(1, self.n_sites + 1, dtype=np.float64) ** exponent
        self._probabilities = weights / weights.sum()
        # Precomputed inverse-CDF table, normalized exactly the way
        # ``Generator.choice(p=...)`` normalizes internally: ``assign``
        # then draws the same one-uniform-per-item stream the old
        # ``rng.choice`` call did, while skipping choice's per-call
        # probability validation and cumsum (the PR 2 RNG-contract
        # precedent: per-partitioner self-consistency plus statistical
        # identity with the previous draw, pinned by the test suite).
        cdf = np.cumsum(self._probabilities)
        cdf /= cdf[-1]
        self._cdf = cdf
        self._rng = as_generator(seed)

    def assign(self, m: int) -> np.ndarray:
        m = check_positive_int(m, "m")
        return np.searchsorted(self._cdf, self._rng.random(m), side="right")

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["exponent"] = self.exponent
        state["rng_state"] = self._rng_state(self._rng)
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if float(state["exponent"]) != self.exponent:
            raise StreamError(
                f"snapshot holds a zipf partitioner with exponent "
                f"{state['exponent']}, cannot restore into exponent "
                f"{self.exponent}"
            )
        self._rng = self._load_rng_state(self._rng, state["rng_state"])


#: Partitioner registry names (the spec/CLI vocabulary).
PARTITIONERS = ("uniform", "round-robin", "zipf")


def make_partitioner(
    name: str, n_sites: int, *, seed=None, exponent: float = 1.0
) -> StreamPartitioner:
    """Build a stream partitioner by its registry/CLI name."""
    key = str(name).strip().lower().replace("_", "-")
    if key == "uniform":
        return UniformPartitioner(n_sites, seed=seed)
    if key == "round-robin":
        return RoundRobinPartitioner(n_sites)
    if key == "zipf":
        return ZipfPartitioner(n_sites, exponent=exponent, seed=seed)
    raise StreamError(
        f"unknown partitioner {name!r}; expected one of {PARTITIONERS}"
    )
