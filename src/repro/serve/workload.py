"""Seedable query workloads for the serving layer.

`bench-query` and the serving tests need realistic read traffic:
full-assignment point queries, ancestrally closed partial events, and
classification batches — with the Zipf-skewed repetition real request
streams show (a serving tier lives on its hot keys).  Everything is
derived from one integer seed, so committed benchmark documents and
regression tests replay the exact same workload on every host.
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.bn.sampling import ForwardSampler


class QueryWorkload:
    """Draws reproducible query streams against one network.

    Parameters
    ----------
    network:
        The network queries are posed against (states and ancestral
        closures come from its structure).
    seed:
        Single integer seed; the sampler and the pick stream use
        independent children, so workload shapes stay stable when only
        the request count changes.
    """

    def __init__(self, network: BayesianNetwork, *, seed: int = 0) -> None:
        self.network = network
        sampler_child, picks_child = np.random.SeedSequence(
            seed, spawn_key=(0x53E2,)
        ).spawn(2)
        self._sampler = ForwardSampler(
            network, seed=np.random.default_rng(sampler_child)
        )
        self._rng = np.random.default_rng(picks_child)

    # ------------------------------------------------------------------
    def assignments(self, m: int) -> np.ndarray:
        """``(m, n)`` full assignments drawn from the network itself."""
        return self._sampler.sample(m)

    def zipf_picks(
        self, m: int, pool_size: int, *, exponent: float = 1.1
    ) -> np.ndarray:
        """``m`` indices into a pool of ``pool_size`` keys, rank-skewed.

        ``P(rank r) ∝ r^-exponent`` — the standard Zipf shape for hot
        keys; larger exponents concentrate traffic on fewer keys.
        """
        ranks = np.arange(1, pool_size + 1, dtype=np.float64)
        pmf = ranks ** -float(exponent)
        pmf /= pmf.sum()
        return self._rng.choice(pool_size, size=m, p=pmf)

    def events(
        self, m: int, *, pool_size: int = 32, zipf_exponent: float = 1.1
    ) -> list[dict]:
        """``m`` ancestrally closed partial events over a hot-key pool.

        Each pool entry picks a node, closes over its ancestors, and
        fixes the closure's states from a sampled assignment (so events
        are always valid and usually probable); the stream then draws
        pool entries Zipf-skewed — repeated dicts are *the same object*,
        giving caches identical keys, like a real repeated request.
        """
        names = self.network.node_names
        rows = self.assignments(pool_size)
        anchor = self._rng.integers(0, len(names), size=pool_size)
        pool = []
        for row, node_index in zip(rows, anchor):
            node = names[int(node_index)]
            closure = self.network.dag.ancestors(node) | {node}
            pool.append({
                name: int(row[i])
                for i, name in enumerate(names)
                if name in closure
            })
        picks = self.zipf_picks(m, pool_size, exponent=zipf_exponent)
        return [pool[i] for i in picks]

    def classification_batch(
        self,
        m: int,
        *,
        target: str | None = None,
        pool_size: int = 64,
        zipf_exponent: float = 1.1,
    ) -> tuple[list[str], np.ndarray]:
        """``(targets, data)`` for ``classify_batch``-shaped requests.

        A pool of ``pool_size`` (target, evidence-row) pairs is drawn —
        random targets unless ``target`` pins one — then ``m`` requests
        are Zipf-picked from it, so the decision cache sees realistic
        repetition.
        """
        names = self.network.node_names
        rows = self.assignments(pool_size)
        if target is None:
            indices = self._rng.integers(0, len(names), size=pool_size)
            pool_targets = [names[int(i)] for i in indices]
        else:
            if target not in names:
                raise ValueError(f"unknown target variable {target!r}")
            pool_targets = [target] * pool_size
        picks = self.zipf_picks(m, pool_size, exponent=zipf_exponent)
        return [pool_targets[i] for i in picks], rows[picks]
