"""Read-serving layer over a live monitoring session.

The paper's coordinator maintains anytime ``(1 ± eps)``-correct
estimates precisely so queries can be answered at any instant
(Algorithms 1-3); this package is the read path built for that promise
at serving scale.  :class:`ModelSnapshot` is an immutable, versioned,
read-optimized view of the current estimates rebuilt only when the
:class:`~repro.monitoring.channel.MessageLog` sync epoch advances;
:class:`QueryServer` answers single, batched, and cached queries over
snapshots — bit-identical to the live estimator at every epoch — with a
Theorem-3 staleness bound governing how long cached classification
decisions stay servable; :class:`QueryWorkload` generates the seeded
query streams the ``bench-query`` benchmark and the tests replay.  See
``docs/serving.md``.
"""

from repro.serve.snapshot import ModelSnapshot
from repro.serve.server import QueryServer
from repro.serve.workload import QueryWorkload

__all__ = ["ModelSnapshot", "QueryServer", "QueryWorkload"]
