"""Immutable, versioned, read-optimized views of the current estimates.

A :class:`ModelSnapshot` turns the counter bank's estimate vector into
the one table every query path needs: the per-joint-counter log-CPD term

    ``terms[j] = log(num_j) - log(den_j)``

where ``num_j`` is the joint counter's estimate and ``den_j`` its parent
family's estimate (``repro/core/estimator.py::StreamingMLEEstimator``
lays joint blocks before parent blocks, so one static gather map links
the two halves).  Every serving-layer answer — full-assignment queries,
ancestrally closed events, classification scores — is a sum of entries
of this table, which is why one contiguous array per sync epoch replaces
per-call counter walks.

Bit-identity contract: the live scalar paths (``log_query``,
``log_query_event``, ``BayesianClassifier``) take ``math.log`` of the
same float64 estimates per call.  ``np.log`` over arrays is *not*
bitwise-identical to ``math.log`` on this container (SIMD polynomial
paths differ by an ulp on a ~1e-4 fraction of inputs), so the table is
built with a ``math.log`` loop over the non-degenerate entries — a few
milliseconds even for LINK's 21k joint counters, paid once per sync
epoch instead of per query.
"""

from __future__ import annotations

import math

import numpy as np


class ServePlan:
    """Static layout derived once per estimator for snapshot builds.

    ``parent_of_joint[j]`` is the absolute counter index of the parent
    family estimate that divides joint counter ``j`` — the same
    arithmetic every layout in ``StreamingMLEEstimator._layouts``
    encodes, flattened so a snapshot build is pure array gathers.
    """

    __slots__ = ("n_joint", "parent_of_joint")

    def __init__(self, estimator) -> None:
        self.n_joint = int(estimator.n_joint_counters)
        parent_of_joint = np.empty(self.n_joint, dtype=np.int64)
        for layout in estimator._layouts:
            block = layout.cardinality * layout.k_configs
            parent_of_joint[
                layout.joint_offset : layout.joint_offset + block
            ] = layout.parent_offset + np.tile(
                np.arange(layout.k_configs), layout.cardinality
            )
        parent_of_joint.setflags(write=False)
        self.parent_of_joint = parent_of_joint


class ModelSnapshot:
    """One sync epoch's estimates, frozen into query-ready arrays.

    Attributes
    ----------
    epoch:
        The :attr:`~repro.monitoring.channel.MessageLog.epoch` the
        snapshot was built at; valid for as long as the log still
        reports it (estimates cannot move without a recorded message).
        The epoch survives coordinator crash recovery: WAL replay
        (:mod:`repro.dist.recovery`) re-records every replayed round's
        messages through the same calls the live apply path makes, so a
        snapshot built over a recovered session carries the same epoch
        an uninterrupted run would have stamped (``docs/recovery.md``).
    version:
        Monotonic build counter of the owning server (epochs can skip —
        many syncs may land between two reads — versions never do).
    terms:
        ``(n_joint_counters,)`` float64 log-CPD term table; ``-inf``
        wherever the numerator or denominator estimate is zero.
    neg:
        Boolean mask of entries whose *numerator* is zero — the scalar
        query paths return ``-inf`` at the first such family.
    bad:
        Boolean mask of entries whose numerator is positive but whose
        denominator is zero — the strict query paths raise
        :class:`~repro.errors.QueryError` there (impossible under
        consistent updates, reachable only by direct bank writes).
    """

    __slots__ = ("epoch", "version", "terms", "neg", "bad")

    def __init__(self, epoch, version, terms, neg, bad) -> None:
        self.epoch = epoch
        self.version = version
        self.terms = terms
        self.neg = neg
        self.bad = bad

    @classmethod
    def build(
        cls, estimates: np.ndarray, plan: ServePlan, *, epoch: int,
        version: int,
    ) -> "ModelSnapshot":
        """Freeze ``estimates`` (the full counter vector) into a snapshot."""
        num = estimates[: plan.n_joint]
        den = estimates[plan.parent_of_joint]
        neg = num <= 0.0
        bad = ~neg & (den <= 0.0)
        terms = np.full(plan.n_joint, -np.inf)
        ok = np.flatnonzero(~neg & ~bad)
        if ok.size:
            log = math.log
            terms[ok] = [
                log(n) - log(d)
                for n, d in zip(num[ok].tolist(), den[ok].tolist())
            ]
        for array in (terms, neg, bad):
            array.setflags(write=False)
        return cls(int(epoch), int(version), terms, neg, bad)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelSnapshot(epoch={self.epoch}, version={self.version}, "
            f"n_joint={self.terms.size})"
        )
