"""The query server: batched, cached, staleness-bounded read serving.

:class:`QueryServer` fronts a live session (in-process
:class:`~repro.api.session.MonitoringSession` or multiprocess
:class:`~repro.dist.DistributedSession` — anything exposing
``.estimator`` and ``.message_log``) and answers every read the session
can answer, bit-identical, from :class:`~repro.serve.ModelSnapshot`
tables instead of per-call counter walks:

- full-assignment joint queries, scalar and batched (Algorithm 3);
- ancestrally closed partial-event queries, with an LRU over repeated
  events;
- classification scores/decisions (Sec. V, Definition 4), with an LRU
  over hot parent-configuration term slices and a decision cache whose
  entries stay servable across sync epochs while the Theorem-3 margin
  provably holds.

Staleness bound (``docs/serving.md`` derives it): every counter
estimate is ``(1 ± eps)``-correct, so any two valid estimate vectors
for the same underlying counts keep each log-CPD term of family ``f``
within ``delta_f = log((1 + eps_f) / (1 - eps_f))`` of each other.  A
classification score for target ``Y`` sums terms over ``affected(Y)``
(the target's family and its children's), so scores move by at most
``D = sum_f delta_f`` and score *gaps* by at most ``2 D``.  A cached
decision with margin ``> 2 D`` therefore cannot flip against any
estimate vector the accuracy guarantee allows — it is served across
epoch advances; smaller margins are invalidated the moment the epoch
moves.  Exact counters have ``eps = 0``, so their decisions cache for
as long as the margin is positive; within one epoch every cached answer
is served unconditionally (no message has been recorded, so the
estimates are provably unchanged).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Mapping

import numpy as np

from repro.errors import QueryError
from repro.serve.snapshot import ModelSnapshot, ServePlan


class _LRU:
    """A tiny ordered-dict LRU used for all three server caches."""

    __slots__ = ("data", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"cache size must be >= 1, got {maxsize}")
        self.data: OrderedDict = OrderedDict()
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self.data[key]
        except KeyError:
            self.misses += 1
            return None
        self.data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self.data[key] = value
        self.data.move_to_end(key)
        while len(self.data) > self.maxsize:
            self.data.popitem(last=False)

    def clear(self) -> None:
        self.data.clear()

    def stats(self) -> dict:
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "size": len(self.data),
            "maxsize": self.maxsize,
        }


class _DecisionEntry:
    """One cached classification decision and its validity evidence."""

    __slots__ = ("decision", "margin", "epoch")

    def __init__(self, decision: int, margin: float, epoch: int) -> None:
        self.decision = decision
        self.margin = margin
        self.epoch = epoch


class _TargetPlan:
    """Static scoring plan for one classification target.

    One row per affected family (the target's own, then each child's,
    in :meth:`BayesianClassifier._affected_variables` order).  For a
    fixed evidence vector with the target's column zeroed, family ``f``
    contributes ``terms[start_f + y * stride_f]`` to state ``y``'s
    score: the target family strides its joint-state dimension
    (``stride = k_configs``), a child family strides the target's
    position in its parent configuration.
    """

    __slots__ = ("target_index", "cardinality", "rows", "state_range")

    def __init__(self, server: "QueryServer", target: str) -> None:
        network = server._network
        estimator = server._estimator
        self.target_index = network.variable_index(target)
        self.cardinality = network.variable(target).cardinality
        self.state_range = np.arange(self.cardinality, dtype=np.int64)
        self.rows = []
        for name in (target, *network.dag.children(target)):
            layout = estimator._layouts[network.variable_index(name)]
            if name == target:
                stride = layout.k_configs
                own_scale = 0  # the y axis *is* the joint-state axis
            else:
                position = list(layout.parent_positions).index(
                    self.target_index
                )
                stride = int(layout.parent_strides[position])
                own_scale = layout.k_configs
            self.rows.append((
                name,
                layout.joint_offset,
                own_scale,
                layout.index,
                layout.parent_positions,
                layout.parent_strides,
                stride,
            ))


class QueryServer:
    """Serves reads for one live session from versioned snapshots.

    Parameters
    ----------
    source:
        The live session; must expose ``.estimator`` and
        ``.message_log`` (both session classes do — the distributed
        session's properties flush in-flight rounds first, so a served
        answer always reflects every applied sync).
    event_cache_size / slice_cache_size / decision_cache_size:
        LRU capacities for repeated events, hot parent-configuration
        term slices, and classification decisions.
    """

    def __init__(
        self,
        source,
        *,
        event_cache_size: int = 4096,
        slice_cache_size: int = 4096,
        decision_cache_size: int = 65536,
    ) -> None:
        self._source = source
        self._estimator = source.estimator
        self._network = self._estimator.network
        self._plan = ServePlan(self._estimator)
        self._snapshot: ModelSnapshot | None = None
        self._version = 0
        self._event_cache = _LRU(event_cache_size)
        self._slice_cache = _LRU(slice_cache_size)
        self._decision_cache = _LRU(decision_cache_size)
        self._target_plans: dict[str, _TargetPlan] = {}
        self._thresholds: dict[str, float] = {}
        self._family_drift = self._compute_family_drift()
        self.snapshot_refreshes = 0
        self.queries_served = 0
        self.decision_stale_hits = 0
        self.decision_invalidations = 0

    # ------------------------------------------------------------------
    # Snapshot lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> ModelSnapshot:
        """The snapshot for the *current* sync epoch (rebuilding if the
        message log has recorded traffic since the last build)."""
        epoch = self._source.message_log.epoch
        current = self._snapshot
        if current is not None and current.epoch == epoch:
            return current
        self._version += 1
        self.snapshot_refreshes += 1
        built = ModelSnapshot.build(
            self._estimator.bank.estimates(),
            self._plan,
            epoch=epoch,
            version=self._version,
        )
        # Value caches answer *for the current estimates* and must not
        # survive them; the decision cache survives on purpose — its
        # entries carry their own margin-based validity proof.
        self._event_cache.clear()
        self._slice_cache.clear()
        self._snapshot = built
        return built

    # ------------------------------------------------------------------
    # Full-assignment queries (Algorithm 3)
    # ------------------------------------------------------------------
    def log_joint(self, assignment) -> float:
        """Bit-identical to the live session's ``log_query``."""
        snap = self.snapshot()
        vec = self._estimator._event_indices(assignment)
        terms, neg, bad = snap.terms, snap.neg, snap.bad
        total = 0.0
        for layout in self._estimator._layouts:
            jid = (
                layout.joint_offset
                + vec[layout.index] * layout.k_configs
                + layout.parent_state(vec)
            )
            if neg[jid]:
                self.queries_served += 1
                return -math.inf
            if bad[jid]:
                raise QueryError(
                    "parent counter is zero while joint counter is not; "
                    "the model has seen no consistent data for this event"
                )
            total += terms[jid]
        self.queries_served += 1
        return float(total)

    def joint(self, assignment) -> float:
        """Bit-identical to the live session's ``query``."""
        value = self.log_joint(assignment)
        return math.exp(value) if value > -math.inf else 0.0

    def log_joint_batch(
        self, data: np.ndarray, *, strict: bool = False
    ) -> np.ndarray:
        """Batched ``log_joint`` over rows of full assignments.

        Row values are bit-identical to a scalar :meth:`log_joint` loop
        (terms are gathered and accumulated family by family, the same
        float additions in the same order).  ``strict`` mirrors
        ``StreamingMLEEstimator.log_query_batch``: ``False`` folds every
        degenerate family into ``-inf``, ``True`` raises
        :class:`QueryError` exactly where the scalar walk would.
        """
        snap = self.snapshot()
        data = np.asarray(data, dtype=np.int64)
        layouts = self._estimator._layouts
        if data.ndim != 2 or data.shape[1] != len(layouts):
            raise QueryError(
                f"data must have shape (m, {len(layouts)}), got {data.shape}"
            )
        n_layouts = len(layouts)
        total = np.zeros(data.shape[0], dtype=np.float64)
        first_neg = np.full(data.shape[0], n_layouts, dtype=np.int64)
        if strict:
            first_bad = np.full(data.shape[0], n_layouts, dtype=np.int64)
        for position, layout in enumerate(layouts):
            ids = (
                layout.joint_offset
                + data[:, layout.index] * layout.k_configs
                + layout.parent_state_batch(data)
            )
            total += snap.terms[ids]
            np.minimum(
                first_neg,
                np.where(snap.neg[ids], position, n_layouts),
                out=first_neg,
            )
            if strict:
                np.minimum(
                    first_bad,
                    np.where(snap.bad[ids], position, n_layouts),
                    out=first_bad,
                )
        if strict:
            offending = np.flatnonzero(first_bad < first_neg)
            if offending.size:
                raise QueryError(
                    f"parent counter is zero while joint counter is not "
                    f"for row {int(offending[0])} (and "
                    f"{int(offending.size) - 1} more); the model has seen "
                    f"no consistent data for these events"
                )
        self.queries_served += int(data.shape[0])
        return total

    def joint_batch(self, data: np.ndarray, *, strict: bool = False
                    ) -> np.ndarray:
        """``exp`` of :meth:`log_joint_batch` with exact zeros at ``-inf``."""
        values = self.log_joint_batch(data, strict=strict)
        out = np.zeros_like(values)
        finite = values > -np.inf
        out[finite] = np.exp(values[finite])
        return out

    # ------------------------------------------------------------------
    # Ancestrally closed partial events
    # ------------------------------------------------------------------
    def log_event(self, event: Mapping[str, int]) -> float:
        """Bit-identical to the live session's ``log_query_event``.

        Repeated events (same items in the same order) are served from
        the event LRU; the cache is dropped whenever the snapshot
        refreshes, so a hit is always an answer for the current epoch.
        """
        snap = self.snapshot()
        key = tuple(event.items())
        cached = self._event_cache.get(key)
        if cached is not None:
            self.queries_served += 1
            return cached
        value = self._log_event_uncached(snap, event)
        self._event_cache.put(key, value)
        self.queries_served += 1
        return value

    def _log_event_uncached(
        self, snap: ModelSnapshot, event: Mapping[str, int]
    ) -> float:
        plans = self._estimator._event_plans
        for name in event:
            if name not in plans:
                raise QueryError(f"unknown variable {name!r} in event")
        variable = self._network.variable
        terms, neg, bad = snap.terms, snap.neg, snap.bad
        total = 0.0
        for name, state in event.items():
            layout, parent_names, strides, var = plans[name]
            for parent in parent_names:
                if parent not in event:
                    raise QueryError(
                        f"event is not ancestrally closed: {name!r} assigned "
                        f"but parent {parent!r} is not"
                    )
            pstate = 0
            for parent, stride in zip(parent_names, strides):
                pstate += variable(parent).state_index(event[parent]) * stride
            jid = (
                layout.joint_offset
                + var.state_index(state) * layout.k_configs
                + pstate
            )
            if neg[jid]:
                return -math.inf
            if bad[jid]:
                raise QueryError(
                    f"no data observed for parent configuration of {name!r}"
                )
            total += terms[jid]
        return float(total)

    def event_probability(self, event: Mapping[str, int]) -> float:
        """Bit-identical to the live session's ``query_event``."""
        value = self.log_event(event)
        return math.exp(value) if value > -math.inf else 0.0

    def log_event_batch(self, events) -> np.ndarray:
        """``log_event`` over a sequence of events.

        The batch amortizes one snapshot check across the whole request
        and routes every item through the event LRU — Zipf-skewed
        request streams (the realistic case for a serving tier) hit the
        cache for the bulk of the batch.
        """
        self.snapshot()
        return np.array([self.log_event(e) for e in events])

    # ------------------------------------------------------------------
    # Classification (Sec. V)
    # ------------------------------------------------------------------
    def _target_plan(self, target: str) -> _TargetPlan:
        plan = self._target_plans.get(target)
        if plan is None:
            if target not in self._network.dag.nodes:
                raise QueryError(f"unknown target variable {target!r}")
            plan = _TargetPlan(self, target)
            self._target_plans[target] = plan
        return plan

    def _scores_from_vec(
        self, snap: ModelSnapshot, plan: _TargetPlan, vec: np.ndarray
    ) -> np.ndarray:
        """Score vector over the target's states for one evidence row.

        ``vec`` must have the target's column zeroed.  Accumulates each
        affected family's term slice in affected order — element-wise
        the same additions, in the same order, as the live classifier's
        per-state walk, so scores are bit-identical (``-inf`` absorbs
        later finite terms exactly as the live early-break does).
        """
        scores = np.zeros(plan.cardinality, dtype=np.float64)
        cache = self._slice_cache
        terms = snap.terms
        for name, joint_offset, own_scale, own_index, positions, strides, \
                stride in plan.rows:
            base = joint_offset + int(vec[own_index]) * own_scale
            if positions.size:
                base += int(vec[positions] @ strides)
            key = (plan.target_index, name, base)
            piece = cache.get(key)
            if piece is None:
                piece = terms[base + stride * plan.state_range]
                cache.put(key, piece)
            scores += piece
        return scores

    def scores(self, target: str, evidence: Mapping[str, int]) -> np.ndarray:
        """Bit-identical to ``BayesianClassifier.scores``."""
        snap = self.snapshot()
        plan = self._target_plan(target)
        vec = self._evidence_vector(target, plan, evidence)
        self.queries_served += 1
        return self._scores_from_vec(snap, plan, vec)

    def _evidence_vector(
        self, target: str, plan: _TargetPlan, evidence: Mapping[str, int]
    ) -> np.ndarray:
        names = self._network.node_names
        missing = set(names) - set(evidence) - {target}
        if missing:
            raise QueryError(
                f"evidence must cover all non-target variables; missing "
                f"{sorted(missing)[:5]}"
            )
        if target in evidence:
            raise QueryError(f"target {target!r} also appears in evidence")
        vec = np.zeros(len(names), dtype=np.int64)
        variable = self._network.variable
        for idx, name in enumerate(names):
            if name != target:
                vec[idx] = variable(name).state_index(evidence[name])
        return vec

    def classify(self, target: str, evidence: Mapping[str, int]) -> int:
        """Bit-identical to ``BayesianClassifier.predict``, cached."""
        snap = self.snapshot()
        plan = self._target_plan(target)
        vec = self._evidence_vector(target, plan, evidence)
        return self._classify_vec(snap, target, plan, vec)

    def classify_batch(self, targets, data: np.ndarray) -> np.ndarray:
        """Bit-identical to ``BayesianClassifier.predict_batch``, cached.

        ``data`` rows are full assignments whose target column is
        ignored (treated as hidden), exactly like the live batch path.
        """
        data = np.asarray(data, dtype=np.int64)
        if data.ndim != 2 or data.shape[0] != len(targets):
            raise QueryError("data rows must align with the targets list")
        snap = self.snapshot()
        predictions = np.empty(len(targets), dtype=np.int64)
        for r, target in enumerate(targets):
            plan = self._target_plan(target)
            vec = data[r].copy()
            vec[plan.target_index] = 0
            predictions[r] = self._classify_vec(snap, target, plan, vec)
        return predictions

    def _classify_vec(
        self, snap: ModelSnapshot, target: str, plan: _TargetPlan,
        vec: np.ndarray,
    ) -> int:
        key = (plan.target_index, vec.tobytes())
        entry = self._decision_cache.get(key)
        if entry is not None:
            if entry.epoch == snap.epoch:
                # Same epoch: not one message since the decision was
                # computed, so the estimates — and the decision — are
                # literally unchanged.
                self.queries_served += 1
                return entry.decision
            if entry.margin > self.staleness_threshold(target):
                # Theorem-3 margin still covers the worst drift the
                # accuracy guarantee allows: serve stale.
                self.decision_stale_hits += 1
                self.queries_served += 1
                return entry.decision
            self.decision_invalidations += 1
            self._decision_cache.misses += 1
            self._decision_cache.hits -= 1  # the get above counted a hit
        scores = self._scores_from_vec(snap, plan, vec)
        decision = int(np.argmax(scores))
        self._decision_cache.put(
            key,
            _DecisionEntry(decision, self.decision_margin(scores), snap.epoch),
        )
        self.queries_served += 1
        return decision

    # ------------------------------------------------------------------
    # Theorem-3 staleness bound
    # ------------------------------------------------------------------
    def _compute_family_drift(self) -> np.ndarray:
        """``delta_f`` per variable: the worst movement of family ``f``'s
        log-CPD term between any two estimate vectors the counter
        accuracy guarantee admits for the same underlying counts.

        Each counter's estimate is within ``(1 ± eps)`` of its true
        count, so two valid estimates of one counter differ by a factor
        of at most ``(1 + eps) / (1 - eps)`` — and a num/den log-ratio
        by at most ``delta = log((1 + eps) / (1 - eps))`` using the
        family's largest per-counter ``eps``.  Exact banks publish no
        ``eps`` and get ``delta = 0``; ``eps >= 1`` (vacuous guarantee)
        gets ``inf`` — such decisions are never served stale.
        """
        estimator = self._estimator
        eps = getattr(estimator.bank, "eps", None)
        drift = np.zeros(len(estimator._layouts), dtype=np.float64)
        if eps is None:
            return drift
        eps = np.asarray(eps, dtype=np.float64)
        for i, layout in enumerate(estimator._layouts):
            joint = eps[
                layout.joint_offset
                : layout.joint_offset + layout.cardinality * layout.k_configs
            ]
            parent = eps[
                layout.parent_offset : layout.parent_offset + layout.k_configs
            ]
            worst = float(max(joint.max(initial=0.0),
                              parent.max(initial=0.0)))
            drift[i] = (
                math.inf if worst >= 1.0
                else math.log((1.0 + worst) / (1.0 - worst))
            )
        drift.setflags(write=False)
        return drift

    @property
    def family_drift(self) -> np.ndarray:
        """Per-variable ``delta_f`` in ``network.node_names`` order."""
        return self._family_drift

    def staleness_threshold(self, target: str) -> float:
        """``2 * sum(delta_f over affected(target))``: the margin a cached
        decision for ``target`` must exceed to stay valid across sync
        epochs (``docs/serving.md`` derives the factor of two)."""
        threshold = self._thresholds.get(target)
        if threshold is None:
            plan = self._target_plan(target)
            total = 0.0
            for row in plan.rows:
                total += float(
                    self._family_drift[
                        self._network.variable_index(row[0])
                    ]
                )
            threshold = 2.0 * total
            self._thresholds[target] = threshold
        return threshold

    @staticmethod
    def decision_margin(scores: np.ndarray) -> float:
        """Best-vs-runner-up score gap that certifies a decision.

        ``inf`` when there is no competing state (single-state targets,
        or every alternative scored ``-inf``); ``0`` when even the best
        state scored ``-inf`` (nothing certifiable — such a decision is
        only ever served within its own epoch).
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.size < 2:
            return math.inf
        best = float(scores.max())
        if best == -math.inf:
            return 0.0
        second = float(np.partition(scores, -2)[-2])
        if second == -math.inf:
            return math.inf
        return best - second

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters (JSON-ready), for benchmarks and monitoring."""
        snap = self._snapshot
        return {
            "snapshot_refreshes": int(self.snapshot_refreshes),
            "snapshot_epoch": None if snap is None else int(snap.epoch),
            "snapshot_version": None if snap is None else int(snap.version),
            "queries_served": int(self.queries_served),
            "event_cache": self._event_cache.stats(),
            "slice_cache": self._slice_cache.stats(),
            "decision_cache": {
                **self._decision_cache.stats(),
                "stale_hits": int(self.decision_stale_hits),
                "invalidations": int(self.decision_invalidations),
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snap = self._snapshot
        return (
            f"QueryServer({self._network.name!r}, "
            f"epoch={None if snap is None else snap.epoch}, "
            f"refreshes={self.snapshot_refreshes}, "
            f"served={self.queries_served})"
        )
