"""The monitoring session: lifecycle facade over the streaming estimator.

The paper's coordinator is a *continuous* service: it ingests an
unbounded distributed stream and must answer ``(1 ± eps)``-accurate
queries at every instant.  :class:`MonitoringSession` is that service as
an object — incremental :meth:`~MonitoringSession.ingest` /
:meth:`~MonitoringSession.ingest_stream` feeding, anytime queries and
classification, live :meth:`~MonitoringSession.metrics`, and full state
externalization: :meth:`~MonitoringSession.snapshot` persists the
estimator, counter-bank arrays, message log, partitioner, and every RNG
bit-generator state to a bundle directory (versioned ``.npz`` arrays +
``meta.json``) that :meth:`~MonitoringSession.restore` resumes
**byte-identically** mid-stream, in the same or a fresh process.

Snapshot bundle layout (schema ``repro-session-v1``)::

    <bundle>/
    ├── meta.json           schema, the serialized EstimatorSpec,
    │                       events_seen, message tallies by kind,
    │                       partitioner + bank RNG states, caller
    │                       extras, and the arrays filename
    └── arrays-<m>.npz      counter-bank arrays (``bank.*``) and the
                            per-site message tallies (``log.per_site``)

Snapshots are **crash-atomic**: the arrays land under a stream-position-
versioned name first, then one atomic ``meta.json`` replace commits the
bundle (``meta.json`` names its arrays file; stale arrays files are
cleaned afterwards).  A process killed mid-snapshot therefore leaves
either the previous consistent bundle or the new one, never a torn mix
— which is what lets the chunked executor re-run a dead worker's
segment from the surviving bundle.

Restoring rebuilds the session from the embedded spec (layout and
configuration are *derived*, never stored) and then overwrites all
mutable state, so a snapshot stays valid as long as the spec rebuilds
the same network layout.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping
from pathlib import Path

import numpy as np

from repro.api.spec import EstimatorSpec
from repro.bn.network import BayesianNetwork
from repro.bn.sampling import ForwardSampler
from repro.core.classification import BayesianClassifier
from repro.errors import SessionError
from repro.monitoring.channel import MessageLog
from repro.monitoring.stream import make_partitioner

#: Version tag written into every snapshot bundle.
SNAPSHOT_SCHEMA = "repro-session-v1"

_META_NAME = "meta.json"
_ARRAYS_NAME = "arrays.npz"


def _fsync_path(path) -> None:
    """fsync one file or directory (durability for renames within it)."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class MonitoringSession:
    """One live coordinator: estimator + message accounting + partitioner.

    Parameters
    ----------
    spec:
        The declarative description of what to run.
    network:
        Skip the spec's repository lookup when the caller already holds
        the resolved network (must be the same network).

    Notes
    -----
    With an ``int``/``None`` spec seed the session derives two
    independent child generators from one ``SeedSequence`` — one for the
    counter bank's coin flips, one for the partitioner — so sessions are
    reproducible end to end from a single integer.  A ``Generator`` seed
    is handed to the bank as-is and the partitioner draws fresh entropy
    (snapshots still resume byte-identically: they capture RNG *state*).
    """

    def __init__(
        self,
        spec: EstimatorSpec,
        *,
        network: BayesianNetwork | None = None,
    ) -> None:
        self.spec = spec
        self.network = network if network is not None else spec.resolve_network()
        self.message_log = MessageLog(spec.n_sites)
        if isinstance(spec.seed, np.random.Generator):
            bank_rng = spec.seed
            partitioner_seed = None
        else:
            # The spawn_key namespaces the session's children away from
            # plain SeedSequence(seed).spawn users (RandomSource), so a
            # runner deriving its sampler from the same integer seed never
            # shares a stream with the session's bank or partitioner.
            bank_child, partitioner_child = np.random.SeedSequence(
                spec.seed, spawn_key=(0x5E55,)
            ).spawn(2)
            bank_rng = np.random.default_rng(bank_child)
            partitioner_seed = np.random.default_rng(partitioner_child)
        self.estimator = spec.build(
            message_log=self.message_log, network=self.network, rng=bank_rng
        )
        self.partitioner = make_partitioner(
            spec.partitioner,
            spec.n_sites,
            seed=partitioner_seed,
            exponent=spec.zipf_exponent,
        )
        #: Caller extras recovered from the snapshot this session was
        #: restored from (``None`` for fresh sessions).
        self.restored_extra: dict | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, data, site_ids=None, *, strategy: str = "auto",
               validate: bool = True) -> int:
        """Feed a batch of events; returns the number of events ingested.

        ``data`` is ``(m, n)`` state indices (a single ``(n,)`` event is
        promoted to a one-row batch).  When ``site_ids`` is omitted the
        session's partitioner assigns sites — the spec's ``partitioner``
        policy — and that assignment stream is part of the snapshot
        state, so resumed sessions continue it byte-identically.

        ``validate=False`` skips the estimator's per-batch range scans;
        use it only for batches valid by construction (a sampler drawing
        from the same network, or the session partitioner's own site
        ids).
        """
        data = np.asarray(data, dtype=np.int64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if data.shape[0] == 0:
            return 0
        if site_ids is None:
            site_ids = self.partitioner.assign(data.shape[0])
        self.estimator.update_batch(
            data, site_ids, strategy=strategy, validate=validate
        )
        return int(data.shape[0])

    def ingest_stream(self, batches: Iterable, *, strategy: str = "auto",
                      validate: bool = True) -> int:
        """Feed an iterable of batches; returns the total events ingested.

        Each item is either a ``(data, site_ids)`` pair or a bare data
        batch (sites then come from the session partitioner).  Works with
        generators — e.g. ``ForwardSampler.sample_stream`` — so unbounded
        streams never materialize in memory.  ``validate`` is forwarded
        to :meth:`ingest` for every batch.
        """
        total = 0
        for item in batches:
            if isinstance(item, tuple) and len(item) == 2:
                data, site_ids = item
            else:
                data, site_ids = item, None
            total += self.ingest(
                data, site_ids, strategy=strategy, validate=validate
            )
        return total

    def ingest_sampler(self, sampler, m: int, *, chunk: int = 10_000,
                       strategy: str = "auto") -> int:
        """Fused zero-copy ingest of ``m`` events drawn from ``sampler``.

        The paper-scale fast path: the sampler fills one preallocated
        F-ordered chunk buffer (``sample_stream(reuse_buffer=True)``),
        the session partitioner assigns sites, and the estimator ingests
        each chunk without re-validating or re-allocating — the sparse
        batch encoder reads the buffer's transpose as a free view and
        reuses its own workspace across chunks (``docs/performance.md``
        walks through the stages).  The sampler must draw from this
        session's network; batches are trusted by construction.
        """
        return self.ingest_stream(
            sampler.sample_stream(m, chunk=chunk, reuse_buffer=True),
            strategy=strategy,
            validate=False,
        )

    def sampler(self, *, seed=None, engine: str = "auto",
                shards: int | None = None, mode: str | None = None):
        """A ground-truth sampler over this session's network.

        The companion to :meth:`ingest_sampler`: with ``mode=None``
        (default) returns a :class:`~repro.bn.sampling.ForwardSampler`
        with the requested ``engine``; with a
        :data:`~repro.exec.sampler.SHARD_MODES` name returns a
        :class:`~repro.exec.ShardedSampler` drawing chunk-parallel over
        ``shards`` workers.  Either way the result plugs straight into
        ``session.ingest_sampler(session.sampler(seed=0), m)``.

        ``mode="auto"`` picks the execution itself from the machine:
        single-core hosts stay serial (sharding overhead buys nothing),
        multi-core hosts use thread shards, and ``shards`` defaults to
        ``os.cpu_count()`` either way.  The draw layout depends only on
        the shard *count*, never on the mode, so auto mode yields the
        same bytes as any explicit choice with the same count.
        """
        if mode is None:
            return ForwardSampler(self.network, seed=seed, engine=engine)
        from repro.exec.sampler import ShardedSampler

        if mode == "auto":
            cores = os.cpu_count() or 1
            if shards is None:
                shards = cores
            mode = "serial" if cores == 1 else "thread"
        return ShardedSampler(
            self.network, shards=shards, seed=seed, mode=mode, engine=engine
        )

    # ------------------------------------------------------------------
    # Anytime access
    # ------------------------------------------------------------------
    def query(self, assignment) -> float:
        """Estimated joint probability of a full assignment (Algorithm 3)."""
        return self.estimator.query(assignment)

    def log_query(self, assignment) -> float:
        """Natural log of :meth:`query`."""
        return self.estimator.log_query(assignment)

    def query_event(self, event: Mapping[str, int]) -> float:
        """Estimated probability of an ancestrally closed partial event."""
        return self.estimator.query_event(event)

    def log_query_batch(self, data, *, strict: bool = False) -> np.ndarray:
        """Vectorized log-probability estimates over rows of assignments.

        ``strict=True`` replicates the scalar :meth:`log_query` error
        semantics row by row instead of folding zero denominators into
        ``-inf``.
        """
        return self.estimator.log_query_batch(data, strict=strict)

    def estimates(self) -> np.ndarray:
        """The coordinator's current estimate of every counter."""
        return self.estimator.bank.estimates()

    def classifier(self) -> BayesianClassifier:
        """An anytime approximate classifier over the current estimates
        (Sec. V, Definition 4 / Theorem 3)."""
        return BayesianClassifier(self.estimator)

    def serve(self, **kwargs):
        """A :class:`~repro.serve.QueryServer` over this session.

        The read-serving front end: versioned snapshots rebuilt only
        when the message log's sync epoch advances, batched and cached
        query evaluation bit-identical to the live :meth:`query` /
        :meth:`query_event` / :meth:`classifier` paths, and a Theorem-3
        staleness bound on cached classification decisions (see
        ``docs/serving.md``).  Keyword arguments configure the server's
        cache sizes.
        """
        from repro.serve import QueryServer

        return QueryServer(self, **kwargs)

    def estimated_network(self, *, name: str | None = None) -> BayesianNetwork:
        """The learned parameters materialized as a standalone network."""
        return self.estimator.to_network(name=name)

    @property
    def events_seen(self) -> int:
        return self.estimator.events_seen

    @property
    def total_messages(self) -> int:
        return self.estimator.total_messages

    def metrics(self) -> dict:
        """Live communication/progress metrics (JSON-ready).

        ``messages_by_kind`` uses the :class:`MessageKind` values plus a
        ``total``; ``site_messages`` is the per-site sender tally — the
        paper's max-load metric is its max.
        """
        log = self.message_log
        site_messages = log.site_messages
        return {
            "network": self.network.name,
            "algorithm": self.spec.algorithm,
            "counter_backend": self.spec.resolved_backend,
            "n_sites": self.spec.n_sites,
            "n_counters": self.estimator.n_counters,
            "events_seen": int(self.events_seen),
            "total_messages": int(self.total_messages),
            "messages_by_kind": log.snapshot(),
            "site_messages": [int(v) for v in site_messages],
            "max_site_messages": int(site_messages.max()),
            "coordinator_messages_sent": int(log.coordinator_messages_sent),
            "coordinator_messages_received": int(
                log.coordinator_messages_received
            ),
        }

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, path, *, extra: dict | None = None,
                 durable: bool = False) -> Path:
        """Persist the full session state to a bundle directory.

        ``extra`` is an arbitrary JSON-serializable dict stored verbatim
        for the caller (the experiment runner stashes its grid progress
        there); it comes back as ``restored_extra`` after
        :meth:`restore`.  Returns the bundle path.

        The write is crash-atomic: arrays first (under a versioned
        name), then one atomic ``meta.json`` replace commits the bundle
        — a crash at any point leaves the previous bundle intact.
        ``durable=True`` additionally fsyncs the arrays file, the
        metadata, and the bundle directory, extending the guarantee
        from process crashes to host/power failure — the distributed
        coordinator's recovery checkpoints (``docs/recovery.md``) write
        with it.
        """
        bundle = Path(path)
        bundle.mkdir(parents=True, exist_ok=True)
        estimator_state = self.estimator.state_dict()
        bank_state = estimator_state.pop("bank")
        arrays: dict[str, np.ndarray] = {}
        bank_meta: dict = {}
        for key, value in bank_state.items():
            if isinstance(value, np.ndarray):
                arrays[f"bank.{key}"] = value
            else:
                bank_meta[key] = value
        log_state = self.message_log.state_dict()
        arrays["log.per_site"] = log_state.pop("per_site")
        arrays_name = f"arrays-{int(estimator_state['events_seen'])}.npz"
        meta = {
            "schema": SNAPSHOT_SCHEMA,
            "arrays": arrays_name,
            "spec": self.spec.to_dict(),
            "estimator": estimator_state,
            "bank": bank_meta,
            "message_log": log_state,
            "partitioner": self.partitioner.state_dict(),
            "extra": extra,
        }
        tmp_arrays = bundle / f".tmp-{arrays_name}"
        np.savez_compressed(tmp_arrays, **arrays)
        if durable:
            _fsync_path(tmp_arrays)
        os.replace(tmp_arrays, bundle / arrays_name)
        # No sort_keys: an inline network's ``parents`` mapping is
        # order-significant (it seeds the rebuilt DAG's topological
        # tie-breaking, and with it the counter layout), so the bundle
        # must preserve document order.
        tmp_meta = bundle / f".tmp-{_META_NAME}"
        tmp_meta.write_text(json.dumps(meta, indent=2) + "\n")
        if durable:
            _fsync_path(tmp_meta)
        os.replace(tmp_meta, bundle / _META_NAME)  # the commit point
        if durable:
            _fsync_path(bundle)  # the renames themselves
        for stale in (*bundle.glob("*.npz"), *bundle.glob(".tmp-*")):
            if stale.name != arrays_name:
                stale.unlink(missing_ok=True)
        return bundle

    @staticmethod
    def peek(path) -> dict:
        """Read a snapshot bundle's metadata without rebuilding anything.

        Returns the (schema-checked) ``meta.json`` payload — spec,
        estimator progress, and caller extras — so drivers can inspect a
        bundle's stream position cheaply before deciding whether (and
        where) to resume it.  Raises :class:`SessionError` when no
        bundle exists at ``path`` or its schema is unknown.
        """
        meta_path = Path(path) / _META_NAME
        if not meta_path.is_file():
            raise SessionError(f"no session snapshot at {Path(path)}")
        try:
            meta = json.loads(meta_path.read_text())
        except ValueError as exc:
            raise SessionError(
                f"corrupt snapshot metadata at {meta_path}: {exc}"
            ) from exc
        if not isinstance(meta, dict) or meta.get("schema") != SNAPSHOT_SCHEMA:
            raise SessionError(
                f"unsupported snapshot schema at {meta_path}"
            )
        return meta

    @classmethod
    def restore(
        cls, path, *, network: BayesianNetwork | None = None
    ) -> "MonitoringSession":
        """Rebuild a session from a :meth:`snapshot` bundle and resume.

        The session is reconstructed from the embedded spec (pass
        ``network`` to skip the repository lookup), then every piece of
        mutable state — counter-bank arrays, message tallies, stream
        position, and all RNG bit-generator states — is overwritten from
        the bundle, so the continuation is byte-identical to a run that
        never stopped.
        """
        bundle = Path(path)
        meta = cls.peek(bundle)
        # meta.json names its arrays file (older bundles used a fixed
        # name), so a committed bundle can never pair with the wrong
        # arrays version.
        arrays_path = bundle / meta.get("arrays", _ARRAYS_NAME)
        if not arrays_path.is_file():
            raise SessionError(
                f"snapshot at {bundle} references missing arrays file "
                f"{arrays_path.name}"
            )
        spec = EstimatorSpec.from_dict(meta["spec"])
        session = cls(spec, network=network)
        with np.load(arrays_path) as handle:
            arrays = {key: handle[key] for key in handle.files}
        bank_state = dict(meta.get("bank", {}))
        for key, value in arrays.items():
            if key.startswith("bank."):
                bank_state[key[len("bank."):]] = value
        session.estimator.load_state_dict(
            {
                "events_seen": meta["estimator"]["events_seen"],
                "bank": bank_state,
            }
        )
        log_state = dict(meta["message_log"])
        log_state["per_site"] = arrays["log.per_site"]
        try:
            session.message_log.load_state_dict(log_state)
        except ValueError as exc:
            raise SessionError(
                f"corrupt snapshot message log at {bundle}: {exc}"
            ) from exc
        session.partitioner.load_state_dict(meta["partitioner"])
        session.restored_extra = meta.get("extra")
        return session

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MonitoringSession({self.spec.algorithm!r}, "
            f"network={self.network.name!r}, events={self.events_seen}, "
            f"messages={self.total_messages})"
        )
