"""Registries wiring algorithm names and counter backends to factories.

The public build layer (:class:`~repro.api.spec.EstimatorSpec`) resolves
its ``algorithm`` and ``counter_backend`` fields against two registries
instead of hard-coded if/elif chains, so downstream code can plug in new
allocation strategies or counter protocols without touching the core:

- an **algorithm** entry names an error-budget allocator (Sec. IV-C/D/E,
  Sec. V of the paper) — or, for ``"exact"``-style algorithms, no
  allocator at all plus a forced counter backend;
- a **counter backend** entry names a factory building a
  :class:`~repro.counters.base.CounterBank` from the expanded per-counter
  error budget.

The paper's four algorithms (EXACTMLE, BASELINE, UNIFORM, NONUNIFORM),
the Sec. V naive-Bayes specialization, and the exact / deterministic /
HYZ banks are pre-registered at import time; ``register_algorithm`` and
``register_counter_backend`` accept user entries under fresh names (pass
``overwrite=True`` to replace an existing one).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.allocation import (
    Allocation,
    baseline_allocation,
    naive_bayes_allocation,
    nonuniform_allocation,
    uniform_allocation,
)
from repro.counters.base import CounterBank
from repro.counters.deterministic import (
    DETERMINISTIC_ENGINES,
    DeterministicCounterBank,
)
from repro.counters.exact import ExactCounterBank
from repro.counters.hyz import ENGINES, HYZCounterBank
from repro.errors import AllocationError, CounterError


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered algorithm: how it splits the error budget.

    Attributes
    ----------
    name:
        Registry key (normalized lowercase).
    allocator:
        ``(network, eps) -> Allocation`` computing per-variable error
        parameters, or ``None`` for exact-counting algorithms that use no
        budget at all.
    counter_backend:
        When set, the backend this algorithm forces regardless of the
        spec's ``counter_backend`` field (``"exact"`` for EXACTMLE).
    description:
        One-line summary shown by :func:`algorithm_names` consumers.
    """

    name: str
    allocator: Callable[..., Allocation] | None = None
    counter_backend: str | None = None
    description: str = ""


@dataclass(frozen=True)
class CounterBackendEntry:
    """One registered counter backend: how counters talk to the coordinator.

    Attributes
    ----------
    name:
        Registry key (normalized lowercase).
    factory:
        ``(n_counters, n_sites, *, eps_per_counter, rng, message_log,
        options) -> CounterBank``.  ``eps_per_counter`` is the expanded
        per-counter budget (``None`` for exact algorithms), ``rng`` a
        ready :class:`numpy.random.Generator`, and ``options`` a plain
        dict of backend-specific settings (e.g. ``{"engine": ...}`` for
        the HYZ bank).
    randomized:
        Whether the backend consumes the ``rng`` (drives which snapshot
        state is expected).
    needs_eps:
        Whether the backend requires a per-counter error budget; building
        it from an exact (no-allocation) algorithm raises otherwise.
    options:
        Recognized option keys, for validation and documentation.
    description:
        One-line summary.
    """

    name: str
    factory: Callable[..., CounterBank]
    randomized: bool = True
    needs_eps: bool = True
    options: tuple[str, ...] = ()
    description: str = ""


_ALGORITHMS: dict[str, AlgorithmEntry] = {}
_COUNTER_BACKENDS: dict[str, CounterBackendEntry] = {}


def _normalize(name: str) -> str:
    return str(name).strip().lower()


def register_algorithm(
    name: str,
    allocator: Callable[..., Allocation] | None = None,
    *,
    counter_backend: str | None = None,
    description: str = "",
    overwrite: bool = False,
) -> AlgorithmEntry:
    """Register an algorithm under ``name`` and return its entry.

    ``allocator`` is ``(network, eps) -> Allocation``; pass ``None`` for
    exact-counting algorithms (then ``counter_backend`` should name a
    backend with ``needs_eps=False``).
    """
    key = _normalize(name)
    if not key:
        raise AllocationError("algorithm name must be non-empty")
    if key in _ALGORITHMS and not overwrite:
        raise AllocationError(
            f"algorithm {key!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    entry = AlgorithmEntry(
        name=key,
        allocator=allocator,
        counter_backend=(
            _normalize(counter_backend) if counter_backend else None
        ),
        description=description,
    )
    _ALGORITHMS[key] = entry
    return entry


def register_counter_backend(
    name: str,
    factory: Callable[..., CounterBank],
    *,
    randomized: bool = True,
    needs_eps: bool = True,
    options: tuple[str, ...] = (),
    description: str = "",
    overwrite: bool = False,
) -> CounterBackendEntry:
    """Register a counter backend under ``name`` and return its entry."""
    key = _normalize(name)
    if not key:
        raise CounterError("counter backend name must be non-empty")
    if key in _COUNTER_BACKENDS and not overwrite:
        raise CounterError(
            f"counter backend {key!r} is already registered; pass "
            "overwrite=True to replace it"
        )
    entry = CounterBackendEntry(
        name=key,
        factory=factory,
        randomized=randomized,
        needs_eps=needs_eps,
        options=tuple(options),
        description=description,
    )
    _COUNTER_BACKENDS[key] = entry
    return entry


def get_algorithm(name: str) -> AlgorithmEntry:
    """Look up a registered algorithm (raises :class:`AllocationError`)."""
    key = _normalize(name)
    if key not in _ALGORITHMS:
        raise AllocationError(
            f"unknown algorithm {name!r}; expected one of "
            f"{tuple(sorted(_ALGORITHMS))}"
        )
    return _ALGORITHMS[key]


def get_counter_backend(name: str) -> CounterBackendEntry:
    """Look up a registered backend (raises :class:`CounterError`)."""
    key = _normalize(name)
    if key not in _COUNTER_BACKENDS:
        raise CounterError(
            f"unknown counter backend {name!r}; expected one of "
            f"{tuple(sorted(_COUNTER_BACKENDS))}"
        )
    return _COUNTER_BACKENDS[key]


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names, sorted."""
    return tuple(sorted(_ALGORITHMS))


def counter_backend_names() -> tuple[str, ...]:
    """All registered counter backend names, sorted."""
    return tuple(sorted(_COUNTER_BACKENDS))


# ---------------------------------------------------------------------------
# Built-in entries
# ---------------------------------------------------------------------------

def _exact_bank_factory(n_counters, n_sites, *, eps_per_counter, rng,
                        message_log, options) -> ExactCounterBank:
    return ExactCounterBank(n_counters, n_sites, message_log=message_log)


def _hyz_bank_factory(n_counters, n_sites, *, eps_per_counter, rng,
                      message_log, options) -> HYZCounterBank:
    return HYZCounterBank(
        n_counters,
        n_sites,
        eps_per_counter,
        seed=rng,
        message_log=message_log,
        engine=options.get("engine", "vectorized"),
    )


def _deterministic_bank_factory(n_counters, n_sites, *, eps_per_counter, rng,
                                message_log, options
                                ) -> DeterministicCounterBank:
    return DeterministicCounterBank(
        n_counters,
        n_sites,
        eps_per_counter,
        message_log=message_log,
        engine=options.get("deterministic_engine", "vectorized"),
    )


register_algorithm(
    "exact",
    None,
    counter_backend="exact",
    description="EXACTMLE: exact counters, one message per update (Lemma 5)",
)
register_algorithm(
    "baseline",
    baseline_allocation,
    description="eps/(3n) per-counter budget (Sec. IV-C)",
)
register_algorithm(
    "uniform",
    uniform_allocation,
    description="eps/(16 sqrt(n)) per-counter budget (Sec. IV-D)",
)
register_algorithm(
    "nonuniform",
    nonuniform_allocation,
    description="Lagrange-optimal budget split (Sec. IV-E, Eq. 7-8)",
)
register_algorithm(
    "naive-bayes",
    naive_bayes_allocation,
    description="NONUNIFORM specialized to two-layer trees (Sec. V, Eq. 9)",
)

register_counter_backend(
    "exact",
    _exact_bank_factory,
    randomized=False,
    needs_eps=False,
    description="coordinator holds exact counts; one message per increment",
)
register_counter_backend(
    "hyz",
    _hyz_bank_factory,
    randomized=True,
    needs_eps=True,
    options=("engine",),
    description=(
        "Huang-Yi-Zhang randomized counters (Lemma 4); "
        f"engines: {', '.join(ENGINES)}"
    ),
)
register_counter_backend(
    "deterministic",
    _deterministic_bank_factory,
    randomized=False,
    needs_eps=True,
    options=("deterministic_engine",),
    description=(
        "(1+eps)-threshold counters (Keralapura et al.), ablations; "
        f"engines: {', '.join(DETERMINISTIC_ENGINES)}"
    ),
)
