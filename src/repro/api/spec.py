"""Declarative estimator specifications.

:class:`EstimatorSpec` is the single value object describing *what* to
build: network, algorithm, error budget, site count, seed, counter
backend, and stream partitioning.  It validates eagerly, resolves its
``algorithm`` / ``counter_backend`` fields through the registries of
:mod:`repro.api.registry`, serializes to a JSON-ready dict (the session
snapshot format embeds it), and builds ready-to-run estimators —
:meth:`EstimatorSpec.build` for a bare
:class:`~repro.core.estimator.StreamingMLEEstimator`,
:meth:`EstimatorSpec.session` for a full
:class:`~repro.api.session.MonitoringSession`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.api.registry import (
    get_algorithm,
    get_counter_backend,
)
from repro.bn.io import network_from_dict, network_to_dict
from repro.bn.network import BayesianNetwork
from repro.bn.repository import network_by_name
from repro.core.allocation import Allocation
from repro.core.estimator import StreamingMLEEstimator
from repro.counters.deterministic import DETERMINISTIC_ENGINES
from repro.counters.hyz import ENGINES
from repro.errors import AllocationError, SpecError
from repro.monitoring.channel import MessageLog
from repro.monitoring.stream import PARTITIONERS
from repro.utils.rng import as_generator

#: Version tag embedded in serialized specs.
SPEC_SCHEMA = "repro-estimator-spec-v1"


def _eps_tuple(value, label: str) -> tuple[float, ...] | None:
    if value is None:
        return None
    arr = np.atleast_1d(np.asarray(value, dtype=np.float64))
    if arr.ndim != 1 or arr.size == 0:
        raise SpecError(f"{label} override must be a non-empty 1-D sequence")
    if np.any(arr <= 0) or np.any(arr >= 1):
        raise SpecError(f"{label} override entries must lie in (0, 1)")
    return tuple(float(v) for v in arr)


@dataclass(frozen=True)
class EstimatorSpec:
    """Everything needed to (re)build one streaming estimator.

    Attributes
    ----------
    network:
        A repository name (``"alarm"``, ``"new-alarm"``, ...) or an
        explicit :class:`~repro.bn.network.BayesianNetwork`.  Names keep
        snapshots small and reproducible; explicit networks are embedded
        inline when serialized.
    algorithm:
        A registered algorithm name (see
        :func:`repro.api.registry.algorithm_names`).
    eps:
        Overall approximation budget of Definition 2 (ignored by exact
        algorithms).
    n_sites:
        Number of distributed sites ``k``.
    seed:
        ``int``/``None`` root seed, or an existing
        :class:`numpy.random.Generator` (not serializable — snapshots of
        generator-seeded sessions restore from captured RNG *state*, not
        from the seed).
    counter_backend:
        A registered backend name; ignored when the algorithm forces one
        (``"exact"`` does).
    hyz_engine:
        Span-replay engine for HYZ banks (``"vectorized"`` or
        ``"sequential"``).
    deterministic_engine:
        Threshold-advancement engine for deterministic banks
        (``"vectorized"`` or ``"scalar"``); both are byte-identical, so
        this is a pure performance knob.
    partitioner:
        Site-assignment policy used by sessions when ``ingest`` is called
        without explicit site ids: ``"uniform"``, ``"round-robin"``, or
        ``"zipf"``.
    zipf_exponent:
        Skew of the ``"zipf"`` partitioner.
    joint_eps / parent_eps:
        Optional per-variable allocation overrides (tuples in topological
        variable order) replacing the registered allocator's output for
        the joint / parent counter families.
    """

    network: "str | BayesianNetwork"
    algorithm: str = "nonuniform"
    eps: float = 0.1
    n_sites: int = 10
    seed: "int | np.random.Generator | None" = None
    counter_backend: str = "hyz"
    hyz_engine: str = "vectorized"
    deterministic_engine: str = "vectorized"
    partitioner: str = "uniform"
    zipf_exponent: float = 1.0
    joint_eps: tuple[float, ...] | None = None
    parent_eps: tuple[float, ...] | None = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not isinstance(self.network, (str, BayesianNetwork)):
            raise SpecError(
                "network must be a repository name or a BayesianNetwork, "
                f"got {type(self.network).__name__}"
            )
        object.__setattr__(self, "algorithm", str(self.algorithm).strip().lower())
        object.__setattr__(
            self, "counter_backend", str(self.counter_backend).strip().lower()
        )
        object.__setattr__(
            self, "partitioner",
            str(self.partitioner).strip().lower().replace("_", "-"),
        )
        algorithm = get_algorithm(self.algorithm)       # raises if unknown
        backend = get_counter_backend(
            algorithm.counter_backend or self.counter_backend
        )
        eps = float(self.eps)
        if backend.needs_eps and not 0.0 < eps < 1.0:
            raise SpecError(f"eps must lie in (0, 1), got {self.eps}")
        object.__setattr__(self, "eps", eps)
        n_sites = int(self.n_sites)
        if n_sites <= 0:
            raise SpecError(f"n_sites must be positive, got {self.n_sites}")
        object.__setattr__(self, "n_sites", n_sites)
        if self.seed is not None and not isinstance(
            self.seed, (int, np.integer, np.random.Generator)
        ):
            raise SpecError(
                f"seed must be int, None, or a Generator, got "
                f"{type(self.seed).__name__}"
            )
        if isinstance(self.seed, np.integer):
            object.__setattr__(self, "seed", int(self.seed))
        if self.hyz_engine not in ENGINES:
            raise SpecError(
                f"unknown hyz_engine {self.hyz_engine!r}; expected one of "
                f"{ENGINES}"
            )
        if self.deterministic_engine not in DETERMINISTIC_ENGINES:
            raise SpecError(
                f"unknown deterministic_engine {self.deterministic_engine!r}; "
                f"expected one of {DETERMINISTIC_ENGINES}"
            )
        if self.partitioner not in PARTITIONERS:
            raise SpecError(
                f"unknown partitioner {self.partitioner!r}; expected one of "
                f"{tuple(sorted(PARTITIONERS))}"
            )
        zipf_exponent = float(self.zipf_exponent)
        if zipf_exponent < 0:
            raise SpecError(
                f"zipf_exponent must be >= 0, got {self.zipf_exponent}"
            )
        object.__setattr__(self, "zipf_exponent", zipf_exponent)
        object.__setattr__(
            self, "joint_eps", _eps_tuple(self.joint_eps, "joint_eps")
        )
        object.__setattr__(
            self, "parent_eps", _eps_tuple(self.parent_eps, "parent_eps")
        )
        if algorithm.allocator is None and (
            self.joint_eps is not None or self.parent_eps is not None
        ):
            raise SpecError(
                f"algorithm {self.algorithm!r} uses no error budget; "
                "allocation overrides do not apply"
            )

    # ------------------------------------------------------------------
    @property
    def network_name(self) -> str:
        """Display name of the target network."""
        if isinstance(self.network, BayesianNetwork):
            return self.network.name
        return self.network

    @property
    def resolved_backend(self) -> str:
        """The backend actually used (after any algorithm override)."""
        entry = get_algorithm(self.algorithm)
        return entry.counter_backend or self.counter_backend

    def resolve_network(self) -> BayesianNetwork:
        """The target network as an object (repository lookup for names)."""
        if isinstance(self.network, BayesianNetwork):
            return self.network
        return network_by_name(self.network)

    def replace(self, **changes) -> "EstimatorSpec":
        """A copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    def allocation(self, network: BayesianNetwork | None = None
                   ) -> Allocation | None:
        """The error-budget allocation (``None`` for exact algorithms).

        Applies the per-variable ``joint_eps`` / ``parent_eps`` overrides
        on top of the registered allocator's output.
        """
        entry = get_algorithm(self.algorithm)
        if entry.allocator is None:
            return None
        net = network if network is not None else self.resolve_network()
        allocation = entry.allocator(net, self.eps)
        if self.joint_eps is None and self.parent_eps is None:
            return allocation
        joint = (
            np.asarray(self.joint_eps, dtype=np.float64)
            if self.joint_eps is not None
            else allocation.joint_eps
        )
        parent = (
            np.asarray(self.parent_eps, dtype=np.float64)
            if self.parent_eps is not None
            else allocation.parent_eps
        )
        if joint.shape != allocation.joint_eps.shape or (
            parent.shape != allocation.parent_eps.shape
        ):
            raise AllocationError(
                f"allocation overrides must cover all {net.n_variables} "
                "variables"
            )
        return Allocation(joint, parent, f"{allocation.name}-override")

    def build(
        self,
        *,
        message_log: MessageLog | None = None,
        network: BayesianNetwork | None = None,
        rng: np.random.Generator | None = None,
        encoder: str = "auto",
    ) -> StreamingMLEEstimator:
        """Construct the estimator this spec describes.

        Parameters
        ----------
        message_log:
            Share an existing tally (sessions pass their own); a fresh
            one is created otherwise.
        network:
            Skip the repository lookup when the caller already resolved
            the network (must match the spec).
        rng:
            Override the counter bank's generator (sessions derive it
            from the spec seed together with the partitioner's).
        encoder:
            Batch-encoder override forwarded to
            :class:`~repro.core.estimator.StreamingMLEEstimator`
            (``"auto"``, ``"dense"``, ``"sparse"``, ``"loop"``).  Not a
            spec field: every encoder is byte-identical, so this is a
            per-build performance knob, not part of what is described.
        """
        from repro.core.algorithms import expand_allocation

        net = network if network is not None else self.resolve_network()
        log = message_log if message_log is not None else MessageLog(self.n_sites)
        entry = get_algorithm(self.algorithm)
        backend = get_counter_backend(entry.counter_backend or self.counter_backend)
        if backend.needs_eps:
            if entry.allocator is None:
                raise AllocationError(
                    f"backend {backend.name!r} needs an error budget but "
                    f"algorithm {entry.name!r} allocates none"
                )
            eps_per_counter = expand_allocation(net, self.allocation(net))
        else:
            eps_per_counter = None
        if rng is None and backend.randomized:
            rng = as_generator(self.seed)
        options = {
            "engine": self.hyz_engine,
            "deterministic_engine": self.deterministic_engine,
        }

        def bank_factory(n_counters: int):
            return backend.factory(
                n_counters,
                self.n_sites,
                eps_per_counter=eps_per_counter,
                rng=rng,
                message_log=log,
                options=options,
            )

        return StreamingMLEEstimator(
            net, bank_factory, name=entry.name, encoder=encoder
        )

    def session(self) -> "MonitoringSession":
        """Build a full :class:`~repro.api.session.MonitoringSession`."""
        from repro.api.session import MonitoringSession

        return MonitoringSession(self)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (embedded in session snapshots).

        Generator seeds serialize as ``None`` — a restored session gets
        its RNG *state* from the snapshot, not from the seed.
        """
        network: "str | dict"
        if isinstance(self.network, BayesianNetwork):
            network = {"inline": network_to_dict(self.network)}
        else:
            network = self.network
        seed = self.seed if isinstance(self.seed, (int, type(None))) else None
        return {
            "schema": SPEC_SCHEMA,
            "network": network,
            "algorithm": self.algorithm,
            "eps": self.eps,
            "n_sites": self.n_sites,
            "seed": seed,
            "counter_backend": self.counter_backend,
            "hyz_engine": self.hyz_engine,
            "deterministic_engine": self.deterministic_engine,
            "partitioner": self.partitioner,
            "zipf_exponent": self.zipf_exponent,
            "joint_eps": list(self.joint_eps) if self.joint_eps else None,
            "parent_eps": list(self.parent_eps) if self.parent_eps else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EstimatorSpec":
        """Rebuild a spec serialized by :meth:`to_dict`."""
        schema = payload.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise SpecError(f"unsupported spec schema {schema!r}")
        network = payload["network"]
        if isinstance(network, dict):
            network = network_from_dict(network["inline"])
        return cls(
            network=network,
            algorithm=payload.get("algorithm", "nonuniform"),
            eps=payload.get("eps", 0.1),
            n_sites=payload.get("n_sites", 10),
            seed=payload.get("seed"),
            counter_backend=payload.get("counter_backend", "hyz"),
            hyz_engine=payload.get("hyz_engine", "vectorized"),
            deterministic_engine=payload.get(
                "deterministic_engine", "vectorized"
            ),
            partitioner=payload.get("partitioner", "uniform"),
            zipf_exponent=payload.get("zipf_exponent", 1.0),
            joint_eps=payload.get("joint_eps"),
            parent_eps=payload.get("parent_eps"),
        )
