"""The public build-and-run surface of the reproduction.

Three layers:

- **Registries** (:mod:`repro.api.registry`) — pluggable algorithm and
  counter-backend entries; the paper's algorithms and banks are
  pre-registered, :func:`register_algorithm` /
  :func:`register_counter_backend` add more.
- **Specs** (:mod:`repro.api.spec`) — :class:`EstimatorSpec`, a frozen,
  validated, JSON-serializable description of one estimator.
- **Sessions** (:mod:`repro.api.session`) — :class:`MonitoringSession`,
  the continuous-coordinator lifecycle: incremental ingestion, anytime
  queries, live metrics, and byte-identical snapshot/resume.

Quickstart::

    from repro.api import EstimatorSpec

    session = EstimatorSpec("alarm", "nonuniform", eps=0.1,
                            n_sites=10, seed=0).session()
    session.ingest(events)                  # sites from the partitioner
    session.query(events[0])
    session.snapshot("run.ckpt")            # ... later, anywhere:
    session = MonitoringSession.restore("run.ckpt")
"""

from repro.api.registry import (
    AlgorithmEntry,
    CounterBackendEntry,
    algorithm_names,
    counter_backend_names,
    get_algorithm,
    get_counter_backend,
    register_algorithm,
    register_counter_backend,
)
from repro.api.session import SNAPSHOT_SCHEMA, MonitoringSession
from repro.api.spec import SPEC_SCHEMA, EstimatorSpec

__all__ = [
    "AlgorithmEntry",
    "CounterBackendEntry",
    "EstimatorSpec",
    "MonitoringSession",
    "SNAPSHOT_SCHEMA",
    "SPEC_SCHEMA",
    "algorithm_names",
    "counter_backend_names",
    "get_algorithm",
    "get_counter_backend",
    "register_algorithm",
    "register_counter_backend",
]
