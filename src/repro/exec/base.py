"""Executor protocol, result-cache layer, and the executor registry.

An :class:`Executor` consumes a task graph — for this harness a list of
independent :class:`~repro.exec.task.RunTask` descriptors — and returns
an :class:`ExecutionOutcome` whose ``results`` align one-to-one with the
input tasks.  The determinism contract (``docs/execution.md``) requires
every executor to produce identical results for identical descriptors,
so the *choice* of executor is an operational knob, never an experiment
parameter.

The shared :meth:`Executor.run` driver owns everything resume-related,
identically for all executors:

- finished tasks are cached as ``<resume_dir>/<cache_key>.result.json``
  and loaded instead of re-run;
- unfinished tasks snapshot their sessions under
  ``<resume_dir>/<cache_key>.ckpt`` and resume from the bundle;
- ``stop_after`` interrupts tasks at the first checkpoint past that many
  events, leaving resumable snapshots (the smoke-test "kill").

Subclasses only implement :meth:`Executor._execute`, yielding
``(task_index, RunResult | None)`` pairs in any completion order.

Executors are pluggable through the same registry pattern as the
algorithm/backend registries of :mod:`repro.api.registry`:
:func:`register_executor` adds entries, :func:`make_executor` builds one
from its CLI name plus an options mapping.
"""

from __future__ import annotations

import abc
import json
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ExecutionError
from repro.exec.task import RunTask

if TYPE_CHECKING:  # pragma: no cover - the runtime import lives inside
    # Executor.run: repro.experiments.runner imports this module at
    # module level, so importing results here would close a cycle.
    from repro.experiments.results import RunResult


@dataclass
class ExecutionOutcome:
    """What an executor did with one task graph.

    ``results[i]`` is the :class:`RunResult` of ``tasks[i]`` — or
    ``None`` when that task was interrupted by ``stop_after`` (its cache
    key then appears in ``incomplete``).  ``cached`` counts tasks served
    from ``.result.json`` caches without running.
    """

    results: list = field(default_factory=list)
    incomplete: list = field(default_factory=list)
    cached: int = 0

    @property
    def completed(self) -> list:
        """The finished results, in task order."""
        return [r for r in self.results if r is not None]


class Executor(abc.ABC):
    """Drives a list of :class:`RunTask` descriptors to results."""

    #: Registry/CLI name of the executor.
    name: str = "abstract"

    # ------------------------------------------------------------------
    @staticmethod
    def _result_path(resume_dir, task: RunTask):
        return (
            None if resume_dir is None
            else Path(resume_dir) / f"{task.cache_key}.result.json"
        )

    @staticmethod
    def _snapshot_path(resume_dir, task: RunTask):
        return (
            None if resume_dir is None
            else Path(resume_dir) / f"{task.cache_key}.ckpt"
        )

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Iterable[RunTask],
        *,
        resume_dir=None,
        stop_after: int | None = None,
    ) -> ExecutionOutcome:
        """Execute the graph, honoring the shared resume-cache contract."""
        from repro.experiments.results import RunResult

        tasks = list(tasks)
        keys = [task.cache_key for task in tasks]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ExecutionError(
                f"task graph contains duplicate descriptors: {dupes}"
            )
        if stop_after is not None:
            stop_after = int(stop_after)
            if resume_dir is None:
                raise ExecutionError(
                    "stop_after without resume_dir would discard the partial "
                    "runs; pass a resume_dir to persist their snapshots"
                )
        if resume_dir is not None:
            resume_dir = Path(resume_dir)
            resume_dir.mkdir(parents=True, exist_ok=True)

        results: list = [None] * len(tasks)
        pending: list[int] = []
        cached = 0
        for index, task in enumerate(tasks):
            path = self._result_path(resume_dir, task)
            if path is not None and path.is_file():
                results[index] = RunResult.from_dict(
                    json.loads(path.read_text())
                )
                cached += 1
            else:
                pending.append(index)

        if pending:
            for index, run in self._execute(
                tasks, pending, resume_dir=resume_dir, stop_after=stop_after
            ):
                results[index] = run
                path = self._result_path(resume_dir, tasks[index])
                if run is not None and path is not None:
                    path.write_text(
                        json.dumps(run.to_dict(), sort_keys=True) + "\n"
                    )
        incomplete = [keys[i] for i in pending if results[i] is None]
        return ExecutionOutcome(
            results=results, incomplete=incomplete, cached=cached
        )

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _execute(
        self,
        tasks: Sequence[RunTask],
        pending: Sequence[int],
        *,
        resume_dir,
        stop_after: int | None,
    ) -> Iterator[tuple[int, "RunResult | None"]]:
        """Yield ``(task_index, result)`` for every pending task.

        ``result`` is ``None`` for a task interrupted by ``stop_after``
        (its snapshot bundle stays under ``resume_dir``).  Completion
        order is free; the shared driver re-aligns results to tasks.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExecutorEntry:
    """One registered executor: name, factory, and a one-line summary.

    ``factory`` receives a plain options dict (the CLI's ``--jobs`` /
    ``--segment-events`` values, ``None`` entries already dropped) and
    must reject keys it does not understand.
    """

    name: str
    factory: Callable[[dict], Executor]
    description: str = ""


_EXECUTORS: dict[str, ExecutorEntry] = {}


def register_executor(
    name: str,
    factory: Callable[[dict], Executor],
    *,
    description: str = "",
    overwrite: bool = False,
) -> ExecutorEntry:
    """Register an executor factory under ``name`` and return its entry."""
    key = str(name).strip().lower()
    if not key:
        raise ExecutionError("executor name must be non-empty")
    if key in _EXECUTORS and not overwrite:
        raise ExecutionError(
            f"executor {key!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    entry = ExecutorEntry(name=key, factory=factory, description=description)
    _EXECUTORS[key] = entry
    return entry


def get_executor(name: str) -> ExecutorEntry:
    """Look up a registered executor (raises :class:`ExecutionError`)."""
    key = str(name).strip().lower()
    if key not in _EXECUTORS:
        raise ExecutionError(
            f"unknown executor {name!r}; expected one of "
            f"{tuple(sorted(_EXECUTORS))}"
        )
    return _EXECUTORS[key]


def executor_names() -> tuple[str, ...]:
    """All registered executor names, sorted."""
    return tuple(sorted(_EXECUTORS))


def make_executor(executor, **options) -> Executor:
    """Coerce ``executor`` into a ready instance.

    Accepts an :class:`Executor` instance (returned unchanged; options
    must then all be ``None``) or a registered name, whose factory
    receives the non-``None`` options.
    """
    options = {k: v for k, v in options.items() if v is not None}
    if isinstance(executor, Executor):
        if options:
            raise ExecutionError(
                f"options {tuple(sorted(options))} only apply when naming "
                "an executor; configure the instance directly instead"
            )
        return executor
    return get_executor(executor).factory(options)


def _reject_unknown_options(options: dict, name: str, known=()) -> None:
    unknown = sorted(set(options) - set(known))
    if unknown:
        raise ExecutionError(
            f"executor {name!r} does not understand options {unknown}; "
            f"it accepts {sorted(known) or 'none'}"
        )
