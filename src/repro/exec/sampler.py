"""Sharded forward sampling: stream generation over worker shards.

:class:`ShardedSampler` drives the per-chunk draw of a
:class:`~repro.bn.sampling.ForwardSampler` across a pool of thread or
spawn-safe process workers (the worker patterns of
:mod:`repro.exec.multiprocess`), overlapping the generation of chunk
``c + 1 .. c + shards`` with the consumption of chunk ``c`` — e.g. by
:meth:`~repro.api.session.MonitoringSession.ingest_sampler`, whose
encode/update work then runs concurrently with sampling.

The determinism contract is stronger than the executor layer's: chunk
``c`` of a stream is drawn by a fresh child generator seeded
``SeedSequence(entropy, spawn_key=(namespace, c))`` — a pure function of
the root entropy and the chunk index, never of worker identity,
scheduling order, or shard count.  A stream is therefore byte-identical
across ``mode="serial"``, ``"thread"`` and ``"process"`` and across any
``shards`` value; the test suite pins this.  (Because randomness is
consumed per chunk rather than from one rolling generator, the stream
differs from a plain ``ForwardSampler`` with the same seed — the PR 2
precedent again: per-configuration determinism, statistical identity
across configurations.)

On a single-core host the parallel modes cannot beat ``"serial"`` —
``"thread"`` still overlaps numpy sections that release the GIL, while
``"process"`` adds per-chunk pickling of the drawn arrays; see the
sharding caveats in ``docs/performance.md``.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from collections.abc import Iterator
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.bn.sampling import ForwardSampler, resolve_engine
from repro.errors import StreamError
from repro.exec.multiprocess import START_METHOD
from repro.utils.validation import check_positive_int

#: Execution modes accepted by :class:`ShardedSampler`.
SHARD_MODES = ("serial", "thread", "process")

#: Spawn-key namespace for per-chunk child seeds, keeping chunk streams
#: disjoint from every other spawn-keyed family in the library (the
#: session uses 0x5E55, the runner its own).
_CHUNK_NAMESPACE = 0x5A3D


def _chunk_rng(entropy, chunk_index: int) -> np.random.Generator:
    """The child generator owning chunk ``chunk_index`` of the stream."""
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy, spawn_key=(_CHUNK_NAMESPACE, int(chunk_index))
        )
    )


def _draw_chunk(
    network: BayesianNetwork, entropy, engine: str, chunk_index: int, size: int
) -> np.ndarray:
    """Draw one chunk with a fresh per-chunk sampler (any worker, any mode).

    Building the sampler per chunk costs one pass over the CPD tables —
    negligible against sampling tens of thousands of rows — and makes
    the draw a pure function of ``(network, entropy, engine, index,
    size)``, which is what the cross-mode byte-identity contract needs.
    """
    sampler = ForwardSampler(
        network, seed=_chunk_rng(entropy, chunk_index), engine=engine
    )
    storage = np.empty((network.n_variables, size), dtype=np.int64)
    return sampler.sample_into(storage.T)


#: Per-process worker state for ``mode="process"``: the network is
#: shipped once per worker via the pool initializer instead of being
#: pickled into every task.
_WORKER_ARGS: tuple | None = None


def _init_worker(network, entropy, engine) -> None:
    global _WORKER_ARGS
    _WORKER_ARGS = (network, entropy, engine)


def _draw_chunk_worker(chunk_index: int, size: int) -> np.ndarray:
    network, entropy, engine = _WORKER_ARGS
    return _draw_chunk(network, entropy, engine, chunk_index, size)


class ShardedSampler:
    """A forward sampler whose stream is drawn chunk-parallel by shards.

    Parameters
    ----------
    network:
        The ground-truth network to sample from.
    shards:
        Worker count; defaults to the host CPU count.
    seed:
        Root entropy (int or ``None`` for fresh OS entropy).  Generators
        are *not* accepted: the per-chunk child-seed scheme needs a
        spawnable root, not a rolling stream.
    mode:
        ``"serial"`` (in-line, the reference), ``"thread"``, or
        ``"process"`` (spawn-safe pool).  All three draw byte-identical
        streams; see the module docstring.
    engine:
        Per-chunk :class:`~repro.bn.sampling.ForwardSampler` engine.
    """

    def __init__(
        self,
        network: BayesianNetwork,
        *,
        shards: int | None = None,
        seed=None,
        mode: str = "thread",
        engine: str = "auto",
    ) -> None:
        if mode not in SHARD_MODES:
            raise StreamError(
                f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}"
            )
        if seed is not None and not isinstance(seed, (int, np.integer)):
            raise StreamError(
                "ShardedSampler derives per-chunk child seeds and needs an "
                f"int (or None) root seed, got {type(seed).__name__}"
            )
        self.network = network
        self.mode = mode
        self.engine = resolve_engine(engine)
        self.shards = check_positive_int(
            shards if shards is not None else (os.cpu_count() or 1), "shards"
        )
        self._entropy = np.random.SeedSequence(
            None if seed is None else int(seed)
        ).entropy
        self._next_chunk = 0

    def sample(self, m: int, *, chunk: int = 20_000) -> np.ndarray:
        """Draw ``m`` instances as one ``(m, n)`` array (chunked inside)."""
        return np.concatenate(list(self.sample_stream(m, chunk=chunk)))

    def sample_stream(
        self, m: int, *, chunk: int = 20_000, reuse_buffer: bool = False
    ) -> Iterator[np.ndarray]:
        """Yield ``m`` instances in chunks of at most ``chunk`` rows.

        Accepts the :class:`~repro.bn.sampling.ForwardSampler` streaming
        signature so the session's ``ingest_sampler`` can drive either;
        ``reuse_buffer`` is accepted but moot — every chunk is a fresh
        worker-owned array (yielded batches stay valid across
        iterations).
        """
        m = check_positive_int(m, "m")
        chunk = check_positive_int(chunk, "chunk")
        sizes = []
        remaining = m
        while remaining > 0:
            sizes.append(min(chunk, remaining))
            remaining -= sizes[-1]
        if self.mode == "serial" or self.shards == 1:
            return self._stream_serial(sizes)
        return self._stream_pooled(sizes)

    def _claim(self) -> int:
        index = self._next_chunk
        self._next_chunk += 1
        return index

    def _stream_serial(self, sizes: list[int]) -> Iterator[np.ndarray]:
        for size in sizes:
            yield _draw_chunk(
                self.network, self._entropy, self.engine, self._claim(), size
            )

    def _stream_pooled(self, sizes: list[int]) -> Iterator[np.ndarray]:
        """Draw ahead through a bounded in-flight window, yield in order.

        The window (``shards + 1`` chunks) bounds memory while keeping
        every shard busy; chunk indices are claimed at submission, so a
        snapshot taken mid-stream resumes after the last *submitted*
        chunk (``"serial"`` mode claims lazily and is exact).
        """
        if self.mode == "thread":
            pool = ThreadPoolExecutor(max_workers=self.shards)
            submit = partial(
                pool.submit, _draw_chunk, self.network, self._entropy,
                self.engine,
            )
        else:
            pool = ProcessPoolExecutor(
                max_workers=self.shards,
                mp_context=multiprocessing.get_context(START_METHOD),
                initializer=_init_worker,
                initargs=(self.network, self._entropy, self.engine),
            )
            submit = partial(pool.submit, _draw_chunk_worker)
        try:
            pending: deque = deque()
            queued = iter(sizes)
            for size in queued:
                pending.append(submit(self._claim(), size))
                if len(pending) > self.shards:
                    break
            while pending:
                try:
                    batch = pending.popleft().result()
                except BrokenProcessPool as exc:
                    raise StreamError(
                        "sampler worker process died mid-stream"
                    ) from exc
                for size in queued:
                    pending.append(submit(self._claim(), size))
                    break
                yield batch
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # Snapshot protocol: root entropy plus the next chunk index — enough
    # to continue (or replay) the stream on any host and in any mode.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the sharded stream position."""
        return {
            "kind": "sharded-sampler",
            "engine": self.engine,
            "entropy": int(self._entropy),
            "next_chunk": int(self._next_chunk),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (in place).

        Mode and shard count are deliberately *not* part of the state —
        the stream is byte-identical across them — but the engine must
        match, exactly as for :class:`~repro.bn.sampling.ForwardSampler`.
        """
        if state.get("kind") != "sharded-sampler":
            raise StreamError(
                f"snapshot holds a {state.get('kind')!r} state, cannot "
                "restore into a sharded sampler"
            )
        if state.get("engine") != self.engine:
            raise StreamError(
                f"snapshot holds a {state.get('engine')!r}-engine stream, "
                f"cannot restore into the {self.engine!r} engine"
            )
        self._entropy = int(state["entropy"])
        self._next_chunk = int(state["next_chunk"])
