"""The pluggable execution layer: task descriptors and executors.

Planners (e.g. :meth:`~repro.experiments.runner.ExperimentRunner.plan_grid`)
emit a task graph — a list of frozen, JSON-serializable
:class:`RunTask` descriptors — and an :class:`Executor` drives it:

- :class:`SerialExecutor` — in-process, in task order (the reference);
- :class:`MultiprocessExecutor` — spawn-safe workers, one grid cell
  each, for parallel sweeps on LINK/MUNIN-sized grids;
- :class:`ChunkedExecutor` — one long stream advanced segment-by-segment
  through session snapshot bundles, surviving worker death, for the
  m >~ 1M runs.

:class:`ShardedSampler` reuses the same spawn-safe worker patterns one
layer down: it parallelizes the *stream generation* of a single run
across thread or process shards with per-chunk child RNG streams (the
stream is byte-identical across modes and shard counts).

All three are registered under their CLI names
(:func:`register_executor` / :func:`make_executor` mirror the algorithm
and counter-backend registries of :mod:`repro.api.registry`), all honor
the same ``resume_dir`` caching, and all produce byte-identical results
for the same descriptors — see ``docs/execution.md`` for the contract.
"""

from repro.exec.base import (
    ExecutionOutcome,
    Executor,
    ExecutorEntry,
    executor_names,
    get_executor,
    make_executor,
    register_executor,
)
from repro.exec.chunked import ChunkedExecutor
from repro.exec.multiprocess import MultiprocessExecutor
from repro.exec.sampler import SHARD_MODES, ShardedSampler
from repro.exec.serial import SerialExecutor
from repro.exec.task import TASK_SCHEMA, RunTask

__all__ = [
    "TASK_SCHEMA",
    "SHARD_MODES",
    "RunTask",
    "ExecutionOutcome",
    "Executor",
    "ExecutorEntry",
    "SerialExecutor",
    "MultiprocessExecutor",
    "ChunkedExecutor",
    "ShardedSampler",
    "executor_names",
    "get_executor",
    "make_executor",
    "register_executor",
]
