"""Frozen run-task descriptors: the unit of work of the execution layer.

A :class:`RunTask` pins down *everything* that determines one stream
run's results — network, algorithm, budgets, stream geometry, checkpoint
schedule, seeds, and the harness settings (``eval_events``,
``chunk_size``, ``update_strategy``) that shape the RNG draw layout.  It
is frozen and JSON-serializable like
:class:`~repro.api.spec.EstimatorSpec`, so executors can ship it to
spawn-started worker processes (or to disk) and rebuild the run from
scratch anywhere: two executions of the same descriptor produce
byte-identical results regardless of which process, worker, or segment
schedule performed them.

The :attr:`RunTask.cache_key` is a content hash of the full descriptor.
Resume directories key cached results and snapshot bundles on it, so a
reordered or extended grid can never silently reuse a stale cell — any
parameter change (including ones the old positional keys ignored, like
``update_strategy``) changes the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace

from repro.api.registry import get_algorithm, get_counter_backend
from repro.bn.network import BayesianNetwork
from repro.bn.repository import network_by_name
from repro.counters.hyz import ENGINES
from repro.errors import ExecutionError
from repro.monitoring.stream import PARTITIONERS

#: Version tag embedded in serialized tasks (part of the cache key, so a
#: schema bump invalidates caches instead of misreading them).
TASK_SCHEMA = "repro-run-task-v1"


@dataclass(frozen=True)
class RunTask:
    """One grid cell as a self-contained, relocatable work order.

    Attributes
    ----------
    network:
        A repository name, or an ``{"inline": ...}`` dict in the
        :func:`~repro.bn.io.network_to_dict` format.  Planners serialize
        explicit network objects inline so every executor (including the
        in-process one) trains on the identical round-tripped model.
    checkpoints:
        The *resolved* increasing schedule of event counts; the last
        entry equals ``n_events``.  Snapshots land only on these
        positions, so they bound the chunked executor's segments.
    seed:
        Root seed of the run's stream/eval/session generators; child
        generators are derived via ``numpy`` seed-sequence spawn keys
        (see ``docs/execution.md``), never from worker identity.
    eval_events / chunk_size / update_strategy:
        Harness settings that are part of the determinism contract:
        chunk boundaries fix the sampler's draw layout and the grouping
        strategy fixes the counter update order.
    """

    network: "str | dict"
    algorithm: str
    eps: float = 0.1
    n_sites: int = 10
    n_events: int = 10_000
    checkpoints: tuple[int, ...] = ()
    partitioner: str = "uniform"
    zipf_exponent: float = 1.0
    counter_backend: str = "hyz"
    hyz_engine: str = "vectorized"
    seed: int = 0
    eval_events: int = 2_000
    chunk_size: int = 10_000
    update_strategy: str = "auto"
    #: Session runtime: "inprocess" (the reference channel) or
    #: "distributed" (real site worker processes; conformant by the
    #: contract in docs/distributed.md, so the choice is operational and
    #: — like the executor choice — serialized only when non-default.
    runtime: str = "inprocess"
    #: Worker process count for the distributed runtime (None = auto).
    sites_procs: "int | None" = None
    #: Channel of the distributed runtime: "queue" (in-host
    #: multiprocessing queues) or "tcp" (the repro.net socket wire).
    #: Conformant transports, so — like `runtime` — serialized only when
    #: non-default to keep existing cache keys.
    transport: str = "queue"
    #: TCP-only wire knobs (None = the transport defaults).  Operational
    #: — frames decode identically under any admitted cap — but part of
    #: the descriptor so a run that *failed* on a cap is distinguishable
    #: from one that fit; serialized only when set (cache-key stable).
    max_frame_mb: "float | None" = None
    heartbeat_timeout: "float | None" = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if isinstance(self.network, dict):
            if "inline" not in self.network:
                raise ExecutionError(
                    "an explicit task network must be an {'inline': ...} "
                    "dict in the network_to_dict format"
                )
        elif not (isinstance(self.network, str) and self.network.strip()):
            raise ExecutionError(
                "task network must be a repository name or an inline dict, "
                f"got {type(self.network).__name__}"
            )
        object.__setattr__(self, "algorithm", str(self.algorithm).strip().lower())
        object.__setattr__(
            self, "counter_backend", str(self.counter_backend).strip().lower()
        )
        get_algorithm(self.algorithm)              # raises if unknown
        get_counter_backend(self.counter_backend)  # raises if unknown
        if self.hyz_engine not in ENGINES:
            raise ExecutionError(
                f"unknown hyz_engine {self.hyz_engine!r}; expected one of "
                f"{ENGINES}"
            )
        if self.partitioner not in PARTITIONERS:
            raise ExecutionError(
                f"unknown partitioner {self.partitioner!r}; expected one of "
                f"{tuple(sorted(PARTITIONERS))}"
            )
        object.__setattr__(self, "eps", float(self.eps))
        object.__setattr__(self, "zipf_exponent", float(self.zipf_exponent))
        for field in ("n_sites", "n_events", "eval_events", "chunk_size"):
            value = int(getattr(self, field))
            if value <= 0:
                raise ExecutionError(f"{field} must be positive, got {value}")
            object.__setattr__(self, field, value)
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "update_strategy", str(self.update_strategy))
        object.__setattr__(self, "runtime", str(self.runtime).strip().lower())
        if self.runtime not in ("inprocess", "distributed"):
            raise ExecutionError(
                f"unknown runtime {self.runtime!r}; expected 'inprocess' "
                "or 'distributed'"
            )
        if self.sites_procs is not None:
            procs = int(self.sites_procs)
            if procs <= 0:
                raise ExecutionError(
                    f"sites_procs must be positive, got {procs}"
                )
            object.__setattr__(self, "sites_procs", procs)
        object.__setattr__(self, "transport", str(self.transport).strip().lower())
        if self.transport not in ("queue", "tcp"):
            raise ExecutionError(
                f"unknown transport {self.transport!r}; expected 'queue' "
                "or 'tcp'"
            )
        if self.transport != "queue" and self.runtime != "distributed":
            raise ExecutionError(
                f"transport {self.transport!r} requires runtime="
                "'distributed' (the in-process runtime has no wire)"
            )
        for field in ("max_frame_mb", "heartbeat_timeout"):
            value = getattr(self, field)
            if value is None:
                continue
            value = float(value)
            if value <= 0:
                raise ExecutionError(
                    f"{field} must be positive, got {value}"
                )
            if self.transport != "tcp":
                raise ExecutionError(
                    f"{field} only applies to the tcp transport"
                )
            object.__setattr__(self, field, value)
        schedule = tuple(int(c) for c in self.checkpoints)
        if not schedule or list(schedule) != sorted(set(schedule)):
            raise ExecutionError(
                "checkpoints must be a non-empty strictly increasing schedule"
            )
        if schedule[0] <= 0 or schedule[-1] != self.n_events:
            raise ExecutionError(
                "checkpoints must be positive and end exactly at n_events"
            )
        object.__setattr__(self, "checkpoints", schedule)

    # ------------------------------------------------------------------
    @property
    def network_name(self) -> str:
        """Display name of the task's network."""
        if isinstance(self.network, dict):
            return str(self.network["inline"].get("name", "inline"))
        return self.network

    @property
    def cache_key(self) -> str:
        """Filesystem-safe content hash of the full descriptor.

        A readable slug prefixes a digest of the canonical JSON form;
        *every* field participates, so resume directories shared between
        differently-configured invocations can never alias.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        slug = (
            f"{self.network_name}-{self.algorithm}-eps{self.eps:g}"
            f"-k{self.n_sites}-m{self.n_events}"
        )
        slug = "".join(c if c.isalnum() or c in "._-" else "_" for c in slug)
        return f"{slug}-{digest}"

    def replace(self, **changes) -> "RunTask":
        """A copy of this task with the given fields replaced."""
        return replace(self, **changes)

    def resolve_network(self) -> BayesianNetwork:
        """The task's network as an object (repository lookup for names)."""
        from repro.bn.io import network_from_dict

        if isinstance(self.network, dict):
            return network_from_dict(self.network["inline"])
        return network_by_name(self.network)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation (hashable, shippable to workers)."""
        payload = {
            "schema": TASK_SCHEMA,
            "network": self.network,
            "algorithm": self.algorithm,
            "eps": self.eps,
            "n_sites": self.n_sites,
            "n_events": self.n_events,
            "checkpoints": list(self.checkpoints),
            "partitioner": self.partitioner,
            "zipf_exponent": self.zipf_exponent,
            "counter_backend": self.counter_backend,
            "hyz_engine": self.hyz_engine,
            "seed": self.seed,
            "eval_events": self.eval_events,
            "chunk_size": self.chunk_size,
            "update_strategy": self.update_strategy,
        }
        # The runtime is conformant with the in-process reference, so
        # default-runtime descriptors serialize exactly as before this
        # field existed — existing resume caches keep their keys.
        if self.runtime != "inprocess":
            payload["runtime"] = self.runtime
        if self.sites_procs is not None:
            payload["sites_procs"] = self.sites_procs
        if self.transport != "queue":
            payload["transport"] = self.transport
        if self.max_frame_mb is not None:
            payload["max_frame_mb"] = self.max_frame_mb
        if self.heartbeat_timeout is not None:
            payload["heartbeat_timeout"] = self.heartbeat_timeout
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunTask":
        """Rebuild a task serialized by :meth:`to_dict`."""
        schema = payload.get("schema", TASK_SCHEMA)
        if schema != TASK_SCHEMA:
            raise ExecutionError(f"unsupported task schema {schema!r}")
        return cls(
            network=payload["network"],
            algorithm=payload["algorithm"],
            eps=payload.get("eps", 0.1),
            n_sites=payload.get("n_sites", 10),
            n_events=payload.get("n_events", 10_000),
            checkpoints=tuple(payload.get("checkpoints", ())),
            partitioner=payload.get("partitioner", "uniform"),
            zipf_exponent=payload.get("zipf_exponent", 1.0),
            counter_backend=payload.get("counter_backend", "hyz"),
            hyz_engine=payload.get("hyz_engine", "vectorized"),
            seed=payload.get("seed", 0),
            eval_events=payload.get("eval_events", 2_000),
            chunk_size=payload.get("chunk_size", 10_000),
            update_strategy=payload.get("update_strategy", "auto"),
            runtime=payload.get("runtime", "inprocess"),
            sites_procs=payload.get("sites_procs"),
            transport=payload.get("transport", "queue"),
            max_frame_mb=payload.get("max_frame_mb"),
            heartbeat_timeout=payload.get("heartbeat_timeout"),
        )

    # ------------------------------------------------------------------
    def execute(self, *, snapshot_path=None, stop_after=None):
        """Run this task to completion (or to ``stop_after``) in-process.

        The workhorse behind every executor: it rebuilds a fresh
        :class:`~repro.experiments.runner.ExperimentRunner` purely from
        descriptor fields, so the result depends on nothing but the
        descriptor (and any snapshot bundle already at
        ``snapshot_path``, which by the session resume contract leaves
        results byte-identical to an uninterrupted run).  Returns a
        :class:`~repro.experiments.results.RunResult`, or ``None`` when
        ``stop_after`` interrupted the run with a snapshot on disk.
        """
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(
            eval_events=self.eval_events,
            chunk_size=self.chunk_size,
            seed=self.seed,
            update_strategy=self.update_strategy,
        )
        return runner.run_one(
            self.resolve_network(),
            self.algorithm,
            eps=self.eps,
            n_sites=self.n_sites,
            n_events=self.n_events,
            checkpoints=list(self.checkpoints),
            partitioner=self.partitioner,
            zipf_exponent=self.zipf_exponent,
            counter_backend=self.counter_backend,
            hyz_engine=self.hyz_engine,
            spec_network=self.network if isinstance(self.network, str) else None,
            snapshot_path=snapshot_path,
            stop_after=stop_after,
            runtime=self.runtime,
            sites_procs=self.sites_procs,
            transport=self.transport,
            max_frame_mb=self.max_frame_mb,
            heartbeat_timeout=self.heartbeat_timeout,
        )
