"""The long-stream executor: snapshot-bounded segments, crash-tolerant.

A single m >~ 1M run is too much to lose to one worker death.  The
chunked executor therefore never asks a worker for the whole stream: it
splits each task at its checkpoint schedule into *segments* — worker
``i`` advances the run from the last snapshot bundle to the next
segment boundary (a checkpoint, since snapshots land only there), then
exits.  Every segment runs in a fresh spawn-started process; if one dies
mid-segment, the bundle from the previous boundary is still on disk and
the driver simply re-runs the segment, so the run survives worker death
with at most one segment of rework.  Results stay byte-identical to the
serial executor because segment hand-off *is* the session
snapshot/restore contract of PR 3.

``segment_events`` coarsens the segmentation: a boundary is only taken
once at least that many events have passed since the previous one
(default: every checkpoint is a boundary).  For fine-grained chunking of
a long run, give the task a denser checkpoint schedule.

Multiple tasks interleave up to ``jobs`` concurrent segment processes
(one in-flight segment per task — segments of one stream are inherently
sequential).
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import shutil
import tempfile
from collections import deque
from pathlib import Path

from repro.api.session import MonitoringSession
from repro.errors import ExecutionError, SessionError
from repro.exec.base import Executor, _reject_unknown_options, register_executor
from repro.exec.task import RunTask

#: Start method for segment workers (same rationale as multiprocess.py).
START_METHOD = "spawn"


def _segment_worker(payload: dict) -> None:
    """Segment entry point: advance one run from its bundle to a boundary.

    ``payload["stop_after"]`` is the boundary (an ``int`` checkpoint) or
    ``None`` for the completion segment, which writes the finished
    result to ``payload["result_path"]`` for the driver to collect.

    ``payload["fault_marker"]``, when set, names a path the *first*
    worker to observe it missing creates before dying abruptly — the
    test hook for the crash-recovery path.
    """
    marker = payload.get("fault_marker")
    if marker is not None:
        from repro.dist.transport import create_once

        if create_once(marker):
            os._exit(23)  # abrupt death: no cleanup, no exception
    task = RunTask.from_dict(payload["task"])
    run = task.execute(
        snapshot_path=payload["snapshot"], stop_after=payload["stop_after"]
    )
    if run is not None:
        Path(payload["result_path"]).write_text(
            json.dumps(run.to_dict(), sort_keys=True) + "\n"
        )


class _TaskState:
    """Driver-side progress of one task through its segment plan."""

    __slots__ = ("index", "task", "targets", "complete", "cursor", "retries",
                 "process")

    def __init__(self, index, task, targets, complete) -> None:
        self.index = index
        self.task = task
        #: Successive ``stop_after`` values; a trailing ``None`` means the
        #: last segment runs the task to completion.
        self.targets = targets
        #: Whether the plan ends in completion (False under ``stop_after``).
        self.complete = complete
        self.cursor = 0
        self.retries = 0
        self.process = None


class ChunkedExecutor(Executor):
    """Runs each task as a chain of snapshot-bounded segment processes."""

    name = "chunked"

    def __init__(
        self,
        *,
        segment_events: int | None = None,
        jobs: int | None = None,
        max_retries: int = 2,
    ) -> None:
        if segment_events is not None:
            segment_events = int(segment_events)
            if segment_events <= 0:
                raise ExecutionError(
                    f"segment_events must be positive, got {segment_events}"
                )
        self.segment_events = segment_events
        self.jobs = max(1, int(jobs)) if jobs is not None else 1
        self.max_retries = max(0, int(max_retries))
        #: Test hook threaded into segment payloads (see _segment_worker).
        self._fault_marker = None

    # ------------------------------------------------------------------
    def _segment_plan(self, task: RunTask, stop_after, position: int):
        """``(targets, complete)`` for one task, skipping done segments.

        Boundaries are checkpoints at least ``segment_events`` apart;
        boundaries at or before ``position`` (the existing bundle's
        stream position) are dropped, so resumed invocations do not
        re-run finished segments.
        """
        internal = [c for c in task.checkpoints if c < task.n_events]
        boundaries = []
        last = 0
        for checkpoint in internal:
            if (
                self.segment_events is None
                or checkpoint - last >= self.segment_events
            ):
                boundaries.append(checkpoint)
                last = checkpoint
        stop_checkpoint = None
        if stop_after is not None:
            for checkpoint in internal:
                if checkpoint >= stop_after:
                    stop_checkpoint = checkpoint
                    break
        if stop_checkpoint is None:
            targets = [b for b in boundaries if b > position]
            return [*targets, None], True
        targets = [b for b in boundaries if position < b < stop_checkpoint]
        targets.append(stop_checkpoint)
        return targets, False

    @staticmethod
    def _snapshot_position(path) -> int:
        """Stream position recorded in an existing bundle (0 if none)."""
        try:
            meta = MonitoringSession.peek(path)
        except SessionError:
            return 0
        runner_state = (meta.get("extra") or {}).get("runner") or {}
        return int(runner_state.get("produced", 0))

    # ------------------------------------------------------------------
    def _execute(self, tasks, pending, *, resume_dir, stop_after):
        scratch = None
        if resume_dir is None:
            # Bundles must live somewhere even for one-shot invocations;
            # a private scratch directory still makes every *segment*
            # crash recoverable, it just doesn't outlive this call.
            scratch = tempfile.mkdtemp(prefix="repro-chunked-")
            resume_dir = Path(scratch)
        try:
            yield from self._drive(tasks, pending, resume_dir, stop_after)
        finally:
            for state in getattr(self, "_active", ()):  # pragma: no cover
                if state.process is not None and state.process.is_alive():
                    state.process.terminate()
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)

    def _drive(self, tasks, pending, resume_dir, stop_after):
        from repro.experiments.results import RunResult

        context = multiprocessing.get_context(START_METHOD)
        ready: deque[_TaskState] = deque()
        for index in pending:
            task = tasks[index]
            position = self._snapshot_position(
                self._snapshot_path(resume_dir, task)
            )
            targets, complete = self._segment_plan(task, stop_after, position)
            ready.append(_TaskState(index, task, targets, complete))
        active: list[_TaskState] = []
        self._active = active
        while ready or active:
            while ready and len(active) < self.jobs:
                state = ready.popleft()
                state.process = context.Process(
                    target=_segment_worker,
                    args=(self._payload(state, resume_dir),),
                )
                state.process.start()
                active.append(state)
            finished = self._wait_any(active)
            for state in finished:
                active.remove(state)
                exitcode = state.process.exitcode
                state.process.close()
                state.process = None
                if exitcode != 0:
                    state.retries += 1
                    if state.retries > self.max_retries:
                        raise ExecutionError(
                            f"segment worker for task "
                            f"{state.task.cache_key!r} failed "
                            f"{state.retries} times (last exit code "
                            f"{exitcode}); the last good snapshot remains "
                            f"under {resume_dir}"
                        )
                    ready.append(state)  # re-run from the last bundle
                    continue
                state.retries = 0
                state.cursor += 1
                if state.cursor < len(state.targets):
                    ready.append(state)
                    continue
                result_path = self._result_path(resume_dir, state.task)
                if not state.complete and not result_path.is_file():
                    yield state.index, None  # stopped early, bundle kept
                    continue
                # A stop-bounded plan can still finish: when the stop
                # checkpoint was already behind the bundle, the segment
                # runs through to n_events and writes the result.
                if not result_path.is_file():
                    raise ExecutionError(
                        f"completion segment of task "
                        f"{state.task.cache_key!r} exited cleanly but "
                        f"wrote no result to {result_path}"
                    )
                yield state.index, RunResult.from_dict(
                    json.loads(result_path.read_text())
                )

    def _payload(self, state: _TaskState, resume_dir) -> dict:
        return {
            "task": state.task.to_dict(),
            "snapshot": str(self._snapshot_path(resume_dir, state.task)),
            "stop_after": state.targets[state.cursor],
            "result_path": str(self._result_path(resume_dir, state.task)),
            "fault_marker": self._fault_marker,
        }

    @staticmethod
    def _wait_any(active) -> list[_TaskState]:
        """Block until at least one active segment process exits."""
        sentinels = {state.process.sentinel: state for state in active}
        done = multiprocessing.connection.wait(list(sentinels))
        finished = [sentinels[s] for s in done]
        for state in finished:
            state.process.join()
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedExecutor(segment_events={self.segment_events}, "
            f"jobs={self.jobs}, max_retries={self.max_retries})"
        )


def _chunked_factory(options: dict) -> ChunkedExecutor:
    _reject_unknown_options(
        options, "chunked", known=("segment_events", "jobs", "max_retries")
    )
    return ChunkedExecutor(
        segment_events=options.get("segment_events"),
        jobs=options.get("jobs"),
        max_retries=options.get("max_retries", 2),
    )


register_executor(
    "chunked",
    _chunked_factory,
    description=(
        "advance long streams segment-by-segment through snapshot bundles; "
        "survives worker death"
    ),
)
