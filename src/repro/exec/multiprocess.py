"""The parallel-grid executor: spawn-started workers, one task each.

Workers receive a :class:`~repro.exec.task.RunTask` as a plain dict and
rebuild the whole run — runner, session, stream generators — from the
descriptor, exactly like :meth:`RunTask.execute` in-process.  Because
every generator is derived from descriptor-embedded seeds via ``numpy``
seed-sequence spawn keys (never from worker identity, scheduling order,
or global RNG state), a 4-worker grid is byte-identical to a serial one;
only completion order differs, and the shared driver re-aligns results
to task order.

The ``spawn`` start method is used on every platform: workers import the
library fresh instead of inheriting forked state, which keeps them safe
under threaded parents and identical across OSes.  A worker *crash*
(e.g. OOM kill) aborts the whole grid — per-task progress down to the
last checkpoint survives in ``resume_dir``, and re-invoking the same
grid continues from there; for single long streams that must survive
worker death *within* one invocation, use the chunked executor instead.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os

from repro.errors import ExecutionError
from repro.exec.base import Executor, _reject_unknown_options, register_executor
from repro.exec.task import RunTask

#: Start method used for worker processes (see module docstring).
START_METHOD = "spawn"


def _run_task_worker(payload: dict) -> dict | None:
    """Worker entry point: rebuild the task and run it to completion.

    Returns the result as a plain dict (``RunResult.to_dict``) so only
    JSON-ready types cross the process boundary, or ``None`` when
    ``stop_after`` interrupted the run (snapshot left on disk).
    """
    task = RunTask.from_dict(payload["task"])
    run = task.execute(
        snapshot_path=payload["snapshot"], stop_after=payload["stop_after"]
    )
    return None if run is None else run.to_dict()


class MultiprocessExecutor(Executor):
    """Fans independent tasks out over a spawn-safe process pool."""

    name = "multiprocess"

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, int(jobs))

    def _execute(self, tasks, pending, *, resume_dir, stop_after):
        from repro.experiments.results import RunResult

        context = multiprocessing.get_context(START_METHOD)
        payloads = {
            index: {
                "task": tasks[index].to_dict(),
                "snapshot": (
                    None
                    if resume_dir is None
                    else str(self._snapshot_path(resume_dir, tasks[index]))
                ),
                "stop_after": stop_after,
            }
            for index in pending
        }
        workers = min(self.jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = {
                pool.submit(_run_task_worker, payload): index
                for index, payload in payloads.items()
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                try:
                    payload = future.result()
                except concurrent.futures.process.BrokenProcessPool as exc:
                    # A broken pool poisons every in-flight future, so
                    # the victim task cannot be identified from here.
                    raise ExecutionError(
                        "a worker process died mid-grid; completed tasks "
                        "are cached under the resume directory (re-invoke "
                        "to continue), or use the 'chunked' executor for "
                        "within-run fault tolerance"
                    ) from exc
                yield index, (
                    None if payload is None else RunResult.from_dict(payload)
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiprocessExecutor(jobs={self.jobs})"


def _multiprocess_factory(options: dict) -> MultiprocessExecutor:
    _reject_unknown_options(options, "multiprocess", known=("jobs",))
    return MultiprocessExecutor(jobs=options.get("jobs"))


register_executor(
    "multiprocess",
    _multiprocess_factory,
    description="fan grid cells out over spawn-started worker processes",
)
