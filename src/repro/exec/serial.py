"""The in-process executor: one task after another, no workers.

The reference implementation of the determinism contract — every other
executor must reproduce its output byte-for-byte (wall-clock fields
aside).  It is also the fastest choice for small grids, where process
start-up would dominate.
"""

from __future__ import annotations

from repro.exec.base import Executor, _reject_unknown_options, register_executor


class SerialExecutor(Executor):
    """Runs every pending task in the calling process, in task order."""

    name = "serial"

    def _execute(self, tasks, pending, *, resume_dir, stop_after):
        for index in pending:
            task = tasks[index]
            yield index, task.execute(
                snapshot_path=self._snapshot_path(resume_dir, task),
                stop_after=stop_after,
            )


def _serial_factory(options: dict) -> SerialExecutor:
    _reject_unknown_options(options, "serial")
    return SerialExecutor()


register_executor(
    "serial",
    _serial_factory,
    description="run tasks one by one in the calling process (reference)",
)
