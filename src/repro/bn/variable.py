"""Categorical random variables."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Variable:
    """A categorical random variable.

    Parameters
    ----------
    name:
        Unique variable name within its network.
    cardinality:
        Number of states (``J_i`` in the paper), at least 1.
    states:
        Optional state labels; defaults to ``s0..s{J-1}``.
    """

    name: str
    cardinality: int
    states: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        check_positive_int(self.cardinality, "cardinality")
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if self.states:
            if len(self.states) != self.cardinality:
                raise ValueError(
                    f"variable {self.name!r}: {len(self.states)} state labels "
                    f"for cardinality {self.cardinality}"
                )
            if len(set(self.states)) != len(self.states):
                raise ValueError(f"variable {self.name!r}: duplicate state labels")
        else:
            object.__setattr__(
                self,
                "states",
                tuple(f"s{i}" for i in range(self.cardinality)),
            )

    def state_index(self, state: "str | int") -> int:
        """Resolve a state label or integer index to a validated index."""
        if isinstance(state, str):
            try:
                return self.states.index(state)
            except ValueError:
                raise ValueError(
                    f"variable {self.name!r} has no state {state!r}"
                ) from None
        index = int(state)
        if not 0 <= index < self.cardinality:
            raise ValueError(
                f"state index {index} out of range for variable {self.name!r} "
                f"with cardinality {self.cardinality}"
            )
        return index
