"""Offline structure learning on a data sample.

The paper treats structure as given, noting that "the graph structure can be
learned offline based on a suitable sample of the data" (Sec. III).  This
module provides that offline step: a Chow–Liu tree learner (the optimal
degree-one network, cf. McGregor & Vu [18]) and BIC-scored greedy hill
climbing for general DAGs.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ModelError
from repro.graph.dag import DAG


def _validate_data(data: np.ndarray, cardinalities: Sequence[int]) -> np.ndarray:
    data = np.asarray(data, dtype=np.int64)
    cards = np.asarray(cardinalities, dtype=np.int64)
    if data.ndim != 2:
        raise ModelError(f"data must be 2-D, got shape {data.shape}")
    if data.shape[1] != cards.size:
        raise ModelError(
            f"data has {data.shape[1]} columns but {cards.size} cardinalities given"
        )
    if data.shape[0] == 0:
        raise ModelError("data must contain at least one row")
    if np.any(data < 0) or np.any(data >= cards[None, :]):
        raise ModelError("data contains out-of-range state indices")
    return data


def empirical_mutual_information(
    data: np.ndarray, i: int, j: int, card_i: int, card_j: int
) -> float:
    """Empirical mutual information (nats) between columns ``i`` and ``j``."""
    m = data.shape[0]
    joint = np.bincount(
        data[:, i] * card_j + data[:, j], minlength=card_i * card_j
    ).reshape(card_i, card_j).astype(np.float64)
    joint /= m
    pi = joint.sum(axis=1)
    pj = joint.sum(axis=0)
    mask = joint > 0
    denom = np.outer(pi, pj)
    return float(np.sum(joint[mask] * np.log(joint[mask] / denom[mask])))


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def chow_liu_tree(
    data: np.ndarray,
    cardinalities: Sequence[int],
    *,
    names: Sequence[str] | None = None,
    root: int = 0,
) -> DAG:
    """Learn the maximum-likelihood tree-structured network (Chow–Liu).

    Builds the maximum spanning tree under pairwise empirical mutual
    information (Kruskal with union-find), then orients edges away from
    ``root``.  Disconnected components (zero MI everywhere) become extra
    roots, yielding a forest.
    """
    data = _validate_data(data, cardinalities)
    n = data.shape[1]
    if names is None:
        names = [f"X{i}" for i in range(n)]
    names = [str(x) for x in names]
    if len(names) != n or len(set(names)) != n:
        raise ModelError("names must be unique and match the number of columns")
    if not 0 <= root < n:
        raise ModelError(f"root index {root} out of range")
    cards = [int(c) for c in cardinalities]

    weighted = []
    for i in range(n):
        for j in range(i + 1, n):
            mi = empirical_mutual_information(data, i, j, cards[i], cards[j])
            weighted.append((mi, i, j))
    weighted.sort(key=lambda t: (-t[0], t[1], t[2]))
    uf = _UnionFind(n)
    tree_adj: dict[int, list[int]] = {i: [] for i in range(n)}
    for mi, i, j in weighted:
        if mi <= 0:
            break
        if uf.union(i, j):
            tree_adj[i].append(j)
            tree_adj[j].append(i)

    # Orient away from the root; unreached components get their smallest
    # index as a local root.
    parents: dict[str, list[str]] = {names[i]: [] for i in range(n)}
    visited = [False] * n
    def orient(start: int) -> None:
        stack = [start]
        visited[start] = True
        while stack:
            u = stack.pop()
            for v in tree_adj[u]:
                if not visited[v]:
                    visited[v] = True
                    parents[names[v]] = [names[u]]
                    stack.append(v)
    orient(root)
    for i in range(n):
        if not visited[i]:
            orient(i)
    return DAG(parents)


def family_log_likelihood(
    data: np.ndarray,
    child: int,
    parent_cols: Sequence[int],
    cardinalities: Sequence[int],
) -> float:
    """Maximized log-likelihood of one family ``P[child | parents]``."""
    cards = [int(c) for c in cardinalities]
    m = data.shape[0]
    j = cards[child]
    k = 1
    pidx = np.zeros(m, dtype=np.int64)
    for p in parent_cols:
        pidx = pidx * cards[p] + data[:, p]
        k *= cards[p]
    counts = np.bincount(pidx * j + data[:, child], minlength=j * k).reshape(k, j)
    counts = counts.astype(np.float64)
    row_tot = counts.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_ratio = np.where(counts > 0, np.log(counts / row_tot), 0.0)
    return float(np.sum(counts * log_ratio))


def bic_score(
    data: np.ndarray,
    dag: DAG,
    cardinalities: Sequence[int],
    *,
    names: Sequence[str] | None = None,
) -> float:
    """Bayesian Information Criterion of a DAG on categorical data.

    ``score = LL_max - (log m / 2) * #free_parameters``; higher is better.
    """
    data = _validate_data(data, cardinalities)
    n = data.shape[1]
    if names is None:
        names = [f"X{i}" for i in range(n)]
    index = {str(name): i for i, name in enumerate(names)}
    if set(index) != set(dag.nodes):
        raise ModelError("DAG nodes must match the provided column names")
    m = data.shape[0]
    cards = [int(c) for c in cardinalities]
    total_ll = 0.0
    total_params = 0
    for node in dag.nodes:
        child = index[node]
        parent_cols = [index[p] for p in dag.parents(node)]
        total_ll += family_log_likelihood(data, child, parent_cols, cards)
        k = int(np.prod([cards[p] for p in parent_cols])) if parent_cols else 1
        total_params += (cards[child] - 1) * k
    return total_ll - 0.5 * math.log(m) * total_params


def hill_climb_structure(
    data: np.ndarray,
    cardinalities: Sequence[int],
    *,
    names: Sequence[str] | None = None,
    max_parents: int = 3,
    max_iterations: int = 200,
) -> DAG:
    """Greedy BIC hill climbing over add/delete/reverse edge moves.

    Starts from the empty graph and applies the single move with the best
    positive score delta until no move improves or ``max_iterations`` is hit.
    Family scores are cached, and only the families a move touches are
    rescored, so each iteration is O(n^2) candidate evaluations in the worst
    case but cheap in practice.
    """
    data = _validate_data(data, cardinalities)
    n = data.shape[1]
    if names is None:
        names = [f"X{i}" for i in range(n)]
    names = [str(x) for x in names]
    cards = [int(c) for c in cardinalities]
    m = data.shape[0]
    penalty = 0.5 * math.log(m)

    parents: dict[int, tuple[int, ...]] = {i: () for i in range(n)}

    def family_score(child: int, pars: tuple[int, ...]) -> float:
        k = int(np.prod([cards[p] for p in pars])) if pars else 1
        params = (cards[child] - 1) * k
        return family_log_likelihood(data, child, pars, cards) - penalty * params

    score_cache: dict[tuple[int, tuple[int, ...]], float] = {}

    def cached_family_score(child: int, pars: tuple[int, ...]) -> float:
        key = (child, tuple(sorted(pars)))
        if key not in score_cache:
            score_cache[key] = family_score(child, key[1])
        return score_cache[key]

    def creates_cycle(parent: int, child: int) -> bool:
        # Is `parent` reachable from `child` via current parent sets reversed?
        stack = [child]
        seen = {child}
        while stack:
            u = stack.pop()
            for v in range(n):
                if u in parents[v] and v not in seen:
                    if v == parent:
                        return True
                    seen.add(v)
                    stack.append(v)
        return parent in seen

    for _ in range(max_iterations):
        best_delta = 1e-9
        best_move = None
        for child in range(n):
            current = cached_family_score(child, parents[child])
            pset = set(parents[child])
            # Additions.
            if len(pset) < max_parents:
                for parent in range(n):
                    if parent == child or parent in pset:
                        continue
                    if creates_cycle(parent, child):
                        continue
                    delta = (
                        cached_family_score(child, tuple(pset | {parent})) - current
                    )
                    if delta > best_delta:
                        best_delta, best_move = delta, ("add", parent, child)
            # Deletions.
            for parent in pset:
                delta = (
                    cached_family_score(child, tuple(pset - {parent})) - current
                )
                if delta > best_delta:
                    best_delta, best_move = delta, ("del", parent, child)
            # Reversals.
            for parent in pset:
                if len(parents[parent]) >= max_parents:
                    continue
                # Remove parent->child, add child->parent; check acyclicity
                # on the modified graph.
                parents[child] = tuple(p for p in parents[child] if p != parent)
                cyclic = creates_cycle(child, parent)
                old_parent_score = cached_family_score(parent, parents[parent])
                if not cyclic:
                    delta = (
                        cached_family_score(child, parents[child])
                        + cached_family_score(
                            parent, tuple(set(parents[parent]) | {child})
                        )
                        - current
                        - old_parent_score
                    )
                    if delta > best_delta:
                        best_delta, best_move = delta, ("rev", parent, child)
                parents[child] = tuple(sorted(set(parents[child]) | {parent}))
        if best_move is None:
            break
        op, parent, child = best_move
        if op == "add":
            parents[child] = tuple(sorted(set(parents[child]) | {parent}))
        elif op == "del":
            parents[child] = tuple(p for p in parents[child] if p != parent)
        else:  # reverse
            parents[child] = tuple(p for p in parents[child] if p != parent)
            parents[parent] = tuple(sorted(set(parents[parent]) | {child}))
    return DAG({names[i]: [names[p] for p in parents[i]] for i in range(n)})
