"""Vectorized forward (ancestral) sampling from a Bayesian network.

The paper generates training data by ordering the nodes topologically and
assigning each variable from its CPD given already-sampled parents
(Sec. VI-A, "Training Data").  The sampler below does exactly that, one
variable at a time but vectorized over instances, so streams of millions of
rows are practical in pure numpy.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import StreamError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int


class ForwardSampler:
    """Draws i.i.d. instances from a network's joint distribution.

    Parameters
    ----------
    network:
        The ground-truth network.
    seed:
        Seed or generator; a fixed seed gives a reproducible stream.
    """

    def __init__(self, network: BayesianNetwork, *, seed=None) -> None:
        self.network = network
        self._rng = as_generator(seed)
        # Precompute per-variable sampling state in topological order.
        self._plan = []
        for idx, name in enumerate(network.node_names):
            cpd = network.cpd(name)
            parent_positions = np.array(
                [network.variable_index(p) for p in cpd.parent_names],
                dtype=np.int64,
            )
            self._plan.append((idx, cpd, parent_positions, cpd.cdf()))

    def sample(self, m: int) -> np.ndarray:
        """Draw ``m`` instances; returns ``(m, n)`` int64 state indices.

        Columns follow the network's topological variable order
        (:attr:`BayesianNetwork.node_names`).
        """
        m = check_positive_int(m, "m")
        return self.sample_into(
            np.empty((m, self.network.n_variables), dtype=np.int64)
        )

    def sample_into(self, out: np.ndarray) -> np.ndarray:
        """Fill a preallocated ``(m, n)`` int64 buffer with fresh instances.

        The zero-copy primitive behind :meth:`sample` and the
        ``reuse_buffer`` streaming mode: the caller owns the buffer, so a
        chunked ingest loop touches no allocator between chunks.  Draws
        exactly the values :meth:`sample` would for the same RNG state,
        whatever the buffer's memory order — an F-ordered buffer makes
        every per-variable write a contiguous run *and* gives the sparse
        batch encoder its transposed layout for free (see
        ``docs/performance.md``).  Returns ``out``.
        """
        out = np.asarray(out)
        n = self.network.n_variables
        if out.ndim != 2 or out.shape[1] != n or out.dtype != np.int64:
            raise StreamError(
                f"sample_into needs an int64 buffer of shape (m, {n}), "
                f"got {out.dtype} {out.shape}"
            )
        m = out.shape[0]
        if m == 0:
            return out
        for idx, cpd, parent_positions, cdf in self._plan:
            if parent_positions.size:
                col_index = cpd.parent_index_array(out[:, parent_positions])
            else:
                col_index = np.zeros(m, dtype=np.int64)
            u = self._rng.random(m)
            # cdf has shape (J, K); gather each row's column then invert the
            # CDF with a comparison count (J is small, so this beats
            # searchsorted per row).
            row_cdf = cdf[:, col_index]  # (J, m)
            out[:, idx] = (u[None, :] > row_cdf).sum(axis=0)
        return out

    def sample_stream(
        self, m: int, *, chunk: int = 20_000, reuse_buffer: bool = False
    ) -> Iterator[np.ndarray]:
        """Yield ``m`` instances in chunks of at most ``chunk`` rows.

        Useful for long streams that should not be materialized at once.

        With ``reuse_buffer=True`` every yielded batch is a view into one
        preallocated F-ordered buffer that the next iteration overwrites:
        consume (or copy) each batch before advancing the iterator.  This
        is the fused zero-copy mode used by
        :meth:`~repro.api.session.MonitoringSession.ingest_sampler` —
        per-variable writes land in contiguous runs and the estimator's
        sparse encoder reads the transpose as a free view.
        """
        m = check_positive_int(m, "m")
        chunk = check_positive_int(chunk, "chunk")
        storage = None
        if reuse_buffer:
            # (n, chunk) C-order, viewed transposed: variable rows stay
            # contiguous and short final chunks slice to contiguous
            # prefixes of each row.
            storage = np.empty(
                (self.network.n_variables, min(chunk, m)), dtype=np.int64
            )
        remaining = m
        while remaining > 0:
            size = min(chunk, remaining)
            if storage is None:
                yield self.sample(size)
            else:
                yield self.sample_into(storage[:, :size].T)
            remaining -= size

    def sample_event(
        self, nodes: list[str]
    ) -> Mapping[str, int]:
        """Sample a partial assignment over an ancestrally closed node set.

        Only the closure of ``nodes`` is sampled (in topological order), so
        events over small subsets are cheap even in huge networks.

        Raises
        ------
        StreamError
            If ``nodes`` is empty.
        """
        if not nodes:
            raise StreamError("sample_event requires at least one node")
        closure = self.network.dag.ancestral_closure(nodes)
        ordered = [n for n in self.network.node_names if n in closure]
        values: dict[str, int] = {}
        for name in ordered:
            cpd = self.network.cpd(name)
            parent_states = [values[p] for p in cpd.parent_names]
            column = cpd.values[:, cpd.parent_index(parent_states)]
            values[name] = int(self._rng.choice(cpd.cardinality, p=column))
        return values
