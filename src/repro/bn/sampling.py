"""Vectorized forward (ancestral) sampling from a Bayesian network.

The paper generates training data by ordering the nodes topologically and
assigning each variable from its CPD given already-sampled parents
(Sec. VI-A, "Training Data").  The sampler below does exactly that,
vectorized over instances, through one of two **engines** (the PR 2 RNG
precedent: engines are byte-identical for a fixed engine and seed, and
statistically identical to each other — pinned by chi-squared per-CPD
marginals in the test suite and asserted by ``bench-sampling``):

- ``"cdf"`` (the ``"auto"`` default) — precomputed per-variable CDF
  tables laid out by the parent-configuration stride code of the shared
  stride plan (:meth:`~repro.bn.network.BayesianNetwork.stride_rows`).
  Each topological level draws its uniforms in one block, then each
  variable inverts its CDF for the whole batch with ``(m,)``-shaped
  scratch rows only: a per-state gather-and-count against contiguous
  CDF rows when ``J`` is small (every gather row is L1-resident and no
  pass depends on the previous one), or one ``searchsorted`` over the
  packed table of :meth:`~repro.bn.cpd.TabularCPD.packed_cdf` for
  large-``J`` variables where counting would need too many passes.
- ``"reference"`` — the original per-variable ``(J, m)`` CDF gather +
  comparison-count inversion, kept byte-for-byte as the engine the fast
  path is benchmarked and statistically cross-checked against.

Streams of millions of rows are practical in pure numpy either way; the
``"cdf"`` engine removes the ``O(J * m)`` temporaries and allocator
traffic that made sampling dominate end-to-end ingest wall clock (see
``benchmarks/`` and ``docs/performance.md``).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import StreamError
from repro.utils.rng import as_generator, restore_generator_state
from repro.utils.validation import check_positive_int

#: Engine names accepted by :class:`ForwardSampler`.
SAMPLER_ENGINES = ("auto", "cdf", "reference")

#: Largest child cardinality inverted by the gather-and-count path; above
#: it the ``"cdf"`` engine switches to one packed-table ``searchsorted``
#: per variable.  Counting costs ``J - 1`` contiguous passes against one
#: latency-bound binary search; measured on the paper networks (J up to
#: 21) counting wins throughout, so the crossover only guards synthetic
#: networks with very wide domains.  The rule depends on the network
#: alone, never on the data, so a fixed engine and seed stay
#: byte-identical.
_COUNT_MAX_CARDINALITY = 32


def resolve_engine(engine: str) -> str:
    """Validate an engine name and resolve ``"auto"`` to the default."""
    if engine not in SAMPLER_ENGINES:
        raise StreamError(
            f"unknown sampler engine {engine!r}; expected one of "
            f"{SAMPLER_ENGINES}"
        )
    return "cdf" if engine == "auto" else engine


class ForwardSampler:
    """Draws i.i.d. instances from a network's joint distribution.

    Parameters
    ----------
    network:
        The ground-truth network.
    seed:
        Seed or generator; a fixed seed gives a reproducible stream.
    engine:
        Batch draw engine (:data:`SAMPLER_ENGINES`).  ``"auto"`` resolves
        to ``"cdf"``.  For a fixed engine and seed, ``sample`` /
        ``sample_into`` / ``sample_stream`` produce byte-identical values
        for the same sequence of batch sizes; across engines the streams
        differ but follow the same distribution (the engines consume
        randomness differently).
    """

    def __init__(
        self, network: BayesianNetwork, *, seed=None, engine: str = "auto"
    ) -> None:
        self.network = network
        self._rng = as_generator(seed)
        self.engine = resolve_engine(engine)
        # Per-variable tables over the shared stride plan.  ``state_rows``
        # holds the first J-1 CDF rows, each contiguous over the K parent
        # configurations, for the gather-and-count inversion; ``packed``
        # is the flat searchsorted table — always built, because
        # ``sample_event`` draws through it whatever the batch engine.
        rows = network.stride_rows()
        self._tables = []
        for name, (cardinality, _, parents) in zip(network.node_names, rows):
            cpd = network.cpd(name)
            if 1 < cardinality <= _COUNT_MAX_CARDINALITY:
                cdf = np.minimum(np.cumsum(cpd.values, axis=0), 1.0)
                state_rows = [
                    np.ascontiguousarray(cdf[j])
                    for j in range(cardinality - 1)
                ]
            else:
                state_rows = None
            self._tables.append(
                (cardinality, list(parents), state_rows, cpd.packed_cdf())
            )
        # Topological levels: level(X) = 1 + max(level(parents)), so every
        # variable in a level depends only on earlier levels and the
        # level's uniforms can be drawn in one block.
        level_of: list[int] = []
        by_level: dict[int, list[int]] = {}
        for index, (_, _, parents) in enumerate(rows):
            level = 1 + max((level_of[p] for p, _ in parents), default=-1)
            level_of.append(level)
            by_level.setdefault(level, []).append(index)
        self._levels = [by_level[level] for level in sorted(by_level)]
        self._max_level_width = max(len(level) for level in self._levels)
        if self.engine == "reference":
            # The original per-variable plan, kept byte-for-byte.
            self._plan = []
            for idx, name in enumerate(network.node_names):
                cpd = network.cpd(name)
                parent_positions = np.array(
                    [network.variable_index(p) for p in cpd.parent_names],
                    dtype=np.int64,
                )
                self._plan.append((idx, cpd, parent_positions, cpd.cdf()))
        self._scratch: dict = {}

    def sample(self, m: int) -> np.ndarray:
        """Draw ``m`` instances; returns ``(m, n)`` int64 state indices.

        Columns follow the network's topological variable order
        (:attr:`BayesianNetwork.node_names`).
        """
        m = check_positive_int(m, "m")
        return self.sample_into(
            np.empty((m, self.network.n_variables), dtype=np.int64)
        )

    def sample_into(self, out: np.ndarray) -> np.ndarray:
        """Fill a preallocated ``(m, n)`` int64 buffer with fresh instances.

        The zero-copy primitive behind :meth:`sample` and the
        ``reuse_buffer`` streaming mode: the caller owns the buffer, so a
        chunked ingest loop touches no allocator between chunks.  Draws
        exactly the values :meth:`sample` would for the same RNG state,
        whatever the buffer's memory order — an F-ordered buffer makes
        every per-variable write a contiguous run *and* gives the sparse
        batch encoder its transposed layout for free (see
        ``docs/performance.md``).  Returns ``out``.
        """
        out = np.asarray(out)
        n = self.network.n_variables
        if out.ndim != 2 or out.shape[1] != n or out.dtype != np.int64:
            raise StreamError(
                f"sample_into needs an int64 buffer of shape (m, {n}), "
                f"got {out.dtype} {out.shape}"
            )
        if out.shape[0] == 0:
            return out
        if self.engine == "reference":
            return self._sample_into_reference(out)
        return self._sample_into_cdf(out)

    def _buffer(self, key: str, shape, dtype) -> np.ndarray:
        """A reusable scratch array; reallocated only when ``shape`` moves.

        Chunked ingest feeds same-size batches, so in steady state the
        engine touches no allocator at all (the zero-copy contract of
        ``MonitoringSession.ingest_sampler``).
        """
        buf = self._scratch.get(key)
        if buf is None or buf.shape != shape:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[key] = buf
        return buf

    def _sample_into_cdf(self, out: np.ndarray) -> np.ndarray:
        """The fast engine: per-level uniform blocks, ``(m,)`` scratch only.

        Per variable the mixed-radix parent code ``cfg`` is accumulated
        from the shared stride rows, then the CDF is inverted either by
        gather-and-count over the per-state contiguous rows (each
        ``take`` reads a K-entry L1-resident row) or, for wide domains,
        by one ``searchsorted`` over the packed table with search key
        ``cfg + u`` (see :meth:`~repro.bn.cpd.TabularCPD.packed_cdf`).
        """
        m = out.shape[0]
        cfg = self._buffer("cfg", (m,), np.int64)
        tmp = self._buffer("tmp", (m,), np.int64)
        key = self._buffer("key", (m,), np.float64)
        gathered = self._buffer("gathered", (m,), np.float64)
        below = self._buffer("below", (m,), bool)
        count = self._buffer("count", (m,), np.int64)
        uniforms = self._buffer(
            "uniforms", (self._max_level_width, m), np.float64
        )
        for level in self._levels:
            u_block = uniforms[: len(level)]
            self._rng.random(out=u_block)
            for u, index in zip(u_block, level):
                cardinality, parents, state_rows, packed = self._tables[index]
                column = out[:, index]
                if parents:
                    position, stride = parents[0]
                    np.multiply(out[:, position], stride, out=cfg)
                    for position, stride in parents[1:]:
                        np.multiply(out[:, position], stride, out=tmp)
                        cfg += tmp
                else:
                    cfg[:] = 0
                if cardinality == 1:
                    column[:] = 0
                elif state_rows is not None:
                    np.take(state_rows[0], cfg, out=gathered)
                    np.less(gathered, u, out=below)
                    if cardinality == 2:
                        np.copyto(column, below)
                        continue
                    np.copyto(count, below)
                    for row in state_rows[1:]:
                        np.take(row, cfg, out=gathered)
                        np.less(gathered, u, out=below)
                        count += below
                    np.copyto(column, count)
                else:
                    np.add(cfg, u, out=key)
                    hit = packed.searchsorted(key, side="right")
                    np.multiply(cfg, cardinality, out=cfg)
                    hit -= cfg
                    np.copyto(column, hit)
        return out

    def _sample_into_reference(self, out: np.ndarray) -> np.ndarray:
        """The original engine, byte-for-byte: ``(J, m)`` gather + count."""
        m = out.shape[0]
        for idx, cpd, parent_positions, cdf in self._plan:
            if parent_positions.size:
                col_index = cpd.parent_index_array(out[:, parent_positions])
            else:
                col_index = np.zeros(m, dtype=np.int64)
            u = self._rng.random(m)
            # cdf has shape (J, K); gather each row's column then invert the
            # CDF with a comparison count.
            row_cdf = cdf[:, col_index]  # (J, m)
            out[:, idx] = (u[None, :] > row_cdf).sum(axis=0)
        return out

    def sample_stream(
        self, m: int, *, chunk: int = 20_000, reuse_buffer: bool = False
    ) -> Iterator[np.ndarray]:
        """Yield ``m`` instances in chunks of at most ``chunk`` rows.

        Useful for long streams that should not be materialized at once.

        With ``reuse_buffer=True`` every yielded batch is a view into one
        preallocated F-ordered buffer that the next iteration overwrites:
        consume (or copy) each batch before advancing the iterator.  This
        is the fused zero-copy mode used by
        :meth:`~repro.api.session.MonitoringSession.ingest_sampler` —
        per-variable writes land in contiguous runs and the estimator's
        sparse encoder reads the transpose as a free view.
        """
        m = check_positive_int(m, "m")
        chunk = check_positive_int(chunk, "chunk")
        storage = None
        if reuse_buffer:
            # (n, chunk) C-order, viewed transposed: variable rows stay
            # contiguous and short final chunks slice to contiguous
            # prefixes of each row.
            storage = np.empty(
                (self.network.n_variables, min(chunk, m)), dtype=np.int64
            )
        remaining = m
        while remaining > 0:
            size = min(chunk, remaining)
            if storage is None:
                yield self.sample(size)
            else:
                yield self.sample_into(storage[:, :size].T)
            remaining -= size

    def sample_event(
        self, nodes: list[str]
    ) -> Mapping[str, int]:
        """Sample a partial assignment over an ancestrally closed node set.

        Only the closure of ``nodes`` is sampled (in topological order), so
        events over small subsets are cheap even in huge networks.  Draws
        one uniform per node and inverts through the packed CDF table —
        the stream is deterministic for a fixed seed and independent of
        the batch engine.

        Raises
        ------
        StreamError
            If ``nodes`` is empty.
        """
        if not nodes:
            raise StreamError("sample_event requires at least one node")
        closure = self.network.dag.ancestral_closure(nodes)
        values: dict[str, int] = {}
        for name in self.network.node_names:
            if name not in closure:
                continue
            index = self.network.variable_index(name)
            cardinality, parents, _, packed = self._tables[index]
            cpd = self.network.cpd(name)
            cfg = 0
            for (_, stride), parent in zip(parents, cpd.parent_names):
                cfg += values[parent] * stride
            hit = int(
                packed.searchsorted(cfg + self._rng.random(), side="right")
            )
            values[name] = hit - cfg * cardinality
        return values

    # ------------------------------------------------------------------
    # Snapshot protocol: the RNG stream position, so a monitored session
    # can checkpoint mid-stream and resume byte-identically.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the sampler's stream position."""
        return {
            "kind": "forward-sampler",
            "engine": self.engine,
            "rng_state": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (in place).

        The snapshot's engine must match: engines consume randomness
        differently, so restoring a stream into the other engine would
        silently fork it.
        """
        if state.get("kind") != "forward-sampler":
            raise StreamError(
                f"snapshot holds a {state.get('kind')!r} state, cannot "
                "restore into a forward sampler"
            )
        if state.get("engine") != self.engine:
            raise StreamError(
                f"snapshot holds a {state.get('engine')!r}-engine stream, "
                f"cannot restore into the {self.engine!r} engine (engines "
                "consume randomness differently)"
            )
        try:
            self._rng = restore_generator_state(self._rng, state["rng_state"])
        except ValueError as exc:
            raise StreamError(str(exc)) from exc
