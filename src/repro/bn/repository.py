"""The networks used in the paper's evaluation (Table I).

ALARM is hand-coded with its published 37-node / 46-edge structure and the
canonical domain sizes; with those, the free-parameter count
``sum_i (J_i - 1) K_i`` is exactly the 509 reported in Table I.  Because the
bnlearn repository's probability tables are not available offline, every
network's CPD entries are seeded random Dirichlet draws with a probability
floor (see DESIGN.md substitution 2) — the communication behaviour depends
only on (n, J_i, K_i), which are faithful.

HEPAR II, LINK, and MUNIN are *size-matched synthetic stand-ins*: random
DAGs with exactly the paper's node and edge counts and domain-size
distributions mimicking the originals.
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import ModelError
from repro.graph.dag import DAG
from repro.graph.generators import random_dag
from repro.utils.rng import RandomSource, as_generator

# ---------------------------------------------------------------------------
# ALARM (Beinlich et al. 1989) — real structure, hand-coded.
# ---------------------------------------------------------------------------

ALARM_CARDINALITIES: dict[str, int] = {
    "HISTORY": 2, "CVP": 3, "PCWP": 3, "HYPOVOLEMIA": 2, "LVEDVOLUME": 3,
    "LVFAILURE": 2, "STROKEVOLUME": 3, "ERRLOWOUTPUT": 2, "HRBP": 3,
    "HREKG": 3, "ERRCAUTER": 2, "HRSAT": 3, "INSUFFANESTH": 2,
    "ANAPHYLAXIS": 2, "TPR": 3, "EXPCO2": 4, "KINKEDTUBE": 2, "MINVOL": 4,
    "FIO2": 2, "PVSAT": 3, "SAO2": 3, "PAP": 3, "PULMEMBOLUS": 2,
    "SHUNT": 2, "INTUBATION": 3, "PRESS": 4, "DISCONNECT": 2,
    "MINVOLSET": 3, "VENTMACH": 4, "VENTTUBE": 4, "VENTLUNG": 4,
    "VENTALV": 4, "ARTCO2": 3, "CATECHOL": 2, "HR": 3, "CO": 3, "BP": 3,
}

ALARM_PARENTS: dict[str, tuple[str, ...]] = {
    "HYPOVOLEMIA": (), "LVFAILURE": (), "ERRLOWOUTPUT": (), "ERRCAUTER": (),
    "ANAPHYLAXIS": (), "INSUFFANESTH": (), "PULMEMBOLUS": (),
    "INTUBATION": (), "KINKEDTUBE": (), "DISCONNECT": (), "MINVOLSET": (),
    "FIO2": (),
    "HISTORY": ("LVFAILURE",),
    "LVEDVOLUME": ("HYPOVOLEMIA", "LVFAILURE"),
    "STROKEVOLUME": ("HYPOVOLEMIA", "LVFAILURE"),
    "CVP": ("LVEDVOLUME",),
    "PCWP": ("LVEDVOLUME",),
    "CO": ("STROKEVOLUME", "HR"),
    "HRBP": ("ERRLOWOUTPUT", "HR"),
    "HREKG": ("HR", "ERRCAUTER"),
    "HRSAT": ("HR", "ERRCAUTER"),
    "TPR": ("ANAPHYLAXIS",),
    "BP": ("TPR", "CO"),
    "CATECHOL": ("TPR", "ARTCO2", "SAO2", "INSUFFANESTH"),
    "HR": ("CATECHOL",),
    "PAP": ("PULMEMBOLUS",),
    "SHUNT": ("PULMEMBOLUS", "INTUBATION"),
    "SAO2": ("SHUNT", "PVSAT"),
    "PVSAT": ("VENTALV", "FIO2"),
    "ARTCO2": ("VENTALV",),
    "EXPCO2": ("ARTCO2", "VENTLUNG"),
    "MINVOL": ("INTUBATION", "VENTLUNG"),
    "VENTLUNG": ("INTUBATION", "KINKEDTUBE", "VENTTUBE"),
    "VENTALV": ("INTUBATION", "VENTLUNG"),
    "PRESS": ("INTUBATION", "KINKEDTUBE", "VENTTUBE"),
    "VENTTUBE": ("DISCONNECT", "VENTMACH"),
    "VENTMACH": ("MINVOLSET",),
}


def alarm(*, seed: int = 1988, min_probability: float = 0.02) -> BayesianNetwork:
    """The ALARM monitoring network (37 nodes, 46 edges, 509 parameters)."""
    dag = DAG(ALARM_PARENTS)
    return BayesianNetwork.with_random_cpds(
        dag,
        ALARM_CARDINALITIES,
        seed=seed,
        min_probability=min_probability,
        name="alarm",
    )


def new_alarm(
    *,
    inflated_count: int = 6,
    inflated_cardinality: int = 20,
    seed: int = 2018,
    min_probability: float = 0.005,
) -> BayesianNetwork:
    """NEW-ALARM: ALARM's structure with inflated domains (Sec. VI).

    The paper keeps the graph and raises 6 randomly chosen variables'
    domain sizes to 20 to separate UNIFORM from NONUNIFORM.
    """
    if inflated_count < 0 or inflated_count > len(ALARM_CARDINALITIES):
        raise ModelError(
            f"inflated_count must be in [0, {len(ALARM_CARDINALITIES)}]"
        )
    rng = as_generator(seed)
    dag = DAG(ALARM_PARENTS)
    cards = dict(ALARM_CARDINALITIES)
    chosen = rng.choice(sorted(cards), size=inflated_count, replace=False)
    for name in chosen:
        cards[str(name)] = int(inflated_cardinality)
    return BayesianNetwork.with_random_cpds(
        dag, cards, seed=rng, min_probability=min_probability, name="new-alarm"
    )


def separation_tree(
    *,
    n_variables: int = 20,
    j_large: int = 50,
    seed: int = 45,
    min_probability: float = 0.002,
) -> BayesianNetwork:
    """The Sec. IV-E separation example as a concrete network.

    A depth-1 tree of ``n_variables`` binary variables whose first leaf
    has ``j_large`` states: UNIFORM's message size-term is
    ``n^{1.5} J^2`` while NONUNIFORM's is ``(n + J^{2/3})^{1.5}`` (see
    ``repro.core.theory.separation_example``), the example the paper
    uses to show the Lagrange split's advantage.  Used by the
    ``separation`` experiment preset.
    """
    if n_variables < 2:
        raise ModelError("the separation tree needs at least 2 variables")
    if j_large < 2:
        raise ModelError("j_large must be at least 2")
    parents: dict[str, list[str]] = {"X0": []}
    cards = {"X0": 2}
    for i in range(1, n_variables):
        parents[f"X{i}"] = ["X0"]
        cards[f"X{i}"] = 2
    cards["X1"] = int(j_large)
    return BayesianNetwork.with_random_cpds(
        DAG(parents),
        cards,
        seed=seed,
        min_probability=min_probability,
        name=f"separation-tree-{n_variables}-{j_large}",
    )


def naive_bayes_network(
    *,
    n_features: int = 12,
    class_cardinality: int = 3,
    feature_cardinality: int = 4,
    seed: int = 1205,
    min_probability: float = 0.02,
) -> BayesianNetwork:
    """A two-layer Naive Bayes network (the Sec. V workload).

    Class variable ``C`` with ``class_cardinality`` states points at
    ``n_features`` feature variables of ``feature_cardinality`` states
    each; CPD entries are seeded Dirichlet draws with a probability
    floor, like every repository network.  Used by the ``classify``
    experiment (Definition 4 / Theorem 3).
    """
    from repro.graph.generators import naive_bayes_dag

    dag = naive_bayes_dag(n_features)
    cards = {"C": int(class_cardinality)}
    for node in dag.nodes:
        if node != "C":
            cards[node] = int(feature_cardinality)
    return BayesianNetwork.with_random_cpds(
        dag,
        cards,
        seed=seed,
        min_probability=min_probability,
        name=f"naive-bayes-{n_features}",
    )


# ---------------------------------------------------------------------------
# Size-matched synthetic stand-ins (HEPAR II, LINK, MUNIN).
# ---------------------------------------------------------------------------

def _synthetic_network(
    name: str,
    n_nodes: int,
    n_edges: int,
    *,
    cardinality_choices: list[int],
    cardinality_weights: list[float],
    max_parents: int,
    seed: int,
    min_probability: float,
) -> BayesianNetwork:
    source = RandomSource(seed)
    dag = random_dag(
        n_nodes,
        n_edges,
        max_parents=max_parents,
        seed=source.generator(),
        prefix=f"{name[:1].upper()}",
    )
    rng = source.generator()
    cards = {
        node: int(rng.choice(cardinality_choices, p=cardinality_weights))
        for node in dag.nodes
    }
    return BayesianNetwork.with_random_cpds(
        dag,
        cards,
        seed=source.generator(),
        min_probability=min_probability,
        name=name,
    )


def hepar2_like(*, seed: int = 70123) -> BayesianNetwork:
    """HEPAR II stand-in: 70 nodes, 123 edges, mostly small domains."""
    return _synthetic_network(
        "hepar2",
        70,
        123,
        cardinality_choices=[2, 3, 4],
        cardinality_weights=[0.455, 0.33, 0.215],
        max_parents=4,
        seed=seed,
        min_probability=0.02,
    )


def link_like(*, seed: int = 7241125) -> BayesianNetwork:
    """LINK stand-in: 724 nodes, 1125 edges, domains of size 2-4."""
    return _synthetic_network(
        "link",
        724,
        1125,
        cardinality_choices=[2, 3, 4],
        cardinality_weights=[0.29, 0.40, 0.31],
        max_parents=3,
        seed=seed,
        min_probability=0.02,
    )


def munin_like(*, seed: int = 10411397) -> BayesianNetwork:
    """MUNIN stand-in: 1041 nodes, 1397 edges, occasional large domains.

    The real MUNIN has domain sizes up to 21, which drives its 80K+
    parameter count; the stand-in mixes in large domains to match that
    character.
    """
    return _synthetic_network(
        "munin",
        1041,
        1397,
        cardinality_choices=[2, 3, 4, 5, 7, 10, 21],
        cardinality_weights=[0.29, 0.24, 0.18, 0.12, 0.085, 0.045, 0.04],
        max_parents=3,
        seed=seed,
        min_probability=0.002,
    )


def link_family(
    node_counts: list[int] | None = None, *, seed: int = 7241125
) -> list[BayesianNetwork]:
    """The Fig. 9 network family: LINK with sinks iteratively removed.

    The paper starts from LINK (724 nodes) and strips sink nodes one at a
    time to produce networks with {24, 124, ..., 724} variables.  Removing
    sinks keeps the remaining variable set ancestrally closed, so the
    sub-networks inherit their CPDs unchanged.
    """
    if node_counts is None:
        node_counts = [24, 124, 224, 324, 424, 524, 624, 724]
    full = link_like(seed=seed)
    total = full.n_variables
    family = []
    for target in node_counts:
        if not 1 <= target <= total:
            raise ModelError(f"node count {target} out of range [1, {total}]")
        stripped = full.dag.strip_sinks(total - target)
        sub = full.subnetwork(list(stripped.nodes), name=f"link-{target}")
        family.append(sub)
    return family


_REGISTRY = {
    "alarm": alarm,
    "new-alarm": new_alarm,
    "hepar2": hepar2_like,
    "link": link_like,
    "munin": munin_like,
    "naive-bayes": naive_bayes_network,
    "separation-tree": separation_tree,
}


def network_by_name(name: str, **kwargs) -> BayesianNetwork:
    """Look up one of the evaluation networks by its Table I name."""
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    aliases = {"hepar-ii": "hepar2", "hepar-2": "hepar2", "heparii": "hepar2",
               "newalarm": "new-alarm"}
    key = aliases.get(key, key)
    if key not in _REGISTRY:
        raise ModelError(
            f"unknown network {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)
