"""Categorical Bayesian networks: model, sampling, inference, repository."""

from repro.bn.cpd import TabularCPD, random_cpd
from repro.bn.inference import VariableElimination
from repro.bn.network import BayesianNetwork
from repro.bn.repository import (
    alarm,
    hepar2_like,
    link_family,
    link_like,
    munin_like,
    naive_bayes_network,
    network_by_name,
    new_alarm,
)
from repro.bn.sampling import ForwardSampler
from repro.bn.structure import bic_score, chow_liu_tree, hill_climb_structure
from repro.bn.variable import Variable

__all__ = [
    "Variable",
    "TabularCPD",
    "random_cpd",
    "BayesianNetwork",
    "ForwardSampler",
    "VariableElimination",
    "chow_liu_tree",
    "hill_climb_structure",
    "bic_score",
    "alarm",
    "new_alarm",
    "hepar2_like",
    "link_like",
    "link_family",
    "munin_like",
    "naive_bayes_network",
    "network_by_name",
]
