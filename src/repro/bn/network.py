"""The Bayesian network model: structure + CPDs + joint factorization."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.bn.cpd import TabularCPD, random_cpd
from repro.bn.variable import Variable
from repro.errors import InconsistentNetworkError, QueryError
from repro.graph.dag import DAG
from repro.utils.rng import as_generator


class BayesianNetwork:
    """A categorical Bayesian network ``G = (X, E)`` with tabular CPDs.

    The joint distribution factorizes as
    ``P[X] = prod_i P[X_i | par(X_i)]`` (Eq. 1 of the paper).

    Parameters
    ----------
    dag:
        Structure; node names must match variable names exactly.
    variables:
        The categorical variables.
    cpds:
        One :class:`TabularCPD` per variable, whose parents (names, order,
        and cardinalities) must agree with the DAG and variable set.

    Raises
    ------
    InconsistentNetworkError
        If structure, variables, and CPDs disagree in any way.
    """

    def __init__(
        self,
        dag: DAG,
        variables: Iterable[Variable],
        cpds: Iterable[TabularCPD],
        *,
        name: str = "network",
    ) -> None:
        self.name = str(name)
        self.dag = dag
        self._variables: dict[str, Variable] = {}
        for var in variables:
            if var.name in self._variables:
                raise InconsistentNetworkError(f"duplicate variable {var.name!r}")
            self._variables[var.name] = var
        if set(self._variables) != set(dag.nodes):
            missing = set(dag.nodes) - set(self._variables)
            extra = set(self._variables) - set(dag.nodes)
            raise InconsistentNetworkError(
                f"variables and DAG nodes differ (missing={sorted(missing)[:5]}, "
                f"extra={sorted(extra)[:5]})"
            )
        self._cpds: dict[str, TabularCPD] = {}
        for cpd in cpds:
            if cpd.variable in self._cpds:
                raise InconsistentNetworkError(f"duplicate CPD for {cpd.variable!r}")
            self._cpds[cpd.variable] = cpd
        if set(self._cpds) != set(self._variables):
            missing = set(self._variables) - set(self._cpds)
            raise InconsistentNetworkError(
                f"missing CPDs for variables {sorted(missing)[:5]}"
            )
        for name_, cpd in self._cpds.items():
            var = self._variables[name_]
            if cpd.cardinality != var.cardinality:
                raise InconsistentNetworkError(
                    f"CPD for {name_!r} has cardinality {cpd.cardinality}, "
                    f"variable has {var.cardinality}"
                )
            if cpd.parent_names != dag.parents(name_):
                raise InconsistentNetworkError(
                    f"CPD for {name_!r} lists parents {cpd.parent_names}, "
                    f"DAG says {dag.parents(name_)}"
                )
            expected_cards = tuple(
                self._variables[p].cardinality for p in cpd.parent_names
            )
            if cpd.parent_cards != expected_cards:
                raise InconsistentNetworkError(
                    f"CPD for {name_!r} parent cardinalities {cpd.parent_cards} "
                    f"!= variable cardinalities {expected_cards}"
                )
        # Cache index structures aligned to topological order.
        self._order = dag.topological_order()
        self._index = {n: i for i, n in enumerate(self._order)}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> tuple[str, ...]:
        """Variable names in topological order."""
        return self._order

    @property
    def n_variables(self) -> int:
        return len(self._order)

    @property
    def n_edges(self) -> int:
        return self.dag.edge_count

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise InconsistentNetworkError(f"unknown variable {name!r}") from None

    def cpd(self, name: str) -> TabularCPD:
        try:
            return self._cpds[name]
        except KeyError:
            raise InconsistentNetworkError(f"unknown variable {name!r}") from None

    def variables(self) -> list[Variable]:
        """All variables, in topological order."""
        return [self._variables[n] for n in self._order]

    def cpds(self) -> list[TabularCPD]:
        """All CPDs, in topological order."""
        return [self._cpds[n] for n in self._order]

    def variable_index(self, name: str) -> int:
        """Position of a variable in topological order."""
        try:
            return self._index[name]
        except KeyError:
            raise InconsistentNetworkError(f"unknown variable {name!r}") from None

    def cardinalities(self) -> np.ndarray:
        """``J_i`` for each variable, topological order."""
        return np.array(
            [self._variables[n].cardinality for n in self._order], dtype=np.int64
        )

    def parent_configuration_counts(self) -> np.ndarray:
        """``K_i`` for each variable, topological order."""
        return np.array(
            [self._cpds[n].parent_configurations for n in self._order],
            dtype=np.int64,
        )

    def stride_rows(self) -> list[tuple[int, int, tuple[tuple[int, int], ...]]]:
        """Per-variable ``(J_i, K_i, ((parent position, stride), ...))`` rows.

        One row per variable in topological order; ``parent position`` is
        the parent's topological index and ``stride`` its mixed-radix
        weight in the CPD's parent-configuration code.  All values are
        plain Python ints (no array-scalar boxing in per-row numpy calls).

        This is the *shared stride plan*: the estimator's sparse batch
        encoder (``core/estimator.py``'s ``_SparseEncodePlan``) and the
        forward sampler's packed inverse-CDF tables
        (:meth:`~repro.bn.cpd.TabularCPD.packed_cdf`) both derive their
        per-variable multiply-accumulate plans from these rows, so the
        two hot paths can never disagree about the configuration code.
        """
        rows = []
        for name in self._order:
            cpd = self._cpds[name]
            parents = tuple(
                (self._index[p], int(s))
                for p, s in zip(cpd.parent_names, cpd._strides)
            )
            rows.append(
                (int(cpd.cardinality), int(cpd.parent_configurations), parents)
            )
        return rows

    @property
    def parameter_count(self) -> int:
        """Total free parameters ``sum_i (J_i - 1) * K_i`` (Table I)."""
        return sum(c.parameter_count for c in self._cpds.values())

    @property
    def max_cardinality(self) -> int:
        """``J = max_i J_i``."""
        return max(v.cardinality for v in self._variables.values())

    @property
    def max_parents(self) -> int:
        """``d = max_i |par(X_i)|``."""
        return max(len(self.dag.parents(n)) for n in self._order)

    def min_cpd_probability(self) -> float:
        """The λ of Lemma 3: the smallest conditional probability."""
        return min(c.min_probability() for c in self._cpds.values())

    # ------------------------------------------------------------------
    # Probability computations
    # ------------------------------------------------------------------
    def _as_index_vector(self, assignment) -> np.ndarray:
        """Coerce a full assignment (mapping or sequence) to state indices."""
        if isinstance(assignment, Mapping):
            missing = set(self._order) - set(assignment)
            if missing:
                raise QueryError(
                    f"full assignment missing variables {sorted(missing)[:5]}"
                )
            vec = np.empty(len(self._order), dtype=np.int64)
            for name, idx in self._index.items():
                vec[idx] = self._variables[name].state_index(assignment[name])
            return vec
        arr = np.asarray(assignment, dtype=np.int64)
        if arr.shape != (len(self._order),):
            raise QueryError(
                f"assignment has shape {arr.shape}, expected ({len(self._order)},)"
            )
        cards = self.cardinalities()
        if np.any(arr < 0) or np.any(arr >= cards):
            raise QueryError("assignment contains out-of-range state indices")
        return arr

    def log_probability(self, assignment) -> float:
        """Natural log of the joint probability of a full assignment.

        ``assignment`` is either a mapping from variable name to state
        (label or index) or a sequence of state indices in topological order.
        """
        vec = self._as_index_vector(assignment)
        total = 0.0
        for name, idx in self._index.items():
            cpd = self._cpds[name]
            parent_states = [vec[self._index[p]] for p in cpd.parent_names]
            p = cpd.probability(int(vec[idx]), parent_states)
            if p <= 0.0:
                return -math.inf
            total += math.log(p)
        return total

    def probability(self, assignment) -> float:
        """Joint probability of a full assignment (Eq. 1)."""
        return math.exp(self.log_probability(assignment))

    def event_log_probability(self, event: Mapping[str, int]) -> float:
        """Log-probability of an *ancestrally closed* partial assignment.

        The event must assign a state to every parent of every assigned
        variable; then ``P[event] = prod_{i in event} P[x_i | xpar_i]``
        exactly, with no inference needed.

        Raises
        ------
        QueryError
            If the event is not ancestrally closed.
        """
        total = 0.0
        for name in event:
            if name not in self._index:
                raise QueryError(f"unknown variable {name!r} in event")
        for name, state in event.items():
            cpd = self._cpds[name]
            for parent in cpd.parent_names:
                if parent not in event:
                    raise QueryError(
                        f"event is not ancestrally closed: {name!r} assigned "
                        f"but its parent {parent!r} is not"
                    )
            parent_states = [
                self._variables[p].state_index(event[p]) for p in cpd.parent_names
            ]
            p = cpd.probability(
                self._variables[name].state_index(state), parent_states
            )
            if p <= 0.0:
                return -math.inf
            total += math.log(p)
        return total

    def event_probability(self, event: Mapping[str, int]) -> float:
        """Probability of an ancestrally closed partial assignment."""
        return math.exp(self.event_log_probability(event))

    def log_probability_batch(self, data: np.ndarray) -> np.ndarray:
        """Vectorized log joint probability for rows of state indices.

        ``data`` has shape ``(m, n)`` with columns in topological order.
        """
        data = np.asarray(data, dtype=np.int64)
        if data.ndim != 2 or data.shape[1] != len(self._order):
            raise QueryError(
                f"data must have shape (m, {len(self._order)}), got {data.shape}"
            )
        total = np.zeros(data.shape[0], dtype=np.float64)
        for name, idx in self._index.items():
            cpd = self._cpds[name]
            parent_cols = data[:, [self._index[p] for p in cpd.parent_names]]
            col_index = cpd.parent_index_array(parent_cols)
            probs = cpd.values[data[:, idx], col_index]
            with np.errstate(divide="ignore"):
                total += np.log(probs)
        return total

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def with_random_cpds(
        cls,
        dag: DAG,
        cardinalities: Mapping[str, int],
        *,
        seed=None,
        concentration: float = 1.0,
        min_probability: float = 0.02,
        name: str = "network",
    ) -> "BayesianNetwork":
        """Build a network on ``dag`` with seeded random CPDs.

        ``cardinalities`` maps each node name to its domain size.
        """
        rng = as_generator(seed)
        missing = set(dag.nodes) - set(cardinalities)
        if missing:
            raise InconsistentNetworkError(
                f"cardinalities missing for nodes {sorted(missing)[:5]}"
            )
        variables = [Variable(n, int(cardinalities[n])) for n in dag.nodes]
        cpds = []
        for node in dag.nodes:
            parents = dag.parents(node)
            cpds.append(
                random_cpd(
                    node,
                    int(cardinalities[node]),
                    parents,
                    [int(cardinalities[p]) for p in parents],
                    seed=rng,
                    concentration=concentration,
                    min_probability=min_probability,
                )
            )
        return cls(dag, variables, cpds, name=name)

    def with_replaced_cpds(
        self, replacements: Iterable[TabularCPD], *, name: str | None = None
    ) -> "BayesianNetwork":
        """A copy of this network with some CPDs swapped out."""
        new_cpds = dict(self._cpds)
        for cpd in replacements:
            if cpd.variable not in new_cpds:
                raise InconsistentNetworkError(
                    f"no variable {cpd.variable!r} to replace"
                )
            new_cpds[cpd.variable] = cpd
        return BayesianNetwork(
            self.dag,
            self.variables(),
            list(new_cpds.values()),
            name=name if name is not None else self.name,
        )

    def subnetwork(self, keep: Sequence[str], *, name: str | None = None
                   ) -> "BayesianNetwork":
        """Restrict to an ancestrally closed subset of variables.

        Because the subset is closed under parents, CPDs carry over
        unchanged and the sub-joint is the product of the kept CPDs.
        """
        keep_set = set(keep)
        for node in keep_set:
            for parent in self.dag.parents(node):
                if parent not in keep_set:
                    raise QueryError(
                        f"subset not ancestrally closed: {node!r} kept but "
                        f"parent {parent!r} dropped"
                    )
        sub_dag = self.dag.without_nodes(set(self._order) - keep_set)
        return BayesianNetwork(
            sub_dag,
            [self._variables[n] for n in sub_dag.nodes],
            [self._cpds[n] for n in sub_dag.nodes],
            name=name if name is not None else f"{self.name}-sub{len(keep_set)}",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BayesianNetwork({self.name!r}, n={self.n_variables}, "
            f"edges={self.n_edges}, params={self.parameter_count})"
        )
