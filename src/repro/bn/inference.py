"""Exact inference by variable elimination.

The paper's queries are products of CPD entries (full-joint or ancestrally
closed events), but a usable BN library also needs posterior marginals —
e.g. the classification example conditions on partial evidence.  This module
implements standard sum-product variable elimination over tabular factors
with a min-fill elimination ordering.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import QueryError


class Factor:
    """A nonnegative table over a tuple of named categorical variables."""

    __slots__ = ("names", "cards", "values")

    def __init__(self, names: Sequence[str], cards: Sequence[int], values) -> None:
        self.names = tuple(names)
        self.cards = tuple(int(c) for c in cards)
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != self.cards:
            raise QueryError(
                f"factor over {self.names} has shape {arr.shape}, "
                f"expected {self.cards}"
            )
        if np.any(arr < 0):
            raise QueryError(f"factor over {self.names} has negative entries")
        self.values = arr

    @classmethod
    def from_cpd(cls, cpd, variable_cards: Mapping[str, int]) -> "Factor":
        """Lift a CPD ``P[X | parents]`` into a factor over ``(X, *parents)``."""
        names = (cpd.variable, *cpd.parent_names)
        cards = (cpd.cardinality, *cpd.parent_cards)
        values = cpd.values.reshape(cards)
        return cls(names, cards, values)

    def reduce(self, evidence: Mapping[str, int]) -> "Factor":
        """Slice out evidence assignments that mention this factor's scope."""
        indexer: list = []
        kept_names: list[str] = []
        kept_cards: list[int] = []
        for name, card in zip(self.names, self.cards):
            if name in evidence:
                state = int(evidence[name])
                if not 0 <= state < card:
                    raise QueryError(
                        f"evidence {name}={state} out of range (card {card})"
                    )
                indexer.append(state)
            else:
                indexer.append(slice(None))
                kept_names.append(name)
                kept_cards.append(card)
        return Factor(kept_names, kept_cards, self.values[tuple(indexer)])

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of scopes."""
        names = list(self.names)
        cards = list(self.cards)
        for name, card in zip(other.names, other.cards):
            if name not in names:
                names.append(name)
                cards.append(card)
        def broadcast(factor: "Factor") -> np.ndarray:
            shape = [1] * len(names)
            src_axes = [names.index(n) for n in factor.names]
            arr = factor.values
            # Move factor axes into the union layout.
            expanded = np.moveaxis(
                arr.reshape(factor.cards + (1,) * (len(names) - len(factor.names))),
                range(len(factor.names)),
                src_axes,
            )
            for axis, name in enumerate(names):
                shape[axis] = cards[axis] if name in factor.names else 1
            return expanded.reshape(shape)
        return Factor(names, cards, broadcast(self) * broadcast(other))

    def marginalize(self, name: str) -> "Factor":
        """Sum out one variable."""
        if name not in self.names:
            raise QueryError(f"cannot marginalize {name!r}: not in scope {self.names}")
        axis = self.names.index(name)
        names = self.names[:axis] + self.names[axis + 1 :]
        cards = self.cards[:axis] + self.cards[axis + 1 :]
        return Factor(names, cards, self.values.sum(axis=axis))

    def normalize(self) -> "Factor":
        total = float(self.values.sum())
        if total <= 0:
            raise QueryError(f"factor over {self.names} sums to {total}")
        return Factor(self.names, self.cards, self.values / total)

    def scalar(self) -> float:
        """Value of an empty-scope factor."""
        if self.names:
            raise QueryError(f"factor still has scope {self.names}")
        return float(self.values)


def _min_fill_order(
    scopes: list[set[str]], to_eliminate: set[str]
) -> list[str]:
    """Greedy min-fill elimination ordering."""
    adjacency: dict[str, set[str]] = {v: set() for v in to_eliminate}
    all_vars: set[str] = set()
    for scope in scopes:
        all_vars |= scope
    for v in all_vars:
        adjacency.setdefault(v, set())
    for scope in scopes:
        for a, b in itertools.combinations(scope, 2):
            adjacency[a].add(b)
            adjacency[b].add(a)
    order: list[str] = []
    remaining = set(to_eliminate)
    while remaining:
        best, best_fill = None, None
        for v in sorted(remaining):
            neighbors = adjacency[v] & (all_vars - {v})
            fill = sum(
                1
                for a, b in itertools.combinations(sorted(neighbors), 2)
                if b not in adjacency[a]
            )
            if best_fill is None or fill < best_fill:
                best, best_fill = v, fill
        order.append(best)
        remaining.discard(best)
        neighbors = adjacency[best]
        for a, b in itertools.combinations(sorted(neighbors), 2):
            adjacency[a].add(b)
            adjacency[b].add(a)
        for other in adjacency:
            adjacency[other].discard(best)
        adjacency[best] = set()
    return order


class VariableElimination:
    """Exact posterior queries over a :class:`BayesianNetwork`.

    Examples
    --------
    >>> engine = VariableElimination(network)           # doctest: +SKIP
    >>> engine.query(["Disease"], {"Symptom": 1})       # doctest: +SKIP
    """

    def __init__(self, network: BayesianNetwork) -> None:
        self.network = network
        self._cards = {
            v.name: v.cardinality for v in network.variables()
        }

    def _validated_evidence(self, evidence: Mapping[str, int] | None
                            ) -> dict[str, int]:
        evidence = dict(evidence or {})
        for name, state in evidence.items():
            if name not in self._cards:
                raise QueryError(f"unknown evidence variable {name!r}")
            evidence[name] = self.network.variable(name).state_index(state)
        return evidence

    def query(
        self,
        targets: Sequence[str],
        evidence: Mapping[str, int] | None = None,
    ) -> Factor:
        """Posterior joint ``P[targets | evidence]`` as a normalized factor."""
        targets = [str(t) for t in targets]
        if not targets:
            raise QueryError("query requires at least one target variable")
        evidence = self._validated_evidence(evidence)
        for t in targets:
            if t not in self._cards:
                raise QueryError(f"unknown target variable {t!r}")
            if t in evidence:
                raise QueryError(f"target {t!r} also appears in evidence")

        factors = [
            Factor.from_cpd(self.network.cpd(n), self._cards).reduce(evidence)
            for n in self.network.node_names
        ]
        factors = [f for f in factors if f.names]
        eliminate = (
            set(self.network.node_names) - set(targets) - set(evidence)
        )
        order = _min_fill_order([set(f.names) for f in factors], eliminate)
        for var in order:
            bucket = [f for f in factors if var in f.names]
            factors = [f for f in factors if var not in f.names]
            if not bucket:
                continue
            product = bucket[0]
            for other in bucket[1:]:
                product = product.multiply(other)
            factors.append(product.marginalize(var))
        if factors:
            result = factors[0]
            for other in factors[1:]:
                result = result.multiply(other)
        else:
            result = Factor((), (), np.array(1.0).reshape(()))
        # Reorder axes to match the requested target order.
        result = result.normalize()
        perm = [result.names.index(t) for t in targets]
        values = np.transpose(result.values, perm) if result.names else result.values
        cards = tuple(self._cards[t] for t in targets)
        return Factor(targets, cards, values.reshape(cards))

    def marginal(self, target: str, evidence: Mapping[str, int] | None = None
                 ) -> np.ndarray:
        """Posterior marginal of a single variable as a 1-D array."""
        return self.query([target], evidence).values

    def evidence_probability(self, evidence: Mapping[str, int]) -> float:
        """Marginal probability ``P[evidence]`` of a partial assignment."""
        evidence = self._validated_evidence(evidence)
        if not evidence:
            return 1.0
        factors = [
            Factor.from_cpd(self.network.cpd(n), self._cards).reduce(evidence)
            for n in self.network.node_names
        ]
        scalar = 1.0
        live = []
        for f in factors:
            if f.names:
                live.append(f)
            else:
                scalar *= f.scalar()
        eliminate = set(self.network.node_names) - set(evidence)
        order = _min_fill_order([set(f.names) for f in live], eliminate)
        for var in order:
            bucket = [f for f in live if var in f.names]
            live = [f for f in live if var not in f.names]
            if not bucket:
                continue
            product = bucket[0]
            for other in bucket[1:]:
                product = product.multiply(other)
            reduced = product.marginalize(var)
            if reduced.names:
                live.append(reduced)
            else:
                scalar *= reduced.scalar()
        for f in live:
            remaining = f
            for name in f.names:
                remaining = remaining.marginalize(name)
            scalar *= remaining.scalar()
        return scalar
