"""Tabular conditional probability distributions (CPDs).

A CPD for variable ``X_i`` with parents ``par(X_i)`` is stored as a dense
array of shape ``(J_i, K_i)`` where ``J_i = |dom(X_i)|`` and
``K_i = |dom(par(X_i))|``.  Columns index parent configurations via a
mixed-radix code: for ordered parents ``(P_1, .., P_d)`` with cardinalities
``(c_1, .., c_d)``, configuration ``(x_1, .., x_d)`` maps to
``x_1 * (c_2*..*c_d) + x_2 * (c_3*..*c_d) + .. + x_d`` — i.e. the first
listed parent is the most significant digit.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import InvalidCPDError
from repro.utils.rng import as_generator


def parent_strides(parent_cards: Sequence[int]) -> np.ndarray:
    """Mixed-radix strides for ordered parent cardinalities.

    >>> parent_strides([2, 3, 4]).tolist()
    [12, 4, 1]
    """
    cards = np.asarray(parent_cards, dtype=np.int64)
    if cards.size == 0:
        return np.zeros(0, dtype=np.int64)
    strides = np.ones(cards.size, dtype=np.int64)
    for i in range(cards.size - 2, -1, -1):
        strides[i] = strides[i + 1] * cards[i + 1]
    return strides


class TabularCPD:
    """The conditional probability table ``P[X | par(X)]``.

    Parameters
    ----------
    variable:
        Name of the child variable.
    cardinality:
        Number of child states, ``J``.
    parent_names:
        Ordered names of the parents (may be empty).
    parent_cards:
        Cardinalities of the parents, aligned with ``parent_names``.
    values:
        Array of shape ``(J, K)``; each column must be a probability vector.

    Raises
    ------
    InvalidCPDError
        On any shape/positivity/normalization violation.
    """

    __slots__ = ("variable", "cardinality", "parent_names", "parent_cards",
                 "values", "_strides")

    def __init__(
        self,
        variable: str,
        cardinality: int,
        parent_names: Sequence[str],
        parent_cards: Sequence[int],
        values,
    ) -> None:
        self.variable = str(variable)
        self.cardinality = int(cardinality)
        self.parent_names = tuple(str(p) for p in parent_names)
        self.parent_cards = tuple(int(c) for c in parent_cards)
        if len(self.parent_names) != len(self.parent_cards):
            raise InvalidCPDError(
                f"CPD {self.variable!r}: {len(self.parent_names)} parent names "
                f"but {len(self.parent_cards)} cardinalities"
            )
        if len(set(self.parent_names)) != len(self.parent_names):
            raise InvalidCPDError(f"CPD {self.variable!r}: duplicate parents")
        if self.cardinality < 1:
            raise InvalidCPDError(f"CPD {self.variable!r}: cardinality < 1")
        if any(c < 1 for c in self.parent_cards):
            raise InvalidCPDError(f"CPD {self.variable!r}: parent cardinality < 1")

        expected_k = self.parent_configurations
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape != (self.cardinality, expected_k):
            raise InvalidCPDError(
                f"CPD {self.variable!r}: values shape {arr.shape} != "
                f"expected ({self.cardinality}, {expected_k})"
            )
        if np.any(arr < 0) or np.any(~np.isfinite(arr)):
            raise InvalidCPDError(
                f"CPD {self.variable!r}: values must be finite and nonnegative"
            )
        sums = arr.sum(axis=0)
        if not np.allclose(sums, 1.0, atol=1e-6):
            worst = int(np.argmax(np.abs(sums - 1.0)))
            raise InvalidCPDError(
                f"CPD {self.variable!r}: column {worst} sums to {sums[worst]:.6f}"
            )
        # Renormalize exactly to absorb tiny drift, then freeze.
        arr = arr / sums
        arr.setflags(write=False)
        self.values = arr
        self._strides = parent_strides(self.parent_cards)

    # ------------------------------------------------------------------
    @property
    def parent_configurations(self) -> int:
        """``K``, the number of parent configurations (1 when parentless)."""
        return int(math.prod(self.parent_cards)) if self.parent_cards else 1

    @property
    def parameter_count(self) -> int:
        """Free parameters ``(J - 1) * K`` — the convention behind Table I."""
        return (self.cardinality - 1) * self.parent_configurations

    @property
    def table_size(self) -> int:
        """Total number of table entries ``J * K``."""
        return self.cardinality * self.parent_configurations

    def parent_index(self, parent_states: Sequence[int]) -> int:
        """Mixed-radix column index for one parent configuration."""
        states = np.asarray(parent_states, dtype=np.int64)
        if states.shape != (len(self.parent_cards),):
            raise InvalidCPDError(
                f"CPD {self.variable!r}: expected {len(self.parent_cards)} "
                f"parent states, got shape {states.shape}"
            )
        if np.any(states < 0) or np.any(states >= np.asarray(self.parent_cards)):
            raise InvalidCPDError(
                f"CPD {self.variable!r}: parent state out of range: {states}"
            )
        if states.size == 0:
            return 0
        return int(states @ self._strides)

    def parent_index_array(self, parent_columns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`parent_index` over rows.

        ``parent_columns`` has shape ``(m, d)`` with one column per parent in
        order; returns shape ``(m,)`` int64 column indices.
        """
        if len(self.parent_cards) == 0:
            return np.zeros(parent_columns.shape[0], dtype=np.int64)
        return parent_columns.astype(np.int64, copy=False) @ self._strides

    def probability(self, state: int, parent_states: Sequence[int] = ()) -> float:
        """``P[X = state | par(X) = parent_states]``."""
        if not 0 <= state < self.cardinality:
            raise InvalidCPDError(
                f"CPD {self.variable!r}: state {state} out of range"
            )
        return float(self.values[state, self.parent_index(parent_states)])

    def min_probability(self) -> float:
        """Smallest entry of the table (the λ of Lemma 3)."""
        return float(self.values.min())

    def cdf(self) -> np.ndarray:
        """Column-wise cumulative sums, used by the forward sampler."""
        return np.cumsum(self.values, axis=0)

    def packed_cdf(self) -> np.ndarray:
        """Flat inverse-CDF table over all parent configurations.

        Entry ``k * J + j`` holds ``k + cdf[j, k]`` with each column's
        cumulative sums clamped to 1 and the last entry pinned to exactly
        ``k + 1``, so the whole length-``K*J`` array is globally
        non-decreasing.  One ``searchsorted(packed, k + u, side="right")``
        then inverts the CDF of configuration ``k`` for a whole batch at
        once — for ``u`` in ``[0, 1)`` the hit lands strictly inside
        column ``k`` (entries of earlier columns are ``<= k`` and later
        columns start at ``>= k + 1``), and the returned index minus
        ``k * J`` is the sampled child state.  This is the forward
        sampler's per-variable table; see ``docs/performance.md``.
        """
        cdf = np.minimum(np.cumsum(self.values, axis=0), 1.0)
        cdf[-1, :] = 1.0
        offsets = np.arange(self.parent_configurations, dtype=np.float64)
        packed = np.ascontiguousarray((cdf.T + offsets[:, None]).ravel())
        packed.setflags(write=False)
        return packed

    def __eq__(self, other) -> bool:
        if not isinstance(other, TabularCPD):
            return NotImplemented
        return (
            self.variable == other.variable
            and self.cardinality == other.cardinality
            and self.parent_names == other.parent_names
            and self.parent_cards == other.parent_cards
            and np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TabularCPD({self.variable!r}, J={self.cardinality}, "
            f"parents={list(self.parent_names)}, K={self.parent_configurations})"
        )


def random_cpd(
    variable: str,
    cardinality: int,
    parent_names: Sequence[str],
    parent_cards: Sequence[int],
    *,
    seed=None,
    concentration: float = 1.0,
    min_probability: float = 0.02,
) -> TabularCPD:
    """Draw a random CPD with Dirichlet columns bounded away from zero.

    Each column is ``(1 - J*λ) * Dirichlet(α) + λ`` with ``λ``
    (``min_probability``) shrunk if necessary so that ``J*λ < 1``.  The floor
    keeps every conditional probability at least λ, matching the regularity
    assumption of Lemma 3 and making ground-truth test events with
    probability ≥ 0.01 reachable.
    """
    if min_probability < 0:
        raise InvalidCPDError(f"min_probability must be >= 0, got {min_probability}")
    rng = as_generator(seed)
    j = int(cardinality)
    k = int(math.prod(parent_cards)) if parent_cards else 1
    floor = min(min_probability, 0.5 / j)
    raw = rng.dirichlet(np.full(j, concentration), size=k).T  # (J, K)
    values = (1.0 - j * floor) * raw + floor
    return TabularCPD(variable, j, parent_names, parent_cards, values)
