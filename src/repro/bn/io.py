"""JSON-dict serialization for Bayesian networks.

Networks round-trip through plain dictionaries (and therefore JSON files),
which is how example scripts persist learned models.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bn.cpd import TabularCPD
from repro.bn.network import BayesianNetwork
from repro.bn.variable import Variable
from repro.errors import ModelError
from repro.graph.dag import DAG

FORMAT_VERSION = 1


def network_to_dict(network: BayesianNetwork) -> dict:
    """Serialize a network to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": network.name,
        "variables": [
            {
                "name": v.name,
                "cardinality": v.cardinality,
                "states": list(v.states),
            }
            for v in network.variables()
        ],
        "parents": {n: list(network.dag.parents(n)) for n in network.node_names},
        "cpds": {
            n: network.cpd(n).values.tolist() for n in network.node_names
        },
    }


def network_from_dict(payload: dict) -> BayesianNetwork:
    """Rebuild a network serialized by :func:`network_to_dict`."""
    try:
        version = payload["format_version"]
        if version != FORMAT_VERSION:
            raise ModelError(f"unsupported format version {version!r}")
        variables = [
            Variable(v["name"], int(v["cardinality"]), tuple(v.get("states", ())))
            for v in payload["variables"]
        ]
        dag = DAG(payload["parents"])
        card = {v.name: v.cardinality for v in variables}
        cpds = []
        for name, values in payload["cpds"].items():
            parents = dag.parents(name)
            cpds.append(
                TabularCPD(
                    name,
                    card[name],
                    parents,
                    [card[p] for p in parents],
                    np.asarray(values, dtype=np.float64),
                )
            )
    except KeyError as exc:
        raise ModelError(f"serialized network missing field {exc}") from exc
    return BayesianNetwork(dag, variables, cpds, name=payload.get("name", "network"))


def save_network(network: BayesianNetwork, path: "str | Path") -> None:
    """Write a network to a JSON file."""
    payload = network_to_dict(network)
    Path(path).write_text(json.dumps(payload))


def load_network(path: "str | Path") -> BayesianNetwork:
    """Read a network from a JSON file written by :func:`save_network`."""
    with open(path) as handle:
        payload = json.load(handle)
    return network_from_dict(payload)
