"""Random DAG generators.

These produce structures for the synthetic stand-in networks (HEPAR II,
LINK, MUNIN — see DESIGN.md substitution 2) and for tests.  All generators
take a seed or generator and are fully deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.dag import DAG
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int


def _node_names(n: int, prefix: str) -> list[str]:
    width = len(str(n - 1))
    return [f"{prefix}{i:0{width}d}" for i in range(n)]


def random_dag(
    n_nodes: int,
    n_edges: int,
    *,
    max_parents: int = 4,
    seed=None,
    prefix: str = "X",
) -> DAG:
    """A uniform-ish random DAG with exactly ``n_nodes`` and ``n_edges``.

    Nodes are placed in a random total order and each edge connects a pair
    ``(u, v)`` with ``u`` earlier in the order, so acyclicity is guaranteed
    by construction.  Children are chosen with a bias toward later positions
    so that edge capacity is spread across the graph; each node's in-degree
    is capped at ``max_parents``.

    Raises
    ------
    GraphError
        If ``n_edges`` exceeds what ``n_nodes`` and ``max_parents`` allow.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    if n_edges < 0:
        raise GraphError(f"n_edges must be >= 0, got {n_edges}")
    max_parents = check_positive_int(max_parents, "max_parents")
    capacity = sum(min(i, max_parents) for i in range(n_nodes))
    if n_edges > capacity:
        raise GraphError(
            f"cannot place {n_edges} edges on {n_nodes} nodes with "
            f"max_parents={max_parents} (capacity {capacity})"
        )
    rng = as_generator(seed)
    names = _node_names(n_nodes, prefix)
    order = rng.permutation(n_nodes)
    ordered = [names[i] for i in order]

    parent_counts = np.zeros(n_nodes, dtype=np.int64)
    parents: dict[str, list[str]] = {name: [] for name in names}
    edges_placed = 0
    existing: set[tuple[int, int]] = set()
    # Draw candidate (child, parent) position pairs until enough edges exist.
    attempts = 0
    max_attempts = 200 * max(n_edges, 1) + 1000
    while edges_placed < n_edges:
        attempts += 1
        if attempts > max_attempts:
            # Fall back to a deterministic sweep filling remaining slots.
            for child_pos in range(1, n_nodes):
                if edges_placed >= n_edges:
                    break
                for parent_pos in range(child_pos - 1, -1, -1):
                    if edges_placed >= n_edges:
                        break
                    if parent_counts[child_pos] >= max_parents:
                        break
                    if (parent_pos, child_pos) in existing:
                        continue
                    existing.add((parent_pos, child_pos))
                    parent_counts[child_pos] += 1
                    parents[ordered[child_pos]].append(ordered[parent_pos])
                    edges_placed += 1
            break
        child_pos = int(rng.integers(1, n_nodes))
        if parent_counts[child_pos] >= max_parents:
            continue
        parent_pos = int(rng.integers(0, child_pos))
        if (parent_pos, child_pos) in existing:
            continue
        existing.add((parent_pos, child_pos))
        parent_counts[child_pos] += 1
        parents[ordered[child_pos]].append(ordered[parent_pos])
        edges_placed += 1
    return DAG(parents)


def random_tree_dag(n_nodes: int, *, seed=None, prefix: str = "T") -> DAG:
    """A random rooted tree: every node except the root has one parent.

    Each node's parent is drawn uniformly among earlier nodes, producing a
    random recursive tree (used for the tree-structured network results of
    Sec. V, Lemma 10).
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    rng = as_generator(seed)
    names = _node_names(n_nodes, prefix)
    parents: dict[str, list[str]] = {names[0]: []}
    for i in range(1, n_nodes):
        parent = names[int(rng.integers(0, i))]
        parents[names[i]] = [parent]
    return DAG(parents)


def naive_bayes_dag(n_features: int, *, class_name: str = "C", prefix: str = "F") -> DAG:
    """The two-layer Naive Bayes structure of Sec. V: class -> each feature."""
    n_features = check_positive_int(n_features, "n_features")
    names = _node_names(n_features, prefix)
    parents: dict[str, list[str]] = {class_name: []}
    for name in names:
        parents[name] = [class_name]
    return DAG(parents)


def layered_random_dag(
    layer_sizes: list[int],
    *,
    edge_probability: float = 0.3,
    max_parents: int = 3,
    seed=None,
    prefix: str = "L",
) -> DAG:
    """A DAG organised in layers, edges only from one layer to the next.

    Mimics the pedigree-like layered shape of the LINK network.  Every
    non-root node is guaranteed at least one parent in the previous layer.
    """
    if not layer_sizes or any(s < 1 for s in layer_sizes):
        raise GraphError(f"layer_sizes must be positive, got {layer_sizes}")
    rng = as_generator(seed)
    total = sum(layer_sizes)
    names = _node_names(total, prefix)
    layers: list[list[str]] = []
    cursor = 0
    for size in layer_sizes:
        layers.append(names[cursor : cursor + size])
        cursor += size
    parents: dict[str, list[str]] = {name: [] for name in names}
    for prev, current in zip(layers, layers[1:]):
        for node in current:
            k = 1 + int(rng.binomial(min(max_parents, len(prev)) - 1, edge_probability))
            chosen = rng.choice(len(prev), size=min(k, len(prev)), replace=False)
            parents[node] = [prev[int(i)] for i in np.sort(chosen)]
    return DAG(parents)
