"""A minimal, validated directed acyclic graph.

The DAG stores node names and, for each node, an ordered tuple of parents.
Parent order matters: it defines the column layout of the node's conditional
probability table, so it is preserved exactly as given.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import CyclicGraphError, GraphError


class DAG:
    """Directed acyclic graph over named nodes.

    Parameters
    ----------
    parents:
        Mapping from node name to an ordered sequence of its parent names.
        Every node must appear as a key, including root nodes (empty parent
        sequence).  Parents must themselves be keys.

    Raises
    ------
    GraphError
        If a parent is not a node, a node lists duplicate parents, or a node
        lists itself as a parent.
    CyclicGraphError
        If the directed graph contains a cycle.
    """

    def __init__(self, parents: Mapping[str, Sequence[str]]) -> None:
        self._parents: dict[str, tuple[str, ...]] = {}
        for node, pars in parents.items():
            node = str(node)
            pars = tuple(str(p) for p in pars)
            if len(set(pars)) != len(pars):
                raise GraphError(f"node {node!r} lists duplicate parents: {pars}")
            if node in pars:
                raise GraphError(f"node {node!r} lists itself as a parent")
            self._parents[node] = pars
        for node, pars in self._parents.items():
            for p in pars:
                if p not in self._parents:
                    raise GraphError(
                        f"node {node!r} has unknown parent {p!r}; "
                        "every parent must also be a node"
                    )
        self._children: dict[str, tuple[str, ...]] = {n: () for n in self._parents}
        children_acc: dict[str, list[str]] = {n: [] for n in self._parents}
        for node, pars in self._parents.items():
            for p in pars:
                children_acc[p].append(node)
        for node, childs in children_acc.items():
            self._children[node] = tuple(childs)
        self._topo_order = self._compute_topological_order()
        self._topo_index = {n: i for i, n in enumerate(self._topo_order)}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, nodes: Iterable[str], edges: Iterable[tuple[str, str]]
    ) -> "DAG":
        """Build a DAG from a node list and ``(parent, child)`` edge pairs.

        Parent order for each child follows the order edges are listed.
        """
        parents: dict[str, list[str]] = {str(n): [] for n in nodes}
        for parent, child in edges:
            parent, child = str(parent), str(child)
            if child not in parents:
                raise GraphError(f"edge targets unknown node {child!r}")
            if parent not in parents:
                raise GraphError(f"edge sourced at unknown node {parent!r}")
            parents[child].append(parent)
        return cls(parents)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        """All nodes in topological order."""
        return self._topo_order

    @property
    def node_count(self) -> int:
        return len(self._parents)

    @property
    def edge_count(self) -> int:
        return sum(len(p) for p in self._parents.values())

    def __contains__(self, node: str) -> bool:
        return node in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def parents(self, node: str) -> tuple[str, ...]:
        """Ordered parents of ``node``."""
        try:
            return self._parents[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def children(self, node: str) -> tuple[str, ...]:
        """Children of ``node`` (order not significant)."""
        try:
            return self._children[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def edges(self) -> list[tuple[str, str]]:
        """All ``(parent, child)`` pairs."""
        return [
            (parent, child)
            for child, pars in self._parents.items()
            for parent in pars
        ]

    def roots(self) -> tuple[str, ...]:
        """Nodes with no parents, in topological order."""
        return tuple(n for n in self._topo_order if not self._parents[n])

    def sinks(self) -> tuple[str, ...]:
        """Nodes with no children, in topological order."""
        return tuple(n for n in self._topo_order if not self._children[n])

    # ------------------------------------------------------------------
    # Order and reachability
    # ------------------------------------------------------------------
    def topological_order(self) -> tuple[str, ...]:
        """A topological order (parents before children), deterministic."""
        return self._topo_order

    def topological_index(self, node: str) -> int:
        """Position of ``node`` in :meth:`topological_order`."""
        try:
            return self._topo_index[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def _compute_topological_order(self) -> tuple[str, ...]:
        # Kahn's algorithm with insertion-order tie-breaking so that the
        # result is deterministic for a given construction order.
        in_degree = {n: len(p) for n, p in self._parents.items()}
        ready = [n for n in self._parents if in_degree[n] == 0]
        order: list[str] = []
        position = 0
        while position < len(ready):
            node = ready[position]
            position += 1
            order.append(node)
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._parents):
            remaining = sorted(set(self._parents) - set(order))
            raise CyclicGraphError(
                f"graph contains a directed cycle among nodes {remaining[:8]}"
            )
        return tuple(order)

    def ancestors(self, node: str) -> set[str]:
        """All strict ancestors of ``node``."""
        self.parents(node)  # validates node
        seen: set[str] = set()
        stack = list(self._parents[node])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._parents[current])
        return seen

    def descendants(self, node: str) -> set[str]:
        """All strict descendants of ``node``."""
        self.children(node)  # validates node
        seen: set[str] = set()
        stack = list(self._children[node])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._children[current])
        return seen

    def ancestral_closure(self, nodes: Iterable[str]) -> set[str]:
        """The smallest ancestrally closed node set containing ``nodes``."""
        closure: set[str] = set()
        stack = [str(n) for n in nodes]
        for n in stack:
            self.parents(n)  # validates
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            stack.extend(self._parents[current])
        return closure

    # ------------------------------------------------------------------
    # Mutating copies
    # ------------------------------------------------------------------
    def without_nodes(self, drop: Iterable[str]) -> "DAG":
        """A new DAG with ``drop`` nodes (and incident edges) removed.

        Raises ``GraphError`` if removing the nodes would orphan an edge,
        i.e. a kept node has a dropped parent.
        """
        dropped = {str(n) for n in drop}
        unknown = dropped - set(self._parents)
        if unknown:
            raise GraphError(f"cannot drop unknown nodes {sorted(unknown)[:8]}")
        kept: dict[str, tuple[str, ...]] = {}
        for node, pars in self._parents.items():
            if node in dropped:
                continue
            bad = [p for p in pars if p in dropped]
            if bad:
                raise GraphError(
                    f"dropping {sorted(dropped)[:4]} would orphan node {node!r}, "
                    f"whose parents include {bad}"
                )
            kept[node] = pars
        return DAG(kept)

    def strip_sinks(self, count: int) -> "DAG":
        """Iteratively remove ``count`` sink nodes, one at a time.

        This mirrors the paper's procedure for building the LINK-derived
        network family of Fig. 9 ("iteratively remove the sink nodes").
        Sinks are removed in reverse topological order, which is always safe.
        """
        if count < 0:
            raise GraphError(f"count must be >= 0, got {count}")
        if count >= self.node_count:
            raise GraphError(
                f"cannot strip {count} sinks from a {self.node_count}-node graph"
            )
        current = self
        for _ in range(count):
            sink = current.topological_order()[-1]
            current = current.without_nodes([sink])
        return current

    def __eq__(self, other) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return self._parents == other._parents

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DAG(nodes={self.node_count}, edges={self.edge_count})"
