"""Directed-acyclic-graph substrate used by Bayesian networks."""

from repro.graph.dag import DAG
from repro.graph.generators import (
    layered_random_dag,
    naive_bayes_dag,
    random_dag,
    random_tree_dag,
)

__all__ = [
    "DAG",
    "random_dag",
    "random_tree_dag",
    "naive_bayes_dag",
    "layered_random_dag",
]
