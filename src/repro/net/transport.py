"""`SocketTransport`: the `QueueTransport` surface over a TCP connection.

This is the *dialer-side* transport a site worker runs: it owns one
socket, drives it with a :mod:`selectors` event loop, and exposes the
exact blocking surface the worker loop already speaks —
``send``/``recv``/``try_recv``/``stats``/``close`` with ``alive``
polling, ``timeout`` semantics, and :class:`TransportClosed` on a dead
peer — so :func:`repro.dist.site._site_worker_main` runs unchanged over
TCP.  (The coordinator-side counterpart, which shares one selector
across every worker's connections, is
:class:`repro.net.endpoint.CoordinatorChannel`.)

Semantics relative to the queue transport:

- **Backpressure**: ``send`` blocks until the frame's bytes are handed
  to the kernel.  A slow or stalled peer fills the socket buffers and
  the send blocks exactly like a full bounded queue; blocked intervals
  are counted in ``blocked_sends`` / ``blocked_seconds``.
- **Liveness**: blocking operations poll ``alive()`` and heartbeat the
  connection (a :class:`~repro.net.wire.Ping` after
  ``heartbeat_interval`` of send silence); with ``heartbeat_timeout``
  set, a silent peer drops the connection instead of hanging forever.
- **Reconnect**: a severed connection (EOF, reset, injected fault) is
  re-dialed with exponential backoff and a fresh handshake carrying the
  same worker/incarnation identity.  Unflushed frames are re-sent from
  the head frame's first byte, so a frame is never delivered half-old
  half-new; frames lost in flight are recovered by the coordinator's
  reconnect replay (see ``docs/networking.md``).

Fault specs extend the declarative vocabulary of
:mod:`repro.dist.transport` (same dict, same pickling rationale):
``kill_after_sends``/``once_marker``/``delay_send``/``delay_recv`` are
honored identically, plus

``sever_after_sends``
    Abruptly close the socket *before* the Nth+1 successful send — a
    simulated network cut; ``sever_marker`` (a ``create_once`` path)
    arms it exactly once across incarnations.
``sever_after_recvs``
    The receive-side cut: close after N frames received.
``drop_sends``
    Silently discard the first N payload frames instead of sending
    them (counted in ``dropped_frames``, never in ``sent``).
``sockbuf``
    Shrink ``SO_SNDBUF``/``SO_RCVBUF`` to this many bytes — the
    "narrow pipe" fault the TCP backpressure tests use.
"""

from __future__ import annotations

import selectors
import socket
import time

from repro.dist.transport import POLL_INTERVAL, TransportClosed, create_once
from repro.net.wire import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    HelloAck,
    Ping,
    WireError,
    encode_frame,
    make_hello,
)

#: Seconds of send silence before a heartbeat Ping is queued.
HEARTBEAT_INTERVAL = 1.0

#: Default ceiling on (re)connect attempts for one blocking operation.
CONNECT_TIMEOUT = 30.0

#: Cap on the exponential reconnect backoff.
MAX_BACKOFF = 1.0


class HandshakeRefused(TransportClosed):
    """The listener rejected this endpoint's :class:`Hello` (permanent)."""


def apply_sockopts(sock: socket.socket, fault: dict | None = None) -> None:
    """Standard socket options + the declarative ``sockbuf`` fault."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sockbuf = (fault or {}).get("sockbuf")
    if sockbuf:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, int(sockbuf))
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, int(sockbuf))


class SendQueue:
    """Outbound frames as buffer lists, with partial-write bookkeeping.

    Frames are appended as the buffer lists :func:`encode_frame`
    produced (zero-copy for array payloads) plus a ``control`` flag so
    heartbeats never perturb the payload accounting.  ``advance`` walks
    written bytes across buffer and frame boundaries; ``rewind`` resets
    the head frame to its first byte after a reconnect.
    """

    def __init__(self) -> None:
        self._frames: list[dict] = []
        self._head_offset = 0

    def push(self, buffers: list, *, control: bool = False) -> dict:
        entry = {
            "buffers": buffers,
            "nbytes": sum(
                b.nbytes if isinstance(b, memoryview) else len(b)
                for b in buffers
            ),
            "control": control,
            "done": False,
        }
        self._frames.append(entry)
        return entry

    def __bool__(self) -> bool:
        return bool(self._frames)

    @property
    def pending_frames(self) -> int:
        return sum(1 for f in self._frames if not f["control"])

    @property
    def pending_bytes(self) -> int:
        return sum(f["nbytes"] for f in self._frames) - self._head_offset

    def buffers(self, limit: int = 16) -> list:
        """The next ``limit`` buffers to write, head offset applied."""
        out = []
        skip = self._head_offset
        for frame in self._frames:
            for buffer in frame["buffers"]:
                size = buffer.nbytes if isinstance(buffer, memoryview) else len(buffer)
                if skip >= size:
                    skip -= size
                    continue
                view = memoryview(buffer)
                out.append(view[skip:] if skip else view)
                skip = 0
                if len(out) >= limit:
                    return out
        return out

    def advance(self, nbytes: int) -> None:
        """Mark ``nbytes`` as written; pop (and flag) completed frames."""
        self._head_offset += nbytes
        while self._frames and self._head_offset >= self._frames[0]["nbytes"]:
            frame = self._frames.pop(0)
            self._head_offset -= frame["nbytes"]
            frame["done"] = True

    def rewind(self) -> None:
        """Restart the head frame from byte 0 (after a reconnect)."""
        self._head_offset = 0

    def drop_control(self) -> None:
        """Discard queued heartbeats (stale after a reconnect)."""
        kept = []
        for frame in self._frames:
            if frame["control"] and frame is not self._frames[0]:
                continue
            kept.append(frame)
        # Keep the head even if control: a partially-written ping must
        # finish on the same connection it started on — but after a
        # reconnect the offset was rewound, so it is safe to drop too.
        if kept and kept[0]["control"] and self._head_offset == 0:
            kept.pop(0)
        self._frames = kept


class SocketTransport:
    """One end of a framed TCP channel, dialer side.

    Parameters
    ----------
    address:
        The coordinator listener's ``(host, port)``.
    worker / channel / incarnation / token / coordinator:
        The handshake identity (see :class:`~repro.net.wire.Hello`):
        the token keys the Hello's HMAC (it never crosses the wire) and
        ``coordinator`` is the listener's restart generation this
        transport was spawned under.
    fault:
        Declarative fault spec (module docstring).
    poll_interval:
        Liveness-poll cadence while blocked (defaults to the queue
        transport's :data:`~repro.dist.transport.POLL_INTERVAL`).
    connect_timeout:
        Ceiling on one blocking operation's (re)connect attempts.
    heartbeat_timeout:
        Seconds of *receive* silence after which the connection is
        declared dead and re-dialed (``None``: rely on EOF/liveness).
    """

    def __init__(
        self,
        address,
        *,
        worker: int,
        channel: str,
        incarnation: int = 0,
        token: str = "",
        coordinator: int = 0,
        name: str | None = None,
        fault: dict | None = None,
        poll_interval: float | None = None,
        connect_timeout: float = CONNECT_TIMEOUT,
        handshake_timeout: float = 10.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_timeout: float | None = None,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.worker = int(worker)
        self.channel = str(channel)
        self.incarnation = int(incarnation)
        self.token = str(token)
        self.coordinator = int(coordinator)
        self.name = name or f"worker-{worker}.{channel}"
        self.fault = dict(fault) if fault else {}
        self.poll_interval = (
            POLL_INTERVAL if poll_interval is None else float(poll_interval)
        )
        self.connect_timeout = float(connect_timeout)
        self.handshake_timeout = float(handshake_timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )
        # The QueueTransport accounting surface, plus wire extras.
        self.sent = 0
        self.received = 0
        self.blocked_sends = 0
        self.blocked_seconds = 0.0
        self.reconnects = 0
        self.dropped_frames = 0
        self._severed_sends = 0
        self._inbound: list = []
        self._outbox = SendQueue()
        self._sock: socket.socket | None = None
        self._decoder: FrameDecoder | None = None
        self._selector = selectors.DefaultSelector()
        self._registered_events = 0
        self._last_recv = time.monotonic()
        self._last_send = time.monotonic()
        self._ever_connected = False
        self._closed = False

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _drop_connection(self) -> None:
        if self._sock is None:
            return
        try:
            self._selector.unregister(self._sock)
        except (KeyError, ValueError):  # pragma: no cover - defensive
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._sock = None
        self._decoder = None
        self._registered_events = 0
        self._outbox.rewind()
        self._outbox.drop_control()

    def _connect_once(self, timeout: float) -> None:
        """One dial + handshake attempt; raises on failure."""
        sock = socket.create_connection(self.address, timeout=max(timeout, 0.05))
        try:
            apply_sockopts(sock, self.fault)
            sock.settimeout(self.handshake_timeout)
            hello = encode_frame(
                make_hello(
                    self.token, self.worker, self.incarnation, self.channel,
                    self.coordinator,
                )
            )
            sock.sendall(b"".join(hello))
            decoder = FrameDecoder(max_bytes=self.max_frame_bytes)
            frames: list = []
            deadline = time.monotonic() + self.handshake_timeout
            while not frames:
                if time.monotonic() > deadline:
                    raise TransportClosed(
                        f"{self.name!r}: handshake timed out"
                    )
                data = sock.recv(65536)
                if not data:
                    raise ConnectionResetError("peer closed during handshake")
                frames = decoder.feed(data)
            ack = frames.pop(0)
            if not isinstance(ack, HelloAck):
                raise WireError(
                    f"{self.name!r}: expected HelloAck, got {ack!r}"
                )
            if not ack.ok:
                raise HandshakeRefused(
                    f"{self.name!r}: listener refused the handshake: "
                    f"{ack.reason}"
                )
        except BaseException:
            sock.close()
            raise
        sock.setblocking(False)
        self._sock = sock
        self._decoder = decoder
        self._registered_events = selectors.EVENT_READ
        self._selector.register(sock, self._registered_events)
        self._last_recv = time.monotonic()
        self._last_send = time.monotonic()
        # Payload frames may ride in right behind the ack.
        self._route(frames)
        if self._ever_connected:
            self.reconnects += 1
        self._ever_connected = True

    def _ensure_connected(self, *, alive=None, deadline=None) -> None:
        if self.connected:
            return
        if self._closed:
            raise TransportClosed(f"{self.name!r} is closed")
        backoff = 0.05
        give_up = time.monotonic() + self.connect_timeout
        if deadline is not None:
            give_up = min(give_up, deadline)
        while True:
            if alive is not None and not alive():
                raise TransportClosed(
                    f"peer of {self.name!r} died before the connection "
                    "could be established"
                )
            try:
                self._connect_once(min(backoff * 4, 2.0))
                return
            except (HandshakeRefused, WireError):
                raise
            except (OSError, TransportClosed):
                if time.monotonic() >= give_up:
                    raise TransportClosed(
                        f"{self.name!r} could not connect to "
                        f"{self.address} within {self.connect_timeout:.1f}s"
                    ) from None
                time.sleep(min(backoff, max(0.0, give_up - time.monotonic())))
                backoff = min(backoff * 2, MAX_BACKOFF)

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def _route(self, frames) -> None:
        for frame in frames:
            if isinstance(frame, Ping):
                continue  # liveness only; _last_recv already refreshed
            self._inbound.append(frame)

    def _want_events(self) -> int:
        events = selectors.EVENT_READ
        if self._outbox:
            events |= selectors.EVENT_WRITE
        return events

    def pump(self, timeout: float = 0.0) -> bool:
        """Advance socket I/O; True when any frame or byte progressed.

        Public so single-threaded tests (and the worker's idle loop)
        can interleave endpoints explicitly.  ``timeout`` bounds the
        selector wait, not the work done.
        """
        if not self.connected:
            return False
        now = time.monotonic()
        # Heartbeat: queue a ping when the send side has been idle.
        if (
            not self._outbox
            and now - self._last_send >= self.heartbeat_interval
        ):
            self._outbox.push(
                encode_frame(Ping(), max_bytes=self.max_frame_bytes),
                control=True,
            )
        if (
            self.heartbeat_timeout is not None
            and now - self._last_recv > self.heartbeat_timeout
        ):
            self._drop_connection()  # silent peer: force a re-dial
            return True
        events = self._want_events()
        if events != self._registered_events:
            self._selector.modify(self._sock, events)
            self._registered_events = events
        ready = self._selector.select(timeout)
        progressed = False
        readable = any(mask & selectors.EVENT_READ for _, mask in ready)
        if readable:
            progressed |= self._read_ready()
        if self.connected and self._outbox:
            progressed |= self._flush_some()
        return progressed

    def _read_ready(self) -> bool:
        progressed = False
        while self.connected:
            try:
                data = self._sock.recv(1 << 18)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop_connection()
                return True
            if not data:
                self._drop_connection()
                return True
            self._last_recv = time.monotonic()
            progressed = True
            try:
                self._route(self._decoder.feed(data))
            except WireError:
                self._drop_connection()
                raise
            if len(data) < (1 << 18):
                break
        self._maybe_sever_recv()
        return progressed

    def _flush_some(self) -> bool:
        progressed = False
        while self.connected and self._outbox:
            buffers = self._outbox.buffers()
            try:
                written = self._sock.sendmsg(buffers)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop_connection()
                return True
            if written:
                self._last_send = time.monotonic()
                self._outbox.advance(written)
                progressed = True
            else:  # pragma: no cover - defensive
                break
        return progressed

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def _maybe_die(self) -> None:
        limit = self.fault.get("kill_after_sends")
        if limit is None or self.sent < int(limit):
            return
        marker = self.fault.get("once_marker")
        if marker is not None and not create_once(marker):
            return
        import os

        from repro.dist.transport import FAULT_EXIT_CODE

        os._exit(FAULT_EXIT_CODE)

    def _maybe_sever_send(self) -> None:
        limit = self.fault.get("sever_after_sends")
        if limit is None or self.sent < int(limit) or not self.connected:
            return
        marker = self.fault.get("sever_marker")
        if marker is not None and not create_once(marker):
            return
        self._severed_sends += 1
        self._drop_connection()

    def _maybe_sever_recv(self) -> None:
        limit = self.fault.get("sever_after_recvs")
        if limit is None or self.received < int(limit) or not self.connected:
            return
        marker = self.fault.get("sever_marker")
        if marker is not None and not create_once(marker):
            return
        self._drop_connection()

    # ------------------------------------------------------------------
    # The QueueTransport surface
    # ------------------------------------------------------------------
    def send(self, frame, *, alive=None, timeout: float | None = None) -> None:
        """Queue ``frame`` and block until the kernel accepted its bytes.

        Blocking here *is* the backpressure: a stalled peer fills the
        socket buffers and the send waits, polling ``alive`` and
        honoring ``timeout`` exactly like the queue transport (on
        timeout the frame stays queued and a later send or pump
        completes it — wire streams cannot un-send a partial frame).
        """
        if self._closed:
            raise TransportClosed(f"{self.name!r} is closed")
        delay = self.fault.get("delay_send")
        if delay:
            time.sleep(float(delay))
        self._maybe_die()
        self._maybe_sever_send()
        drop = self.fault.get("drop_sends")
        if drop is not None and self.dropped_frames < int(drop):
            self.dropped_frames += 1
            return
        entry = self._outbox.push(
            encode_frame(frame, max_bytes=self.max_frame_bytes)
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        blocked_at = None
        while not entry["done"]:
            if not self.connected:
                self._ensure_connected(alive=alive, deadline=deadline)
            self.pump(self.poll_interval if blocked_at is not None else 0.0)
            if entry["done"]:
                break
            if blocked_at is None:
                blocked_at = time.monotonic()
                self.blocked_sends += 1
            if alive is not None and not alive():
                self.blocked_seconds += time.monotonic() - blocked_at
                raise TransportClosed(
                    f"peer of {self.name!r} died while the socket was full"
                )
            if deadline is not None and time.monotonic() >= deadline:
                self.blocked_seconds += time.monotonic() - blocked_at
                raise TransportClosed(
                    f"send on {self.name!r} timed out under backpressure"
                )
        if blocked_at is not None:
            self.blocked_seconds += time.monotonic() - blocked_at
        self.sent += 1

    def recv(self, *, alive=None, timeout: float | None = None):
        """Next frame, or ``None`` when ``timeout`` expires.

        Reconnects severed connections transparently; raises
        :class:`TransportClosed` when ``alive()`` reports the peer dead
        (after one last drain) or reconnection is refused.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._inbound:
                return self._take_inbound()
            if self._closed:
                raise TransportClosed(f"{self.name!r} is closed")
            if not self.connected:
                if alive is not None and not alive():
                    raise TransportClosed(
                        f"peer of {self.name!r} died with the connection down"
                    )
                self._ensure_connected(alive=alive, deadline=deadline)
                continue
            self.pump(self.poll_interval)
            if self._inbound:
                continue
            if alive is not None and not alive():
                self.pump(0.0)  # one last non-blocking look
                if self._inbound:
                    continue
                raise TransportClosed(
                    f"peer of {self.name!r} died with the stream empty"
                )
            if deadline is not None and time.monotonic() >= deadline:
                return None

    def try_recv(self):
        """Non-blocking :meth:`recv`; ``None`` when nothing is ready."""
        if not self._inbound and self.connected:
            self.pump(0.0)
        if self._inbound:
            return self._take_inbound()
        return None

    def _take_inbound(self):
        frame = self._inbound.pop(0)
        self.received += 1
        delay = self.fault.get("delay_recv")
        if delay:
            time.sleep(float(delay))
        return frame

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Instrumentation counters (JSON-ready), queue surface + wire."""
        return {
            "sent": int(self.sent),
            "received": int(self.received),
            "blocked_sends": int(self.blocked_sends),
            "blocked_seconds": float(self.blocked_seconds),
            "reconnects": int(self.reconnects),
            "dropped_frames": int(self.dropped_frames),
        }

    def close(self, *, linger: float = 5.0) -> None:
        """Flush what the kernel will take, then close the socket."""
        if self._closed:
            return
        deadline = time.monotonic() + linger
        while (
            self.connected and self._outbox
            and time.monotonic() < deadline
        ):
            self.pump(self.poll_interval)
        self._drop_connection()
        self._selector.close()
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.connected else "disconnected"
        return (
            f"SocketTransport({self.name!r}, {state}, sent={self.sent}, "
            f"received={self.received}, reconnects={self.reconnects})"
        )
