"""Binary wire format for the TCP transport.

Every frame that crosses a socket is one length-prefixed record:

```
offset  size  field
0       2     magic  b"RN"
2       1     format version (1)
3       1     frame kind (the _KIND_* byte of the frame class)
4       4     payload length, little-endian uint32
8       4     CRC-32 of the payload, little-endian uint32
12      ...   payload
```

The payload of a non-empty frame is a 4-byte little-endian meta length,
a UTF-8 JSON *meta* document, and the raw bytes of every numpy array
the frame carries, concatenated in meta order.  The meta's ``arrays``
list records each array's dtype string (byte order explicit, so frames
decode across architectures) and shape.  Frames with no fields at all
(:class:`~repro.dist.messages.Shutdown`, :class:`Ping`) encode with a
genuinely zero-length payload.

**Zero-copy discipline.**  :func:`encode_frame` returns a list of
buffers — one small header+meta ``bytes`` followed by memoryviews of
the frame's (C-contiguous) arrays — so a transport can hand them to
``socket.sendmsg`` without ever copying array payloads.
:class:`FrameDecoder` reads each frame's payload into one dedicated
buffer (``recv``-chunk appends, no per-frame reassembly of fragments)
and every decoded array is a ``np.frombuffer`` view into it: one
materialization per frame, zero per-array copies.

Errors are typed (:class:`WireError` and its subclasses
:class:`FrameTooLarge` / :class:`ChecksumError`) and synchronous: a
corrupt header or payload raises on ``feed`` — it can never hang a
reader.  A decoder that raised is poisoned (the stream position is
unrecoverable) and refuses further feeds; transports respond by
dropping the connection.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import json
import struct
import zlib

import numpy as np

from repro.dist.messages import (
    IngestBatch,
    RoundSync,
    Shutdown,
    SiteAggregate,
    ThresholdUpdate,
    ValueReport,
)
from repro.errors import ExecutionError

__all__ = [
    "MAGIC",
    "VERSION",
    "HEADER",
    "MAX_FRAME_BYTES",
    "WireError",
    "FrameTooLarge",
    "ChecksumError",
    "Hello",
    "HelloAck",
    "Ping",
    "hello_mac",
    "make_hello",
    "encode_frame",
    "decode_payload",
    "FrameDecoder",
]

MAGIC = b"RN"
VERSION = 1

#: magic(2) | version(1) | kind(1) | payload_len(u32) | crc32(u32)
HEADER = struct.Struct("<2sBBII")
_META_LEN = struct.Struct("<I")

#: Default ceiling on a single frame's payload.  Large enough for a
#: 10k-event MUNIN ingest chunk (~83 MB), small enough that a corrupt
#: length field is caught instead of allocating the advertised garbage.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class WireError(ExecutionError):
    """The byte stream violates the wire format."""


class FrameTooLarge(WireError):
    """A frame's declared payload exceeds the configured maximum."""


class ChecksumError(WireError):
    """A frame's payload does not match its CRC-32."""


# ----------------------------------------------------------------------
# Control frames (never seen by the dist layer; the transport's own
# vocabulary for handshake and liveness).
# ----------------------------------------------------------------------
class Hello:
    """Dialer -> listener: identify this connection.

    ``channel`` names the logical direction (``"inbox"`` or
    ``"reports"``), ``incarnation`` the worker respawn generation — the
    listener rejects stale incarnations so a SIGKILLed worker's lingering
    socket can never impersonate its replacement — and ``coordinator``
    the coordinator's own restart generation (bumped by crash recovery,
    see ``docs/recovery.md``), so a worker spawned by a dead coordinator
    life is refused by its successor.

    The per-session secret token never crosses the wire: ``mac`` is an
    HMAC-SHA256 over the identity fields keyed by the token (see
    :func:`hello_mac`), which both authenticates the dialer and binds
    the claimed identity — an observer of one handshake cannot replay
    it as a different worker/channel/incarnation.
    """

    __slots__ = ("worker", "incarnation", "channel", "mac", "coordinator")

    def __init__(self, worker: int, incarnation: int, channel: str,
                 mac: str = "", coordinator: int = 0) -> None:
        self.worker = int(worker)
        self.incarnation = int(incarnation)
        self.channel = str(channel)
        self.mac = str(mac)
        self.coordinator = int(coordinator)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hello(worker={self.worker}, incarnation={self.incarnation}, "
            f"channel={self.channel!r}, coordinator={self.coordinator})"
        )


def hello_mac(token: str, worker: int, incarnation: int, channel: str,
              coordinator: int = 0) -> str:
    """The HMAC-SHA256 a valid :class:`Hello` must carry.

    Keyed by the session token, over the identity fields the listener
    authorizes — so the token itself stays off the wire and a captured
    Hello cannot be replayed under a different identity.
    """
    message = (
        f"{int(worker)}|{int(incarnation)}|{str(channel)}|{int(coordinator)}"
    ).encode("utf-8")
    return _hmac.new(
        str(token).encode("utf-8"), message, hashlib.sha256
    ).hexdigest()


def make_hello(token: str, worker: int, incarnation: int, channel: str,
               coordinator: int = 0) -> Hello:
    """A correctly MAC-signed :class:`Hello` for the given identity."""
    return Hello(
        worker, incarnation, channel,
        mac=hello_mac(token, worker, incarnation, channel, coordinator),
        coordinator=coordinator,
    )


class HelloAck:
    """Listener -> dialer: accept or reject a :class:`Hello`."""

    __slots__ = ("ok", "reason")

    def __init__(self, ok: bool, reason: str = "") -> None:
        self.ok = bool(ok)
        self.reason = str(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HelloAck(ok={self.ok}, reason={self.reason!r})"


class Ping:
    """Either direction: heartbeat; refreshes liveness, carries nothing."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Ping()"


# ----------------------------------------------------------------------
# Frame registry: kind byte <-> (encode to meta+arrays, decode back)
# ----------------------------------------------------------------------
def _encode_ingest(frame: IngestBatch):
    return {"seq": frame.seq}, [frame.data, frame.site_ids]


def _decode_ingest(meta, arrays):
    return IngestBatch(meta["seq"], arrays[0], arrays[1])


def _encode_report(frame: ValueReport):
    meta = {
        "worker": frame.worker,
        "seq": frame.seq,
        "state": frame.state,
        "aggregates": [
            {"site": a.site, "n_events": a.n_events} for a in frame.aggregates
        ],
    }
    arrays = []
    for aggregate in frame.aggregates:
        arrays.append(aggregate.counter_ids)
        arrays.append(aggregate.counts)
    return meta, arrays


def _decode_report(meta, arrays):
    aggregates = [
        SiteAggregate(
            entry["site"], arrays[2 * i], arrays[2 * i + 1], entry["n_events"]
        )
        for i, entry in enumerate(meta["aggregates"])
    ]
    return ValueReport(meta["worker"], meta["seq"], aggregates, meta["state"])


def _encode_threshold(frame: ThresholdUpdate):
    return {"seq": frame.seq, "rounds": frame.rounds}, []


def _decode_threshold(meta, arrays):
    return ThresholdUpdate(meta["seq"], meta["rounds"])


def _encode_sync(frame: RoundSync):
    return {"worker": frame.worker, "acked": frame.acked}, []


def _decode_sync(meta, arrays):
    return RoundSync(meta["worker"], meta["acked"])


def _encode_hello(frame: Hello):
    return {
        "worker": frame.worker,
        "incarnation": frame.incarnation,
        "channel": frame.channel,
        "mac": frame.mac,
        "coordinator": frame.coordinator,
    }, []


def _decode_hello(meta, arrays):
    return Hello(
        meta["worker"], meta["incarnation"], meta["channel"],
        meta.get("mac", ""), meta.get("coordinator", 0),
    )


def _encode_hello_ack(frame: HelloAck):
    return {"ok": frame.ok, "reason": frame.reason}, []


def _decode_hello_ack(meta, arrays):
    return HelloAck(meta["ok"], meta.get("reason", ""))


def _encode_empty(frame):
    return {}, []


#: type -> (kind byte, encoder); kind byte -> decoder.
_ENCODERS = {
    IngestBatch: (1, _encode_ingest),
    ValueReport: (2, _encode_report),
    ThresholdUpdate: (3, _encode_threshold),
    RoundSync: (4, _encode_sync),
    Shutdown: (5, _encode_empty),
    Hello: (16, _encode_hello),
    HelloAck: (17, _encode_hello_ack),
    Ping: (18, _encode_empty),
}

_DECODERS = {
    1: _decode_ingest,
    2: _decode_report,
    3: _decode_threshold,
    4: _decode_sync,
    5: lambda meta, arrays: Shutdown(),
    16: _decode_hello,
    17: _decode_hello_ack,
    18: lambda meta, arrays: Ping(),
}


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_frame(frame, *, max_bytes: int = MAX_FRAME_BYTES) -> list:
    """Serialize ``frame`` into a list of send buffers.

    The first element is one ``bytes`` holding header, meta length, and
    meta JSON; the rest are memoryviews of the frame's arrays (made
    C-contiguous, which copies only if the input was not).  Suitable for
    ``socket.sendmsg`` or ``b"".join``.
    """
    try:
        kind, encoder = _ENCODERS[type(frame)]
    except KeyError:
        raise WireError(
            f"cannot encode {type(frame).__name__!r}: not a wire frame"
        ) from None
    meta, arrays = encoder(frame)
    buffers = []
    if meta or arrays:
        specs = []
        for array in arrays:
            array = np.ascontiguousarray(array)
            specs.append({"dtype": array.dtype.str, "shape": list(array.shape)})
            # memoryview.cast rejects zero-size shapes; an empty array
            # contributes zero payload bytes either way.
            buffers.append(
                memoryview(array).cast("B") if array.size
                else memoryview(b"")
            )
        meta = dict(meta)
        meta["arrays"] = specs
        try:
            meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise WireError(
                f"frame meta of {type(frame).__name__} is not "
                f"JSON-serializable: {exc}"
            ) from exc
        prefix = _META_LEN.pack(len(meta_bytes)) + meta_bytes
        payload_len = len(prefix) + sum(b.nbytes for b in buffers)
        crc = zlib.crc32(prefix)
        for buffer in buffers:
            crc = zlib.crc32(buffer, crc)
    else:
        prefix = b""
        payload_len = 0
        crc = 0
    if payload_len > max_bytes:
        raise FrameTooLarge(
            f"{type(frame).__name__} payload is {payload_len} bytes, over "
            f"the {max_bytes}-byte frame limit"
        )
    header = HEADER.pack(MAGIC, VERSION, kind, payload_len, crc)
    return [header + prefix] + buffers


def decode_payload(kind: int, payload) -> object:
    """Rebuild a frame from its kind byte and payload buffer.

    ``payload`` must be a writable buffer (the decoder hands over a
    ``memoryview`` of a dedicated ``bytearray``); decoded arrays are
    zero-copy views into it.
    """
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise WireError(f"unknown frame kind {kind}")
    view = memoryview(payload)
    if view.nbytes == 0:
        return decoder({}, [])
    if view.nbytes < _META_LEN.size:
        raise WireError("truncated frame payload: no meta length")
    (meta_len,) = _META_LEN.unpack_from(view, 0)
    offset = _META_LEN.size + meta_len
    if offset > view.nbytes:
        raise WireError("truncated frame payload: meta overruns the frame")
    try:
        meta = json.loads(bytes(view[_META_LEN.size:offset]))
    except ValueError as exc:
        raise WireError(f"frame meta is not valid JSON: {exc}") from exc
    arrays = []
    for spec in meta.get("arrays", ()):
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(s) for s in spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset + nbytes > view.nbytes:
            raise WireError(
                "truncated frame payload: array overruns the frame"
            )
        arrays.append(
            np.frombuffer(view, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
                          offset=offset).reshape(shape)
        )
        offset += nbytes
    if offset != view.nbytes:
        raise WireError(
            f"frame payload has {view.nbytes - offset} trailing bytes"
        )
    return decoder(meta, arrays)


# ----------------------------------------------------------------------
# Streaming decode
# ----------------------------------------------------------------------
class FrameDecoder:
    """Reassemble frames from an arbitrary chunking of the byte stream.

    ``feed`` accepts whatever a socket read produced — one byte or a
    megabyte — and returns every frame completed by it.  Header bytes
    accumulate in a 12-byte scratch; payload bytes go straight into one
    ``bytearray`` sized from the header, so a frame split across many
    reads is still materialized exactly once.
    """

    def __init__(self, *, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._header = bytearray()
        self._payload: bytearray | None = None
        self._filled = 0
        self._kind = 0
        self._crc = 0
        self._poisoned = False
        #: Total frames decoded (diagnostics).
        self.frames_decoded = 0

    def _fail(self, error: WireError):
        # After a format error the stream position is meaningless; the
        # transport must drop the connection and resynchronize by
        # reconnecting.
        self._poisoned = True
        raise error

    def feed(self, data) -> list:
        """Consume ``data``; return the frames it completed (in order)."""
        if self._poisoned:
            self._fail(WireError(
                "decoder already failed; reconnect to resynchronize"
            ))
        view = memoryview(data).cast("B")
        frames = []
        while view.nbytes:
            if self._payload is None:
                take = min(HEADER.size - len(self._header), view.nbytes)
                self._header += view[:take]
                view = view[take:]
                if len(self._header) < HEADER.size:
                    break
                magic, version, kind, length, crc = HEADER.unpack(
                    bytes(self._header)
                )
                if magic != MAGIC:
                    self._fail(WireError(
                        f"bad frame magic {magic!r}; peer is not speaking "
                        "the repro wire protocol"
                    ))
                if version != VERSION:
                    self._fail(WireError(
                        f"unsupported wire version {version} (expected "
                        f"{VERSION})"
                    ))
                if length > self.max_bytes:
                    self._fail(FrameTooLarge(
                        f"incoming frame declares {length} payload bytes, "
                        f"over the {self.max_bytes}-byte limit"
                    ))
                self._kind, self._crc = kind, crc
                self._payload = bytearray(length)
                self._filled = 0
            room = len(self._payload) - self._filled
            take = min(room, view.nbytes)
            if take:
                self._payload[self._filled:self._filled + take] = view[:take]
                self._filled += take
                view = view[take:]
            if self._filled == len(self._payload):
                payload = self._payload
                self._header.clear()
                self._payload = None
                if zlib.crc32(payload) != self._crc:
                    self._fail(ChecksumError(
                        f"frame kind {self._kind} failed its CRC-32 check "
                        f"({len(payload)} payload bytes)"
                    ))
                try:
                    frames.append(decode_payload(self._kind, payload))
                except WireError as exc:
                    self._fail(exc)
                self.frames_decoded += 1
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes of the in-progress frame buffered so far."""
        if self._payload is None:
            return len(self._header)
        return HEADER.size + self._filled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameDecoder(decoded={self.frames_decoded}, "
            f"pending={self.pending_bytes})"
        )
