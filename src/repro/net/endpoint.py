"""Coordinator-side TCP endpoint: listener, handshake, channels.

One :class:`Listener` serves every worker of a
:class:`~repro.dist.coordinator.DistributedSession`: it owns the single
listening socket, a shared :mod:`selectors` loop over all accepted
connections, and a registry of :class:`CoordinatorChannel` objects — the
coordinator-side peers of the workers'
:class:`~repro.net.transport.SocketTransport` ends, speaking the same
``QueueTransport`` surface (``send``/``recv``/``try_recv``/``stats``)
the coordinator event loop already drives.

**Handshake.**  A dialer's first frame must be a
:class:`~repro.net.wire.Hello` carrying worker id, respawn incarnation,
channel name (``"inbox"``/``"reports"``), the coordinator's restart
incarnation, and an HMAC-SHA256 over all of them keyed by the session
token (the token never crosses the wire; see
:func:`~repro.net.wire.hello_mac`).  The listener verifies the MAC with
``hmac.compare_digest`` and accepts only the *expected* worker
incarnation of a registered channel under its *own* coordinator
incarnation: a SIGKILLed worker's lingering socket, a delayed reconnect
from a dead incarnation, a forged or replayed Hello, or a worker from a
pre-recovery coordinator life is refused with a
:class:`~repro.net.wire.HelloAck` and closed, so it can never wedge or
impersonate the replacement — the per-incarnation-queue guarantee of
the queue runtime, enforced at the socket layer.

**Disruption tracking.**  Whenever an authenticated connection is lost
(EOF, reset, wire error) or replaced by a re-dial, the owning worker id
lands in the *disrupted* set.  The coordinator drains it via
:meth:`Listener.take_disrupted` and replays that worker's unreported
rounds — the recovery that makes in-flight frame loss on a severed
connection invisible to the conformance contract (reports are
deduplicated per round, aggregates are pure functions of the
sub-batch).

**Fault injection.**  ``channel_faults`` maps ``(worker, channel)`` to
a declarative spec; beyond the shared ``delay_send``/``delay_recv``
keys it understands

``discard_frames``
    Drop the first N decoded payload frames on this channel *and sever
    the connection* — deterministic in-flight loss, the adversarial
    case the replay path exists for.
"""

from __future__ import annotations

import hmac
import secrets
import selectors
import socket
import time

from repro.dist.transport import POLL_INTERVAL, TransportClosed
from repro.net.transport import SendQueue, apply_sockopts
from repro.net.wire import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    Hello,
    HelloAck,
    Ping,
    WireError,
    encode_frame,
    hello_mac,
)


class _Connection:
    """One accepted socket: decoder, registration mask, owning channel."""

    __slots__ = ("sock", "decoder", "channel", "events")

    def __init__(self, sock, decoder) -> None:
        self.sock = sock
        self.decoder = decoder
        self.channel: CoordinatorChannel | None = None
        self.events = selectors.EVENT_READ


class Listener:
    """The coordinator's accept loop and connection registry.

    Parameters
    ----------
    host / port:
        Bind address; port 0 (the default) picks an ephemeral port —
        read it back from :attr:`address`.  ``host="0.0.0.0"`` binds
        every interface (the cross-host deployment knob).
    advertise:
        The hostname/IP workers should *dial*, when it differs from the
        bind address — binding ``0.0.0.0`` yields an undialable
        wildcard, and a NAT'd or multi-homed coordinator may be
        reachable under a different name than it binds.  :attr:`address`
        carries the advertised host; :attr:`bound_address` the socket's
        actual one.
    token:
        Session secret keying every :class:`~repro.net.wire.Hello`'s
        HMAC (the token itself never crosses the wire); generated when
        omitted.
    incarnation:
        This coordinator's restart generation.  Hellos carrying any
        other ``coordinator`` value are refused — a worker spawned by a
        dead coordinator life cannot attach to its recovered successor
        (see ``docs/recovery.md``).
    poll_interval:
        Default liveness-poll cadence handed to channels.
    sockbuf:
        When set, shrink ``SO_SNDBUF``/``SO_RCVBUF`` on the listening
        socket (inherited by accepted connections, so the receive
        window is narrow from the SYN) — the backpressure test hook.
    channel_faults:
        ``(worker, channel) -> fault`` specs (module docstring).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        advertise: str | None = None,
        token: str | None = None,
        incarnation: int = 0,
        poll_interval: float | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        sockbuf: int | None = None,
        channel_faults: dict | None = None,
    ) -> None:
        self.token = token if token is not None else secrets.token_hex(16)
        self.incarnation = int(incarnation)
        self.poll_interval = (
            POLL_INTERVAL if poll_interval is None else float(poll_interval)
        )
        self.max_frame_bytes = int(max_frame_bytes)
        self.sockbuf = None if sockbuf is None else int(sockbuf)
        self._channel_faults = dict(channel_faults or {})
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if self.sockbuf:
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, self.sockbuf
            )
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_SNDBUF, self.sockbuf
            )
        self._sock.bind((host, port))
        self._sock.listen(64)
        self._sock.setblocking(False)
        #: The socket's actual ``(host, port)``.
        self.bound_address = self._sock.getsockname()
        #: The ``(host, port)`` workers dial: the advertised host (when
        #: given) with the bound port — binding ``0.0.0.0`` needs a
        #: dialable name, and a NAT'd coordinator may advertise one that
        #: differs from any local interface.
        self.address = (
            (str(advertise), self.bound_address[1])
            if advertise is not None else self.bound_address
        )
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._sock, selectors.EVENT_READ, None)
        self._connections: set[_Connection] = set()
        #: (worker, channel name) -> channel object.
        self._channels: dict[tuple[int, str], CoordinatorChannel] = {}
        #: worker -> the only incarnation whose Hello is accepted.
        self._expected: dict[int, int] = {}
        self._disrupted: set[int] = set()
        self._closed = False
        #: Diagnostics (JSON-ready via :meth:`stats`).
        self.accepted = 0
        self.refused = 0
        self.replacements = 0
        self.wire_errors = 0
        self.discarded_frames = 0

    # ------------------------------------------------------------------
    # Channel registry
    # ------------------------------------------------------------------
    def open_channel(
        self, worker: int, channel: str, incarnation: int, *,
        name: str | None = None, fault: dict | None = None,
    ) -> "CoordinatorChannel":
        """Register (or replace) the channel for one worker direction.

        Replacing an existing channel — a worker respawn — closes the
        old one and its connection outright: the new incarnation starts
        from a clean stream, and the old incarnation's Hello is refused
        from now on (``incarnation`` becomes the only accepted value
        for this worker).
        """
        key = (int(worker), str(channel))
        old = self._channels.get(key)
        if old is not None:
            old.close()
        if fault is None:
            fault = self._channel_faults.get(key)
        chan = CoordinatorChannel(
            self, key,
            name=name or f"worker-{key[0]}.{key[1]}",
            fault=fault,
        )
        self._channels[key] = chan
        self._expected[key[0]] = int(incarnation)
        return chan

    def take_disrupted(self) -> set[int]:
        """Workers whose connection was lost/replaced since the last call."""
        disrupted, self._disrupted = self._disrupted, set()
        return disrupted

    def waitables(self) -> list:
        """Sockets a caller can pass to ``multiprocessing.connection.wait``."""
        out = [self._sock]
        out.extend(c.sock for c in self._connections if c.sock is not None)
        return out

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def pump(self, timeout: float = 0.0) -> bool:
        """Accept, read, and flush everything ready; True on progress."""
        if self._closed:
            return False
        for chan in self._channels.values():
            chan._sync_write_interest()
        ready = self._selector.select(timeout)
        progressed = False
        for key, mask in ready:
            conn = key.data
            if conn is None:
                progressed |= self._accept_ready()
                continue
            if mask & selectors.EVENT_READ:
                progressed |= self._read_conn(conn)
            if (
                mask & selectors.EVENT_WRITE
                and conn.sock is not None
                and conn.channel is not None
            ):
                progressed |= conn.channel._flush_some()
        return progressed

    def _accept_ready(self) -> bool:
        progressed = False
        while True:
            try:
                sock, _ = self._sock.accept()
            except (BlockingIOError, InterruptedError):
                return progressed
            except OSError:  # pragma: no cover - defensive
                return progressed
            progressed = True
            self.accepted += 1
            sock.setblocking(False)
            apply_sockopts(sock)
            conn = _Connection(
                sock, FrameDecoder(max_bytes=self.max_frame_bytes)
            )
            self._selector.register(sock, conn.events, conn)
            self._connections.add(conn)

    def _read_conn(self, conn: _Connection) -> bool:
        progressed = False
        while conn.sock is not None:
            try:
                data = conn.sock.recv(1 << 18)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop_conn(conn, disrupt=True)
                return True
            if not data:
                # EOF: a half-written trailing frame (SIGKILL mid-send)
                # is discarded with the decoder — the replay path covers
                # whatever it carried.
                self._drop_conn(conn, disrupt=True)
                return True
            progressed = True
            try:
                frames = conn.decoder.feed(data)
            except WireError:
                self.wire_errors += 1
                self._drop_conn(conn, disrupt=True)
                return True
            for frame in frames:
                if conn.sock is None:
                    break  # severed mid-batch: later frames are "lost"
                self._route(conn, frame)
            if len(data) < (1 << 18):
                break
        return progressed

    def _route(self, conn: _Connection, frame) -> None:
        if conn.channel is None:
            self._handshake(conn, frame)
            return
        if isinstance(frame, Ping):
            return  # liveness only; never counted
        fault = conn.channel.fault
        limit = fault.get("discard_frames")
        if limit is not None and conn.channel.discarded < int(limit):
            conn.channel.discarded += 1
            self.discarded_frames += 1
            self._drop_conn(conn, disrupt=True)
            return
        conn.channel._inbound.append(frame)

    def _handshake(self, conn: _Connection, frame) -> None:
        if not isinstance(frame, Hello):
            self.wire_errors += 1
            self._drop_conn(conn, disrupt=False)
            return
        key = (frame.worker, frame.channel)
        chan = self._channels.get(key)
        expected_mac = hello_mac(
            self.token, frame.worker, frame.incarnation, frame.channel,
            frame.coordinator,
        )
        if not hmac.compare_digest(expected_mac, frame.mac):
            reason = "bad handshake MAC (session token mismatch)"
        elif frame.coordinator != self.incarnation:
            reason = (
                f"stale coordinator incarnation {frame.coordinator} "
                f"(this coordinator is incarnation {self.incarnation})"
            )
        elif chan is None or chan.closed:
            reason = f"unknown channel {key!r}"
        elif frame.incarnation != self._expected.get(frame.worker):
            reason = (
                f"stale incarnation {frame.incarnation} of worker "
                f"{frame.worker} (expected "
                f"{self._expected.get(frame.worker)})"
            )
        else:
            reason = None
        ack = HelloAck(reason is None, reason or "")
        try:
            conn.sock.setblocking(True)
            conn.sock.sendall(b"".join(encode_frame(ack)))
            conn.sock.setblocking(False)
        except OSError:
            self._drop_conn(conn, disrupt=False)
            return
        if reason is not None:
            self.refused += 1
            self._drop_conn(conn, disrupt=False)
            return
        conn.channel = chan
        chan._attach(conn)

    def _drop_conn(self, conn: _Connection, *, disrupt: bool) -> None:
        if conn.sock is None:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover - defensive
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        conn.sock = None
        self._connections.discard(conn)
        if conn.channel is not None:
            conn.channel._detach(conn)
            if disrupt:
                self._disrupted.add(conn.channel.key[0])

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Listener-level diagnostics (JSON-ready)."""
        return {
            "accepted": int(self.accepted),
            "refused": int(self.refused),
            "replacements": int(self.replacements),
            "wire_errors": int(self.wire_errors),
            "discarded_frames": int(self.discarded_frames),
        }

    def close(self) -> None:
        if self._closed:
            return
        for conn in list(self._connections):
            self._drop_conn(conn, disrupt=False)
        for chan in self._channels.values():
            chan.closed = True
        try:
            self._selector.unregister(self._sock)
        except (KeyError, ValueError):  # pragma: no cover - defensive
            pass
        self._sock.close()
        self._selector.close()
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Listener({self.address!r}, channels={len(self._channels)}, "
            f"connections={len(self._connections)})"
        )


class CoordinatorChannel:
    """The coordinator-side peer of one worker direction.

    Speaks the ``QueueTransport`` surface over whatever connection the
    :class:`Listener` has currently assigned to it.  Unlike the dialer
    side it never initiates connections: between the worker's dials the
    channel simply queues outbound frames (``send`` keeps blocking with
    the usual ``alive``/``timeout`` semantics) and replays the head
    frame from its first byte once a connection attaches.

    ``send`` tracks in-flight frames by identity: the coordinator's
    retry loop re-sends the *same frame object* after a timeout, and a
    wire stream — unlike a queue — cannot un-send a partially written
    frame, so a retry resumes the pending entry instead of queueing a
    duplicate.
    """

    def __init__(
        self, listener: Listener, key: tuple[int, str], *,
        name: str, fault: dict | None = None,
    ) -> None:
        self.listener = listener
        self.key = key
        self.name = str(name)
        self.fault = dict(fault) if fault else {}
        self.poll_interval = listener.poll_interval
        self.sent = 0
        self.received = 0
        self.blocked_sends = 0
        self.blocked_seconds = 0.0
        #: Re-dials accepted onto this channel after its first connect.
        self.replacements = 0
        #: Frames eaten by the ``discard_frames`` fault.
        self.discarded = 0
        self.closed = False
        self._inbound: list = []
        self._outbox = SendQueue()
        self._pending: dict[int, dict] = {}
        self._conn: _Connection | None = None
        self._ever_connected = False

    # ------------------------------------------------------------------
    # Listener-side wiring
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._conn is not None

    def _attach(self, conn: _Connection) -> None:
        old, self._conn = self._conn, None
        if old is not None:
            # A re-dial replacing a connection the listener had not yet
            # seen die: drop the stale socket and flag the disruption.
            self.listener._drop_conn(old, disrupt=True)
        self._conn = conn
        self._outbox.rewind()
        if self._ever_connected:
            self.replacements += 1
            self.listener.replacements += 1
        self._ever_connected = True

    def _detach(self, conn: _Connection) -> None:
        if self._conn is conn:
            self._conn = None
            self._outbox.rewind()

    def _sync_write_interest(self) -> None:
        if self._conn is None or self._conn.sock is None:
            return
        events = selectors.EVENT_READ
        if self._outbox:
            events |= selectors.EVENT_WRITE
        if events != self._conn.events:
            self._conn.events = events
            self.listener._selector.modify(
                self._conn.sock, events, self._conn
            )

    def _flush_some(self) -> bool:
        progressed = False
        while self._conn is not None and self._outbox:
            try:
                written = self._conn.sock.sendmsg(self._outbox.buffers())
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.listener._drop_conn(self._conn, disrupt=True)
                return True
            if written:
                self._outbox.advance(written)
                progressed = True
            else:  # pragma: no cover - defensive
                break
        return progressed

    # ------------------------------------------------------------------
    # The QueueTransport surface
    # ------------------------------------------------------------------
    def send(self, frame, *, alive=None, timeout: float | None = None) -> None:
        """Queue ``frame``; block until the kernel accepted its bytes.

        Identity-tracked: re-sending a frame object whose previous send
        timed out resumes the pending entry (see class docstring).
        While blocked the *whole listener* is pumped, so reports from
        every worker keep draining into their channels and a worker
        blocked on its report send can always make progress — the same
        deadlock-freedom argument as the queue runtime's drain-while-
        blocked loop, enforced one layer lower.
        """
        if self.closed:
            raise TransportClosed(f"{self.name!r} is closed")
        delay = self.fault.get("delay_send")
        if delay:
            time.sleep(float(delay))
        entry = self._pending.get(id(frame))
        if entry is None:
            entry = self._outbox.push(
                encode_frame(frame, max_bytes=self.listener.max_frame_bytes)
            )
            self._pending[id(frame)] = entry
        deadline = None if timeout is None else time.monotonic() + timeout
        blocked_at = None
        while not entry["done"]:
            self.listener.pump(
                self.poll_interval if blocked_at is not None else 0.0
            )
            if entry["done"]:
                break
            if blocked_at is None:
                blocked_at = time.monotonic()
                self.blocked_sends += 1
            if alive is not None and not alive():
                self.blocked_seconds += time.monotonic() - blocked_at
                raise TransportClosed(
                    f"peer of {self.name!r} died while the socket was full"
                )
            if deadline is not None and time.monotonic() >= deadline:
                self.blocked_seconds += time.monotonic() - blocked_at
                raise TransportClosed(
                    f"send on {self.name!r} timed out under backpressure"
                )
        if blocked_at is not None:
            self.blocked_seconds += time.monotonic() - blocked_at
        del self._pending[id(frame)]
        self.sent += 1

    def recv(self, *, alive=None, timeout: float | None = None):
        """Next frame, or ``None`` when ``timeout`` expires."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._inbound:
                return self._take_inbound()
            if self.closed:
                raise TransportClosed(f"{self.name!r} is closed")
            self.listener.pump(self.poll_interval)
            if self._inbound:
                continue
            if alive is not None and not alive():
                self.listener.pump(0.0)  # one last non-blocking look
                if self._inbound:
                    continue
                raise TransportClosed(
                    f"peer of {self.name!r} died with the stream empty"
                )
            if deadline is not None and time.monotonic() >= deadline:
                return None

    def try_recv(self):
        """Non-blocking :meth:`recv`; ``None`` when nothing is buffered."""
        if self.closed:
            return None
        if not self._inbound:
            self.listener.pump(0.0)
        if self._inbound:
            return self._take_inbound()
        return None

    def _take_inbound(self):
        frame = self._inbound.pop(0)
        self.received += 1
        delay = self.fault.get("delay_recv")
        if delay:
            time.sleep(float(delay))
        return frame

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Instrumentation counters (JSON-ready), queue surface + wire."""
        return {
            "sent": int(self.sent),
            "received": int(self.received),
            "blocked_sends": int(self.blocked_sends),
            "blocked_seconds": float(self.blocked_seconds),
            "replacements": int(self.replacements),
            "discarded": int(self.discarded),
        }

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._conn is not None:
            self.listener._drop_conn(self._conn, disrupt=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.connected else "detached"
        return (
            f"CoordinatorChannel({self.name!r}, {state}, "
            f"sent={self.sent}, received={self.received})"
        )
