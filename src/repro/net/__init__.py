"""TCP transport subsystem for the distributed runtime.

The queue runtime of :mod:`repro.dist` reaches exactly as far as one
host; this package is the wire that takes the same coordinator/site
protocol across a network.  Three layers:

- :mod:`repro.net.wire` — length-prefixed, CRC-checked binary framing
  for the :mod:`repro.dist.messages` vocabulary, zero-copy for numpy
  payloads, plus the transport's own control frames (Hello/HelloAck/
  Ping).
- :mod:`repro.net.transport` — :class:`SocketTransport`, the
  dialer-side (site worker) end: the ``QueueTransport`` surface over a
  non-blocking socket with backpressure accounting, heartbeats, and
  exponential-backoff reconnect.
- :mod:`repro.net.endpoint` — :class:`Listener` and
  :class:`CoordinatorChannel`, the coordinator end: one accept loop,
  an incarnation-checked handshake, and disruption tracking that
  drives the coordinator's unreported-round replay.

``DistributedSession(..., transport="tcp")`` plugs the three together;
``docs/networking.md`` documents the wire format and the recovery
policies.
"""

from repro.net.endpoint import CoordinatorChannel, Listener
from repro.net.transport import (
    CONNECT_TIMEOUT,
    HEARTBEAT_INTERVAL,
    HandshakeRefused,
    SendQueue,
    SocketTransport,
)
from repro.net.wire import (
    MAX_FRAME_BYTES,
    ChecksumError,
    FrameDecoder,
    FrameTooLarge,
    Hello,
    HelloAck,
    Ping,
    WireError,
    decode_payload,
    encode_frame,
    hello_mac,
    make_hello,
)

__all__ = [
    "Listener",
    "CoordinatorChannel",
    "SocketTransport",
    "SendQueue",
    "HandshakeRefused",
    "HEARTBEAT_INTERVAL",
    "CONNECT_TIMEOUT",
    "encode_frame",
    "decode_payload",
    "FrameDecoder",
    "Hello",
    "HelloAck",
    "Ping",
    "hello_mac",
    "make_hello",
    "WireError",
    "FrameTooLarge",
    "ChecksumError",
    "MAX_FRAME_BYTES",
]
