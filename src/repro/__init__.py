"""repro — learning graphical models from a distributed stream.

A from-scratch reproduction of Zhang, Tirthapura & Cormode, *Learning
Graphical Models from a Distributed Stream* (ICDE 2018): communication-
efficient continuous maintenance of Bayesian-network parameters over a
stream horizontally partitioned across ``k`` sites.

Quickstart
----------
>>> from repro import EstimatorSpec, ForwardSampler, alarm
>>> net = alarm()
>>> spec = EstimatorSpec("alarm", "nonuniform", eps=0.1, n_sites=10, seed=0)
>>> session = spec.session()
>>> data = ForwardSampler(net, seed=1).sample(10_000)
>>> session.ingest(data)                      # sites from the partitioner
>>> probability = session.query(data[0])
>>> session.snapshot("/tmp/run.ckpt")         # resume later, anywhere:
>>> # session = MonitoringSession.restore("/tmp/run.ckpt")
"""

from repro.api import (
    EstimatorSpec,
    MonitoringSession,
    algorithm_names,
    counter_backend_names,
    register_algorithm,
    register_counter_backend,
)

from repro.bn import (
    BayesianNetwork,
    ForwardSampler,
    TabularCPD,
    Variable,
    VariableElimination,
    alarm,
    hepar2_like,
    link_family,
    link_like,
    munin_like,
    naive_bayes_network,
    network_by_name,
    new_alarm,
)
from repro.core import (
    ALGORITHMS,
    BayesianClassifier,
    StreamingMLEEstimator,
    make_estimator,
)
from repro.counters import (
    DeterministicCounterBank,
    ExactCounterBank,
    HYZCounterBank,
)
from repro.errors import ReproError
from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    RunResult,
    benchmark_hyz_engines,
    benchmark_ingest_stages,
    benchmark_update_strategies,
    classification_experiment,
    separation_experiment,
)
from repro.graph import DAG
from repro.monitoring import (
    ClusterCostModel,
    MessageLog,
    RoundRobinPartitioner,
    UniformPartitioner,
    ZipfPartitioner,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "DAG",
    "Variable",
    "TabularCPD",
    "BayesianNetwork",
    "ForwardSampler",
    "VariableElimination",
    "alarm",
    "new_alarm",
    "hepar2_like",
    "link_like",
    "link_family",
    "munin_like",
    "naive_bayes_network",
    "network_by_name",
    "ALGORITHMS",
    "StreamingMLEEstimator",
    "make_estimator",
    "EstimatorSpec",
    "MonitoringSession",
    "register_algorithm",
    "register_counter_backend",
    "algorithm_names",
    "counter_backend_names",
    "BayesianClassifier",
    "ExactCounterBank",
    "HYZCounterBank",
    "DeterministicCounterBank",
    "MessageLog",
    "UniformPartitioner",
    "RoundRobinPartitioner",
    "ZipfPartitioner",
    "ClusterCostModel",
    "ExperimentRunner",
    "ExperimentResult",
    "RunResult",
    "benchmark_hyz_engines",
    "benchmark_ingest_stages",
    "benchmark_update_strategies",
    "classification_experiment",
    "separation_experiment",
]
