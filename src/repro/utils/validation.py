"""Small argument-validation helpers shared across modules."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as an int, raising ``ValueError`` unless it is >= 1."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_fraction(value, name: str, *, inclusive: bool = False) -> float:
    """Validate that ``value`` lies in (0, 1), or [0, 1] if ``inclusive``."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    elif not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_probability_vector(values, name: str, *, atol: float = 1e-8) -> np.ndarray:
    """Validate a 1-D nonnegative vector summing to one.

    Returns the values as a float64 array.  Raises ``ReproError`` subclasses'
    base ``ValueError`` style errors for malformed input.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return arr


def require(condition: bool, error: ReproError) -> None:
    """Raise ``error`` unless ``condition`` holds."""
    if not condition:
        raise error
