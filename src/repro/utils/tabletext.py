"""Plain-text table rendering used by benchmarks and examples.

Benchmarks regenerate the paper's tables and figures as aligned text; this
module keeps that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
