"""Plain-text table and chart rendering used by benchmarks and examples.

Benchmarks regenerate the paper's tables and figures as aligned text; this
module keeps that formatting in one place: :func:`format_table` for
aligned tables and :func:`format_ascii_plot` for terminal scatter charts
(the ``figures`` subcommand renders ``BENCH_*.json`` documents with it).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


#: Per-series plot markers, assigned in series order; further series wrap.
PLOT_MARKERS = "ox+*sd^v"


def _tick(value: float) -> str:
    return f"{value:.3g}"


def _axis_transform(points: list[float], log: bool) -> tuple:
    """``(transform, lo, hi)`` for one axis; log only if all values > 0."""
    use_log = log and all(p > 0 for p in points)
    transform = math.log10 if use_log else float
    values = [transform(p) for p in points]
    lo, hi = min(values), max(values)
    if hi == lo:  # degenerate range: center the single column/row
        lo, hi = lo - 0.5, hi + 0.5
    return transform, lo, hi


def format_ascii_plot(
    series: "Mapping[str, Sequence[tuple[float, float]]]",
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
    logy: bool = False,
    hline: float | None = None,
) -> str:
    """Render named ``(x, y)`` point series as a terminal scatter chart.

    Each series gets a marker from :data:`PLOT_MARKERS` (legend below the
    chart); later series overwrite earlier ones on collisions.  ``logx``
    / ``logy`` switch an axis to log scale when every value on it is
    positive (silently falling back to linear otherwise, so callers can
    request log for stream-length axes without guarding zero).
    ``hline`` draws a horizontal reference line (e.g. ratio = 1).
    """
    width = max(16, int(width))
    height = max(4, int(height))
    named = [(name, list(points)) for name, points in series.items() if points]
    if not named:
        raise ValueError("nothing to plot: every series is empty")
    xs = [float(x) for _, points in named for x, _ in points]
    ys = [float(y) for _, points in named for _, y in points]
    if hline is not None:
        ys.append(float(hline))
    fx, x_lo, x_hi = _axis_transform(xs, logx)
    fy, y_lo, y_hi = _axis_transform(ys, logy)

    def column(x: float) -> int:
        return round((fx(x) - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((fy(y) - y_lo) / (y_hi - y_lo) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    if hline is not None:
        for c in range(width):
            grid[row(hline)][c] = "-"
    legend = []
    for rank, (name, points) in enumerate(named):
        marker = PLOT_MARKERS[rank % len(PLOT_MARKERS)]
        legend.append(f"  {marker} {name}")
        for x, y in points:
            grid[row(float(y))][column(float(x))] = marker

    use_logy = logy and all(v > 0 for v in ys)

    def value_at_row(r: int) -> float:
        transformed = y_lo + (height - 1 - r) / (height - 1) * (y_hi - y_lo)
        return 10.0 ** transformed if use_logy else transformed

    y_ticks = {
        r: _tick(value_at_row(r)) for r in (0, (height - 1) // 2, height - 1)
    }
    gutter = max(len(t) for t in y_ticks.values())
    parts = []
    if title:
        parts.append(title)
    parts.append(f"{y_label} ({'log' if use_logy else 'linear'})")
    for r, cells in enumerate(grid):
        tick = y_ticks.get(r, "")
        parts.append(f"{tick.rjust(gutter)} |{''.join(cells)}".rstrip())
    left = _tick(min(xs))
    right = _tick(max(xs))
    axis = f"{' ' * gutter} +{'-' * width}"
    scale = "log" if logx and min(xs) > 0 else "linear"
    span = f"{left} .. {right}"
    label = f"{x_label} ({scale}): {span}"
    parts.append(axis)
    parts.append(f"{' ' * gutter}  {label}")
    parts.extend(legend)
    return "\n".join(parts)
