"""Deterministic random-number management.

All stochastic components of the library (CPD generation, forward sampling,
stream partitioning, randomized counters) accept either an integer seed or a
:class:`numpy.random.Generator`.  :class:`RandomSource` wraps a root seed and
hands out independent child generators, so that two components seeded from
the same source never share a stream and experiments are reproducible
end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | RandomSource | None"


def restore_generator_state(
    rng: np.random.Generator, state: dict
) -> np.random.Generator:
    """A generator whose bit-generator state is ``state``.

    Reuses ``rng`` when its bit-generator class matches the captured
    state's; otherwise builds a fresh generator of the right class.
    Used by the snapshot protocol of the counter banks and stream
    partitioners.
    """
    name = state["bit_generator"]
    if type(rng.bit_generator).__name__ != name:
        bit_generator_cls = getattr(np.random, name, None)
        if bit_generator_cls is None:
            raise ValueError(f"cannot restore unknown bit generator {name!r}")
        rng = np.random.Generator(bit_generator_cls())
    rng.bit_generator.state = state
    return rng


def as_generator(seed) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int`` seed, an existing
    ``Generator`` (returned unchanged), or a :class:`RandomSource`
    (a child generator is spawned).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RandomSource):
        return seed.generator()
    return np.random.default_rng(seed)


class RandomSource:
    """A spawnable source of independent random generators.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws fresh OS entropy.

    Examples
    --------
    >>> source = RandomSource(7)
    >>> g1 = source.generator()
    >>> g2 = source.generator()
    >>> g1 is g2
    False
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed_seq = np.random.SeedSequence(seed)
        self._children_spawned = 0

    @property
    def entropy(self):
        """Root entropy of the underlying seed sequence."""
        return self._seed_seq.entropy

    def generator(self) -> np.random.Generator:
        """Spawn a new independent generator."""
        child = self._seed_seq.spawn(1)[0]
        self._children_spawned += 1
        return np.random.default_rng(child)

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Spawn ``n`` independent generators at once."""
        children = self._seed_seq.spawn(n)
        self._children_spawned += n
        return [np.random.default_rng(child) for child in children]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomSource(entropy={self._seed_seq.entropy!r}, "
            f"children={self._children_spawned})"
        )
