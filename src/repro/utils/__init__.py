"""Shared utilities: seeded RNG handling, validation, text tables."""

from repro.utils.rng import RandomSource, as_generator
from repro.utils.tabletext import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability_vector,
)

__all__ = [
    "RandomSource",
    "as_generator",
    "format_table",
    "check_fraction",
    "check_positive_int",
    "check_probability_vector",
]
