"""Paper-scenario presets built on the session API.

Two experiments that need more than a plain (algorithm, eps, k, m) grid:

- :func:`classification_experiment` — the Sec. V / Theorem 3 workload:
  train approximate estimators and EXACTMLE side by side on a two-layer
  Naive Bayes stream, then compare the *classifiers* they induce —
  agreement rate with the exact model's predictions and the error-rate
  gap (Definition 4 allows the approximate model to lose at most an
  ``eps`` margin).
- :func:`separation_experiment` — the Sec. IV-E NONUNIFORM-beats-UNIFORM
  example: on NEW-ALARM (a few domains inflated, as in Sec. VI) the
  optimal budget split only pays off in the *sampling* regime, i.e. long
  streams / large eps where counters leave exact mode; the preset sweeps
  the stream length and charts the message-ratio crossover.
- :func:`long_crossover_experiment` — the same NEW-ALARM ratio pushed
  past the crossover itself (m >~ 1M, beyond the default sweep), driven
  through the :class:`~repro.exec.chunked.ChunkedExecutor` so each long
  stream advances checkpoint-by-checkpoint through snapshot bundles and
  an interrupted invocation resumes instead of starting over.

All emit ``repro-bench-v1`` documents like every other subcommand.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import EstimatorSpec
from repro.bn.io import network_to_dict
from repro.bn.repository import naive_bayes_network, new_alarm
from repro.core.classification import BayesianClassifier
from repro.core.theory import separation_example
from repro.exec.base import make_executor
from repro.exec.task import RunTask
from repro.experiments.results import SCHEMA
from repro.experiments.runner import ExperimentRunner, checkpoint_schedule
from repro.monitoring.stream import UniformPartitioner
from repro.bn.sampling import ForwardSampler
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int

#: Class-variable name of the repository's Naive Bayes networks.
CLASS_VARIABLE = "C"


def classification_experiment(
    *,
    n_features: int = 12,
    class_cardinality: int = 3,
    feature_cardinality: int = 4,
    algorithms=("naive-bayes", "nonuniform"),
    eps: float = 0.1,
    n_sites: int = 10,
    n_events: int = 20_000,
    eval_events: int = 2_000,
    chunk_size: int = 10_000,
    hyz_engine: str = "vectorized",
    seed: int = 0,
) -> dict:
    """Train approximate vs exact sessions and compare their classifiers.

    Every algorithm (plus the ``exact`` reference) trains on the *same*
    stream with the same site assignment through its own
    :class:`~repro.api.session.MonitoringSession`; predictions for the
    class variable are compared on held-out events.  Returns a
    ``repro-bench-v1`` document whose per-algorithm rows report
    ``error_rate`` (vs the true labels), ``agreement_vs_exact``, the
    ``error_rate_gap`` against the exact model, and message totals.
    """
    check_positive_int(n_events, "n_events")
    check_positive_int(eval_events, "eval_events")
    net = naive_bayes_network(
        n_features=n_features,
        class_cardinality=class_cardinality,
        feature_cardinality=feature_cardinality,
    )
    source = RandomSource(seed)
    sampler = ForwardSampler(net, seed=source.generator())
    partitioner = UniformPartitioner(n_sites, seed=source.generator())
    eval_data = ForwardSampler(net, seed=source.generator()).sample(eval_events)

    names = ["exact", *[a for a in algorithms if a != "exact"]]
    sessions = {
        name: EstimatorSpec(
            network=net,
            algorithm=name,
            eps=eps,
            n_sites=n_sites,
            seed=seed,
            hyz_engine=hyz_engine,
        ).session()
        for name in names
    }
    produced = 0
    while produced < n_events:
        size = min(chunk_size, n_events - produced)
        batch = sampler.sample(size)
        sites = partitioner.assign(size)
        for session in sessions.values():
            session.ingest(batch, sites)
        produced += size

    targets = [CLASS_VARIABLE] * eval_data.shape[0]
    class_idx = net.variable_index(CLASS_VARIABLE)
    truth_labels = eval_data[:, class_idx]
    predictions = {
        name: session.classifier().predict_batch(targets, eval_data)
        for name, session in sessions.items()
    }
    truth_model_pred = BayesianClassifier(net).predict_batch(targets, eval_data)

    def error_rate(pred: np.ndarray) -> float:
        return float(np.mean(pred != truth_labels))

    exact_error = error_rate(predictions["exact"])
    results = []
    for name in names:
        session = sessions[name]
        entry = {
            "algorithm": name,
            "error_rate": error_rate(predictions[name]),
            "total_messages": int(session.total_messages),
            "messages_per_event": session.total_messages / n_events,
        }
        if name != "exact":
            entry["agreement_vs_exact"] = float(
                np.mean(predictions[name] == predictions["exact"])
            )
            entry["error_rate_gap"] = entry["error_rate"] - exact_error
        results.append(entry)
    return {
        "benchmark": "classification",
        "schema": SCHEMA,
        "params": {
            "network": net.name,
            "class_variable": CLASS_VARIABLE,
            "n_features": int(n_features),
            "class_cardinality": int(class_cardinality),
            "feature_cardinality": int(feature_cardinality),
            "algorithms": names,
            "eps": float(eps),
            "n_sites": int(n_sites),
            "n_events": int(n_events),
            "eval_events": int(eval_events),
            "hyz_engine": hyz_engine,
            "seed": int(seed),
            "ground_truth_error_rate": error_rate(truth_model_pred),
        },
        "results": results,
    }


def _uniform_vs_nonuniform(
    runner: ExperimentRunner,
    network,
    *,
    eps: float,
    n_sites: int,
    n_events: int,
    hyz_engine: str,
) -> dict:
    """Message totals of one UNIFORM/NONUNIFORM pair on a shared stream."""
    totals = {}
    for algorithm in ("uniform", "nonuniform"):
        run = runner.run_one(
            network,
            algorithm,
            eps=eps,
            n_sites=n_sites,
            n_events=n_events,
            checkpoints=1,
            hyz_engine=hyz_engine,
        )
        totals[algorithm] = run.total_messages
    return {
        "n_events": int(n_events),
        "uniform_messages": int(totals["uniform"]),
        "nonuniform_messages": int(totals["nonuniform"]),
        "uniform_over_nonuniform": float(
            totals["uniform"] / max(totals["nonuniform"], 1)
        ),
        "nonuniform_wins": bool(totals["nonuniform"] < totals["uniform"]),
    }


def separation_experiment(
    *,
    events_values=(10_000, 50_000, 150_000),
    eps: float = 0.4,
    n_sites: int = 10,
    inflated_count: int = 6,
    inflated_cardinality: int = 20,
    example_events: int = 200_000,
    example_variables: int = 20,
    example_j_large: int = 50,
    example_eps: float = 0.5,
    eval_events: int = 200,
    hyz_engine: str = "vectorized",
    seed: int = 0,
) -> dict:
    """The Sec. IV-E NONUNIFORM-beats-UNIFORM separation, empirically.

    Two legs, both in the sampling regime the paper requires (long
    stream / large eps — short streams keep most counters in exact
    mode, where every algorithm pays one message per increment and the
    budget split buys nothing):

    - **example** — the paper's own construction, a depth-1 tree of
      binary variables with one ``J``-state leaf
      (``repository.separation_tree``), trained once at
      ``example_events``; with the defaults NONUNIFORM measurably wins.
    - **sweep** — NEW-ALARM over ``events_values``, charting the
      UNIFORM/NONUNIFORM message ratio as the stream grows toward the
      crossover (``crossover_events`` is the first swept length where
      NONUNIFORM wins, ``None`` while the sweep stays short of it).

    The ``theory`` sections carry the analytic size-term ratios from
    ``repro.core.theory.separation_example`` for both networks.
    """
    from repro.bn.repository import separation_tree

    events_values = sorted({check_positive_int(m, "events") for m in events_values})
    check_positive_int(example_events, "example_events")
    runner = ExperimentRunner(eval_events=eval_events, seed=seed)

    tree = separation_tree(
        n_variables=example_variables, j_large=example_j_large
    )
    example = _uniform_vs_nonuniform(
        runner, tree, eps=example_eps, n_sites=n_sites,
        n_events=example_events, hyz_engine=hyz_engine,
    )
    example["network"] = tree.name
    example["eps"] = float(example_eps)
    example["theory"] = separation_example(
        example_variables, example_j_large
    )

    net = new_alarm(
        inflated_count=inflated_count,
        inflated_cardinality=inflated_cardinality,
    )
    results = []
    crossover = None
    for n_events in events_values:
        row = _uniform_vs_nonuniform(
            runner, net, eps=eps, n_sites=n_sites, n_events=n_events,
            hyz_engine=hyz_engine,
        )
        if row["nonuniform_wins"] and crossover is None:
            crossover = int(n_events)
        results.append(row)
    return {
        "benchmark": "separation",
        "schema": SCHEMA,
        "params": {
            "network": net.name,
            "eps": float(eps),
            "n_sites": int(n_sites),
            "inflated_count": int(inflated_count),
            "inflated_cardinality": int(inflated_cardinality),
            "events_values": [int(m) for m in events_values],
            "example_events": int(example_events),
            "example_variables": int(example_variables),
            "example_j_large": int(example_j_large),
            "example_eps": float(example_eps),
            "eval_events": int(eval_events),
            "hyz_engine": hyz_engine,
            "seed": int(seed),
        },
        "theory": separation_example(
            net.n_variables, int(inflated_cardinality)
        ),
        "example": example,
        "crossover_events": crossover,
        "results": results,
    }


def long_crossover_experiment(
    *,
    events_values=(250_000, 500_000, 1_000_000),
    eps: float = 0.4,
    n_sites: int = 10,
    inflated_count: int = 6,
    inflated_cardinality: int = 20,
    checkpoints: int = 8,
    eval_events: int = 200,
    chunk_size: int = 10_000,
    hyz_engine: str = "vectorized",
    seed: int = 0,
    executor="chunked",
    jobs: int | None = None,
    segment_events: int | None = None,
    resume_dir=None,
) -> dict:
    """Chart the NEW-ALARM UNIFORM/NONUNIFORM crossover on long streams.

    The default :func:`separation_experiment` sweep stops at m = 150k,
    where the message ratio is still climbing toward 1; the crossover
    itself needs m >~ 1M.  This preset builds one
    :class:`~repro.exec.task.RunTask` per (stream length, algorithm)
    pair and drives them through the chunked executor by default, so
    each long run advances checkpoint-by-checkpoint through snapshot
    bundles: a killed worker costs at most one segment of rework, and
    with a ``resume_dir`` an interrupted invocation continues from the
    last bundle instead of starting over.

    Returns a ``repro-bench-v1`` document whose ``results`` rows mirror
    the separation sweep (ratio + winner per length, plot-ready for the
    ``figures`` ratio view) and whose ``runs`` carry the full per-run
    records (checkpoints included, for the messages view).
    """
    events_values = sorted(
        {check_positive_int(m, "events") for m in events_values}
    )
    net = new_alarm(
        inflated_count=inflated_count,
        inflated_cardinality=inflated_cardinality,
    )
    # Serialized inline once so every executor (and every worker) trains
    # on the identical round-tripped model.
    network = {"inline": network_to_dict(net)}
    tasks = [
        RunTask(
            network=network,
            algorithm=algorithm,
            eps=eps,
            n_sites=n_sites,
            n_events=m,
            checkpoints=tuple(checkpoint_schedule(m, checkpoints)),
            hyz_engine=hyz_engine,
            seed=seed,
            eval_events=eval_events,
            chunk_size=chunk_size,
        )
        for m in events_values
        for algorithm in ("uniform", "nonuniform")
    ]
    outcome = make_executor(
        executor, jobs=jobs, segment_events=segment_events
    ).run(tasks, resume_dir=resume_dir)
    by_cell = {
        (task.n_events, task.algorithm): run
        for task, run in zip(tasks, outcome.results)
        if run is not None
    }
    results = []
    crossover = None
    for m in events_values:
        uniform = by_cell.get((m, "uniform"))
        nonuniform = by_cell.get((m, "nonuniform"))
        if uniform is None or nonuniform is None:
            continue
        row = {
            "n_events": int(m),
            "uniform_messages": int(uniform.total_messages),
            "nonuniform_messages": int(nonuniform.total_messages),
            "uniform_over_nonuniform": float(
                uniform.total_messages / max(nonuniform.total_messages, 1)
            ),
            "nonuniform_wins": bool(
                nonuniform.total_messages < uniform.total_messages
            ),
        }
        if crossover is None and row["nonuniform_wins"]:
            crossover = int(m)
        results.append(row)
    return {
        "benchmark": "long-crossover",
        "schema": SCHEMA,
        "params": {
            "network": net.name,
            "eps": float(eps),
            "n_sites": int(n_sites),
            "inflated_count": int(inflated_count),
            "inflated_cardinality": int(inflated_cardinality),
            "events_values": [int(m) for m in events_values],
            "checkpoints": int(checkpoints),
            "eval_events": int(eval_events),
            "chunk_size": int(chunk_size),
            "hyz_engine": hyz_engine,
            "seed": int(seed),
        },
        "theory": separation_example(
            net.n_variables, int(inflated_cardinality)
        ),
        "crossover_events": crossover,
        "results": results,
        "runs": [run.to_dict() for run in outcome.completed],
    }
