"""Microbenchmarks for the training hot path.

``benchmark_update_strategies`` times ``StreamingMLEEstimator.update_batch``
under each grouping strategy on the same encoded workload: the legacy
per-site boolean-mask loop (``masked``) against the argsort site-sharding
and the dense keyed-histogram fast paths that feed
``CounterBank.bulk_add_grouped``.  It also asserts that every strategy
leaves the counter bank byte-identical, so a reported speedup can never
come from diverging semantics.

``benchmark_hyz_engines`` times the HYZ bank's span-replay engines
(sequential per-(counter, site) replay vs the vectorized worklist engine)
on a full stream ingest.  The engines consume randomness in different
orders, so instead of byte equality it cross-checks the protocol
observables statistically: identical ground-truth totals, message counts
within a tight relative band, and mean estimate error within a
cross-engine band.

``benchmark_ingest_stages`` is the stage-level profiler behind the
``bench-ingest`` subcommand and the committed ``benchmarks/BENCH_*.json``
trajectory: it drives the fused sampler→partitioner→estimator pipeline
chunk by chunk for each batch encoder, reports a
sample / partition / encode / update wall-clock breakdown, and asserts
that every encoder leaves the counter bank byte-identical before any
speedup is reported (see ``docs/performance.md``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.spec import EstimatorSpec
from repro.bn.repository import network_by_name
from repro.bn.sampling import ForwardSampler
from repro.core.estimator import ENCODERS
from repro.monitoring.stream import UniformPartitioner
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int

#: Strategies timed by default, legacy baseline first.
STRATEGIES = ("masked", "argsort", "dense")

#: HYZ engines timed by default, legacy baseline first.
HYZ_ENGINES = ("sequential", "vectorized")

#: Encoders profiled by default: the per-variable-loop reference pipeline
#: first, then whatever the network size auto-selects (dense dgemm up to
#: 256 variables, sparse segment-sum beyond).
INGEST_ENCODERS = ("loop", "auto")

#: The stage names of the fused ingest pipeline, in pipeline order.
INGEST_STAGES = ("sample", "partition", "encode", "update")


def benchmark_update_strategies(
    network="alarm",
    *,
    algorithm: str = "exact",
    eps: float = 0.3,
    n_sites: int = 30,
    n_events: int = 20_000,
    repeats: int = 7,
    seed: int = 0,
    strategies=STRATEGIES,
) -> dict:
    """Time each update strategy over an identical pre-sampled batch.

    Every strategy gets its own freshly seeded estimator and feeds the same
    ``(n_events, n)`` batch ``repeats`` times; the per-call time is the
    minimum over the warm repeats (robust against scheduler noise).  Returns
    a JSON-ready document with per-strategy timings and each sharded
    strategy's speedup over the ``masked`` baseline.
    """
    check_positive_int(repeats, "repeats")
    net = network_by_name(network) if isinstance(network, str) else network
    source = RandomSource(seed)
    data = ForwardSampler(net, seed=source.generator()).sample(n_events)
    sites = UniformPartitioner(n_sites, seed=source.generator()).assign(n_events)

    timings: dict[str, float] = {}
    states: dict[str, np.ndarray] = {}
    estimates: dict[str, np.ndarray] = {}
    messages: dict[str, int] = {}
    spec = EstimatorSpec(
        network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
        seed=seed + 1,
    )
    for strategy in strategies:
        estimator = spec.build(network=net)
        estimator.update_batch(data, sites, strategy=strategy)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            estimator.update_batch(data, sites, strategy=strategy)
            best = min(best, time.perf_counter() - t0)
        timings[strategy] = best
        states[strategy] = estimator.bank._local.copy()
        estimates[strategy] = estimator.bank.estimates()
        messages[strategy] = estimator.total_messages

    baseline = strategies[0]
    for strategy in strategies[1:]:
        # Compare coordinator estimates as well as site-local counts: for
        # randomized banks _local is strategy-invariant by construction, so
        # only the estimates expose a diverging RNG path.
        if not np.array_equal(states[baseline], states[strategy]) or not (
            np.array_equal(estimates[baseline], estimates[strategy])
        ):
            raise AssertionError(
                f"strategy {strategy!r} diverged from {baseline!r}: "
                "counter states differ"
            )
        if messages[baseline] != messages[strategy]:
            raise AssertionError(
                f"strategy {strategy!r} diverged from {baseline!r}: "
                f"{messages[strategy]} != {messages[baseline]} messages"
            )

    results = []
    for strategy in strategies:
        entry = {
            "strategy": strategy,
            "ms_per_batch": timings[strategy] * 1e3,
            "events_per_second": n_events / timings[strategy],
        }
        if strategy != baseline:
            entry[f"speedup_vs_{baseline}"] = (
                timings[baseline] / timings[strategy]
            )
        results.append(entry)
    return {
        "benchmark": "update-strategies",
        "baseline_strategy": baseline,
        "network": net.name,
        "algorithm": algorithm,
        "eps": eps,
        "n_sites": n_sites,
        "n_events": n_events,
        "repeats": repeats,
        "states_identical": True,
        "results": results,
    }


def benchmark_hyz_engines(
    network="alarm",
    *,
    algorithm: str = "nonuniform",
    eps: float = 0.1,
    n_sites: int = 30,
    n_events: int = 20_000,
    repeats: int = 3,
    seed: int = 0,
    engines=HYZ_ENGINES,
) -> dict:
    """Time a full stream ingest through each HYZ span-replay engine.

    Unlike :func:`benchmark_update_strategies` (which re-feeds a warm
    estimator), every repeat here ingests the batch into a *fresh*
    estimator, so the timing covers the realistic cold path: the exact-mode
    prefix, the exact-to-sampling transition, and the round doublings along
    the stream.  The per-engine time is the minimum over repeats.

    The engines consume the RNG stream in different orders (see
    ``docs/hyz-protocol.md``), so they are cross-checked statistically
    rather than byte-for-byte: ground-truth site counts must be identical,
    total message counts must agree within 10%, and every engine's mean
    relative estimate error must sit inside a band around the baseline
    engine's (the deeper distributional checks live in
    ``tests/test_hyz_engine.py``).
    """
    check_positive_int(repeats, "repeats")
    net = network_by_name(network) if isinstance(network, str) else network
    source = RandomSource(seed)
    data = ForwardSampler(net, seed=source.generator()).sample(n_events)
    sites = UniformPartitioner(n_sites, seed=source.generator()).assign(n_events)

    timings: dict[str, float] = {}
    truths: dict[str, np.ndarray] = {}
    messages: dict[str, int] = {}
    mean_rel_err: dict[str, float] = {}
    for engine in engines:
        spec = EstimatorSpec(
            network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
            seed=seed + 1, hyz_engine=engine,
        )
        best = float("inf")
        for _ in range(repeats):
            estimator = spec.build(network=net)
            t0 = time.perf_counter()
            estimator.update_batch(data, sites)
            best = min(best, time.perf_counter() - t0)
        timings[engine] = best
        truths[engine] = estimator.bank.true_totals()
        messages[engine] = estimator.total_messages
        bank = estimator.bank
        nonzero = truths[engine] > 0
        rel = np.abs(bank.estimates() - truths[engine]) / np.maximum(
            truths[engine], 1.0
        )
        mean_rel_err[engine] = float(rel[nonzero].mean())

    baseline = engines[0]
    for engine in engines[1:]:
        if not np.array_equal(truths[baseline], truths[engine]):
            raise AssertionError(
                f"engine {engine!r} diverged from {baseline!r}: ground-truth "
                "counts differ"
            )
        lo, hi = sorted((messages[baseline], messages[engine]))
        if lo == 0 or hi / lo > 1.10:
            raise AssertionError(
                f"engine {engine!r} message count {messages[engine]} "
                f"deviates more than 10% from {baseline!r} "
                f"({messages[baseline]})"
            )
        # Aggregate accuracy guard: both engines realize the same protocol,
        # so their mean relative error across counters must be of the same
        # magnitude (generous 2x band plus a small absolute floor for
        # near-exact runs) — a wrong threshold or correction term in one
        # engine inflates its error without touching truths or traffic.
        band = max(2.0 * mean_rel_err[baseline], 0.05)
        if mean_rel_err[engine] > band:
            raise AssertionError(
                f"engine {engine!r} mean relative error "
                f"{mean_rel_err[engine]:.4f} exceeds the {baseline!r} "
                f"band {band:.4f}"
            )

    results = []
    for engine in engines:
        entry = {
            "engine": engine,
            "ms_per_ingest": timings[engine] * 1e3,
            "events_per_second": n_events / timings[engine],
            "total_messages": messages[engine],
            "mean_relative_error": mean_rel_err[engine],
        }
        if engine != baseline:
            entry[f"speedup_vs_{baseline}"] = (
                timings[baseline] / timings[engine]
            )
        results.append(entry)
    return {
        "benchmark": "hyz-engines",
        "baseline_engine": baseline,
        "network": net.name,
        "algorithm": algorithm,
        "eps": eps,
        "n_sites": n_sites,
        "n_events": n_events,
        "repeats": repeats,
        "messages_consistent": True,
        "results": results,
    }


def _profile_ingest_once(
    net,
    spec: EstimatorSpec,
    encoder: str,
    *,
    n_events: int,
    chunk: int,
    strategy: str,
    seed: int,
):
    """One fused-pipeline ingest with per-stage timing.

    Rebuilds the estimator, sampler, and partitioner from scratch (the
    realistic cold path, like :func:`benchmark_hyz_engines`), then drives
    the zero-copy chunk loop of ``MonitoringSession.ingest_sampler``
    stage by stage: sample into the reused F-ordered buffer, assign
    sites, ``update_batch(validate=False)``.  Returns the stage-seconds
    dict, total wall seconds, and the finished estimator.
    """
    source = RandomSource(seed)
    sampler = ForwardSampler(net, seed=source.generator())
    partitioner = UniformPartitioner(spec.n_sites, seed=source.generator())
    estimator = spec.build(network=net, encoder=encoder)
    estimator.stage_times = {"encode": 0.0, "update": 0.0}
    stages = {"sample": 0.0, "partition": 0.0}
    storage = np.empty(
        (net.n_variables, min(chunk, n_events)), dtype=np.int64
    )
    remaining = n_events
    t_loop = time.perf_counter()
    while remaining > 0:
        size = min(chunk, remaining)
        batch = storage[:, :size].T
        t0 = time.perf_counter()
        sampler.sample_into(batch)
        stages["sample"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        sites = partitioner.assign(size)
        stages["partition"] += time.perf_counter() - t0
        estimator.update_batch(batch, sites, strategy=strategy, validate=False)
        remaining -= size
    wall = time.perf_counter() - t_loop
    stages.update(estimator.stage_times)
    estimator.stage_times = None
    return stages, wall, estimator


def benchmark_ingest_stages(
    network="link",
    *,
    algorithm: str = "nonuniform",
    eps: float = 0.3,
    n_sites: int = 10,
    n_events: int = 100_000,
    chunk: int = 10_000,
    repeats: int = 1,
    seed: int = 0,
    encoders=INGEST_ENCODERS,
    counter_backend: str = "hyz",
    hyz_engine: str = "vectorized",
    strategy: str = "auto",
) -> dict:
    """Stage-level profile of the fused ingest pipeline per batch encoder.

    Every encoder ingests the *same* stream (sampler, partitioner, and
    bank seeds are re-derived identically) through the fused zero-copy
    chunk loop, and the wall clock is split into the four pipeline
    stages: ``sample`` (forward sampling), ``partition`` (site
    assignment), ``encode`` (event → counter ids), and ``update``
    (grouping plus the counter-bank protocol).  ``ingest_wall_seconds``
    — encode plus update, the estimator-side cost the encoders compete
    on — is the headline: each non-baseline encoder reports its
    ``speedup_vs_<baseline>`` on it.

    Before any timing is reported the final counter banks are checked
    byte-for-byte across encoders (site-local counts, coordinator
    estimates, message tallies), so a speedup can never come from
    diverging semantics.  With ``repeats > 1`` each encoder's stage
    times are elementwise minima over fresh cold runs.
    """
    check_positive_int(repeats, "repeats")
    check_positive_int(chunk, "chunk")
    check_positive_int(n_events, "n_events")
    encoders = tuple(encoders)
    if len(encoders) < 1:
        raise ValueError("benchmark_ingest_stages needs at least one encoder")
    for enc in encoders:
        if enc not in ENCODERS:
            raise ValueError(
                f"unknown encoder {enc!r}; expected one of {ENCODERS}"
            )
    net = network_by_name(network) if isinstance(network, str) else network
    spec = EstimatorSpec(
        network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
        seed=seed + 1, counter_backend=counter_backend,
        hyz_engine=hyz_engine,
    )

    stage_times: dict[str, dict[str, float]] = {}
    walls: dict[str, float] = {}
    resolved: dict[str, str] = {}
    states: dict[str, np.ndarray] = {}
    estimates: dict[str, np.ndarray] = {}
    messages: dict[str, int] = {}
    snapshots: dict[str, dict] = {}
    for enc in encoders:
        best_stages = None
        best_wall = float("inf")
        for _ in range(repeats):
            stages, wall, estimator = _profile_ingest_once(
                net, spec, enc,
                n_events=n_events, chunk=chunk, strategy=strategy, seed=seed,
            )
            if best_stages is None:
                best_stages = stages
            else:
                best_stages = {
                    key: min(best_stages[key], stages[key])
                    for key in best_stages
                }
            best_wall = min(best_wall, wall)
        stage_times[enc] = best_stages
        walls[enc] = best_wall
        resolved[enc] = estimator.encoder
        states[enc] = estimator.bank._local.copy()
        estimates[enc] = estimator.bank.estimates()
        messages[enc] = estimator.total_messages
        snapshots[enc] = estimator.bank.message_log.snapshot()

    baseline = encoders[0]
    for enc in encoders[1:]:
        if not np.array_equal(states[baseline], states[enc]) or not (
            np.array_equal(estimates[baseline], estimates[enc])
        ):
            raise AssertionError(
                f"encoder {enc!r} diverged from {baseline!r}: counter "
                "states differ"
            )
        if snapshots[baseline] != snapshots[enc]:
            raise AssertionError(
                f"encoder {enc!r} diverged from {baseline!r}: "
                f"{snapshots[enc]} != {snapshots[baseline]} messages"
            )

    results = []
    for enc in encoders:
        stages = stage_times[enc]
        ingest = stages["encode"] + stages["update"]
        entry = {
            "encoder": enc,
            "resolved_encoder": resolved[enc],
            "stages": [
                {"stage": name, "wall_seconds": stages[name]}
                for name in INGEST_STAGES
            ],
            "ingest_wall_seconds": ingest,
            "wall_seconds": walls[enc],
            "events_per_second": n_events / walls[enc],
            "ingest_events_per_second": n_events / ingest,
            "total_messages": messages[enc],
        }
        if enc != baseline:
            baseline_ingest = (
                stage_times[baseline]["encode"]
                + stage_times[baseline]["update"]
            )
            entry[f"speedup_vs_{baseline}"] = baseline_ingest / ingest
        results.append(entry)
    return {
        "benchmark": "ingest-stages",
        "baseline_encoder": baseline,
        "network": net.name,
        "n_variables": net.n_variables,
        "algorithm": algorithm,
        "counter_backend": counter_backend,
        "hyz_engine": hyz_engine,
        "strategy": strategy,
        "eps": eps,
        "n_sites": n_sites,
        "n_events": n_events,
        "chunk": chunk,
        "repeats": repeats,
        "seed": seed,
        "n_counters": int(states[baseline].shape[0]),
        "states_identical": True,
        "results": results,
    }
