"""Microbenchmarks for the training hot path.

``benchmark_update_strategies`` times ``StreamingMLEEstimator.update_batch``
under each grouping strategy on the same encoded workload: the legacy
per-site boolean-mask loop (``masked``) against the argsort site-sharding
and the dense keyed-histogram fast paths that feed
``CounterBank.bulk_add_grouped``.  It also asserts that every strategy
leaves the counter bank byte-identical, so a reported speedup can never
come from diverging semantics.

``benchmark_hyz_engines`` times the HYZ bank's span-replay engines
(sequential per-(counter, site) replay vs the vectorized worklist engine)
on a full stream ingest.  The engines consume randomness in different
orders, so instead of byte equality it cross-checks the protocol
observables statistically: identical ground-truth totals, message counts
within a tight relative band, and mean estimate error within a
cross-engine band.

``benchmark_ingest_stages`` is the stage-level profiler behind the
``bench-ingest`` subcommand and the committed ``benchmarks/BENCH_*.json``
trajectory: it drives the fused sampler→partitioner→estimator pipeline
chunk by chunk for each batch encoder, reports a
sample / partition / encode / update wall-clock breakdown, and asserts
that every encoder leaves the counter bank byte-identical before any
speedup is reported (see ``docs/performance.md``).

``benchmark_sampler_engines`` times the forward-sampling engines behind
the ``sample`` stage (the retained comparison-count ``reference`` vs the
stride-table ``cdf`` fast path) plus the sharded parallel sampler.  The
engines consume randomness differently, so instead of cross-engine byte
equality it pins each engine's *own* determinism (``sample`` /
``sample_into`` / ``sample_stream`` byte-identical for a fixed seed) and
its statistical identity against the ground-truth CPDs — a per-CPD
chi-squared goodness-of-fit with a normal-approximation z-score bound —
before any timing is reported.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.api.spec import EstimatorSpec
from repro.bn.repository import network_by_name
from repro.bn.sampling import ForwardSampler
from repro.core.estimator import ENCODERS
from repro.monitoring.stream import UniformPartitioner
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int

#: Strategies timed by default, legacy baseline first.
STRATEGIES = ("masked", "argsort", "dense")

#: HYZ engines timed by default, legacy baseline first.
HYZ_ENGINES = ("sequential", "vectorized")

#: Encoders profiled by default: the per-variable-loop reference pipeline
#: first, then the auto selection (always the sparse segment-sum path —
#: the committed ALARM profile showed sparse winning even at n=37).
INGEST_ENCODERS = ("loop", "auto")

#: The stage names of the fused ingest pipeline, in pipeline order.
INGEST_STAGES = ("sample", "partition", "encode", "update")

#: Sampler engines timed by default, legacy baseline first.
SAMPLER_BENCH_ENGINES = ("reference", "cdf")

#: Sharded-sampler modes cross-checked and timed by default.  The
#: ``"process"`` mode is byte-identical too (the test suite pins it) but
#: pays spawn startup per run, so it is opt-in here.
SAMPLER_BENCH_MODES = ("serial", "thread")

#: Bound on the per-CPD chi-squared z-score (Wilson–Hilferty cube-root
#: normalization, accurate even at the low degrees of freedom of
#: sparsely observed variables): a correct sampler stays well under it
#: across hundreds of per-variable statistics, while a misread CDF row
#: sends the worst statistic orders of magnitude past it.
CHI2_Z_THRESHOLD = 6.0

#: Parent configurations with fewer samples than this are excluded from
#: the chi-squared statistic (the usual expected-count validity rule).
_CHI2_MIN_CONFIG_SAMPLES = 20


def benchmark_update_strategies(
    network="alarm",
    *,
    algorithm: str = "exact",
    eps: float = 0.3,
    n_sites: int = 30,
    n_events: int = 20_000,
    repeats: int = 7,
    seed: int = 0,
    strategies=STRATEGIES,
) -> dict:
    """Time each update strategy over an identical pre-sampled batch.

    Every strategy gets its own freshly seeded estimator and feeds the same
    ``(n_events, n)`` batch ``repeats`` times; the per-call time is the
    minimum over the warm repeats (robust against scheduler noise).  Returns
    a JSON-ready document with per-strategy timings and each sharded
    strategy's speedup over the ``masked`` baseline.
    """
    check_positive_int(repeats, "repeats")
    net = network_by_name(network) if isinstance(network, str) else network
    source = RandomSource(seed)
    data = ForwardSampler(net, seed=source.generator()).sample(n_events)
    sites = UniformPartitioner(n_sites, seed=source.generator()).assign(n_events)

    timings: dict[str, float] = {}
    states: dict[str, np.ndarray] = {}
    estimates: dict[str, np.ndarray] = {}
    messages: dict[str, int] = {}
    spec = EstimatorSpec(
        network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
        seed=seed + 1,
    )
    for strategy in strategies:
        estimator = spec.build(network=net)
        estimator.update_batch(data, sites, strategy=strategy)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            estimator.update_batch(data, sites, strategy=strategy)
            best = min(best, time.perf_counter() - t0)
        timings[strategy] = best
        states[strategy] = estimator.bank._local.copy()
        estimates[strategy] = estimator.bank.estimates()
        messages[strategy] = estimator.total_messages

    baseline = strategies[0]
    for strategy in strategies[1:]:
        # Compare coordinator estimates as well as site-local counts: for
        # randomized banks _local is strategy-invariant by construction, so
        # only the estimates expose a diverging RNG path.
        if not np.array_equal(states[baseline], states[strategy]) or not (
            np.array_equal(estimates[baseline], estimates[strategy])
        ):
            raise AssertionError(
                f"strategy {strategy!r} diverged from {baseline!r}: "
                "counter states differ"
            )
        if messages[baseline] != messages[strategy]:
            raise AssertionError(
                f"strategy {strategy!r} diverged from {baseline!r}: "
                f"{messages[strategy]} != {messages[baseline]} messages"
            )

    results = []
    for strategy in strategies:
        entry = {
            "strategy": strategy,
            "ms_per_batch": timings[strategy] * 1e3,
            "events_per_second": n_events / timings[strategy],
        }
        if strategy != baseline:
            entry[f"speedup_vs_{baseline}"] = (
                timings[baseline] / timings[strategy]
            )
        results.append(entry)
    return {
        "benchmark": "update-strategies",
        "baseline_strategy": baseline,
        "network": net.name,
        "algorithm": algorithm,
        "eps": eps,
        "n_sites": n_sites,
        "n_events": n_events,
        "repeats": repeats,
        "states_identical": True,
        "results": results,
    }


def benchmark_hyz_engines(
    network="alarm",
    *,
    algorithm: str = "nonuniform",
    eps: float = 0.1,
    n_sites: int = 30,
    n_events: int = 20_000,
    repeats: int = 3,
    seed: int = 0,
    engines=HYZ_ENGINES,
) -> dict:
    """Time a full stream ingest through each HYZ span-replay engine.

    Unlike :func:`benchmark_update_strategies` (which re-feeds a warm
    estimator), every repeat here ingests the batch into a *fresh*
    estimator, so the timing covers the realistic cold path: the exact-mode
    prefix, the exact-to-sampling transition, and the round doublings along
    the stream.  The per-engine time is the minimum over repeats.

    The engines consume the RNG stream in different orders (see
    ``docs/hyz-protocol.md``), so they are cross-checked statistically
    rather than byte-for-byte: ground-truth site counts must be identical,
    total message counts must agree within 10%, and every engine's mean
    relative estimate error must sit inside a band around the baseline
    engine's (the deeper distributional checks live in
    ``tests/test_hyz_engine.py``).
    """
    check_positive_int(repeats, "repeats")
    net = network_by_name(network) if isinstance(network, str) else network
    source = RandomSource(seed)
    data = ForwardSampler(net, seed=source.generator()).sample(n_events)
    sites = UniformPartitioner(n_sites, seed=source.generator()).assign(n_events)

    timings: dict[str, float] = {}
    truths: dict[str, np.ndarray] = {}
    messages: dict[str, int] = {}
    mean_rel_err: dict[str, float] = {}
    for engine in engines:
        spec = EstimatorSpec(
            network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
            seed=seed + 1, hyz_engine=engine,
        )
        best = float("inf")
        for _ in range(repeats):
            estimator = spec.build(network=net)
            t0 = time.perf_counter()
            estimator.update_batch(data, sites)
            best = min(best, time.perf_counter() - t0)
        timings[engine] = best
        truths[engine] = estimator.bank.true_totals()
        messages[engine] = estimator.total_messages
        bank = estimator.bank
        nonzero = truths[engine] > 0
        rel = np.abs(bank.estimates() - truths[engine]) / np.maximum(
            truths[engine], 1.0
        )
        mean_rel_err[engine] = float(rel[nonzero].mean())

    baseline = engines[0]
    for engine in engines[1:]:
        if not np.array_equal(truths[baseline], truths[engine]):
            raise AssertionError(
                f"engine {engine!r} diverged from {baseline!r}: ground-truth "
                "counts differ"
            )
        lo, hi = sorted((messages[baseline], messages[engine]))
        if lo == 0 or hi / lo > 1.10:
            raise AssertionError(
                f"engine {engine!r} message count {messages[engine]} "
                f"deviates more than 10% from {baseline!r} "
                f"({messages[baseline]})"
            )
        # Aggregate accuracy guard: both engines realize the same protocol,
        # so their mean relative error across counters must be of the same
        # magnitude (generous 2x band plus a small absolute floor for
        # near-exact runs) — a wrong threshold or correction term in one
        # engine inflates its error without touching truths or traffic.
        band = max(2.0 * mean_rel_err[baseline], 0.05)
        if mean_rel_err[engine] > band:
            raise AssertionError(
                f"engine {engine!r} mean relative error "
                f"{mean_rel_err[engine]:.4f} exceeds the {baseline!r} "
                f"band {band:.4f}"
            )

    results = []
    for engine in engines:
        entry = {
            "engine": engine,
            "ms_per_ingest": timings[engine] * 1e3,
            "events_per_second": n_events / timings[engine],
            "total_messages": messages[engine],
            "mean_relative_error": mean_rel_err[engine],
        }
        if engine != baseline:
            entry[f"speedup_vs_{baseline}"] = (
                timings[baseline] / timings[engine]
            )
        results.append(entry)
    return {
        "benchmark": "hyz-engines",
        "baseline_engine": baseline,
        "network": net.name,
        "algorithm": algorithm,
        "eps": eps,
        "n_sites": n_sites,
        "n_events": n_events,
        "repeats": repeats,
        "messages_consistent": True,
        "results": results,
    }


def _profile_ingest_once(
    net,
    spec: EstimatorSpec,
    encoder: str,
    *,
    n_events: int,
    chunk: int,
    strategy: str,
    seed: int,
    sampler_engine: str = "auto",
):
    """One fused-pipeline ingest with per-stage timing.

    Rebuilds the estimator, sampler, and partitioner from scratch (the
    realistic cold path, like :func:`benchmark_hyz_engines`), then drives
    the zero-copy chunk loop of ``MonitoringSession.ingest_sampler``
    stage by stage: sample into the reused F-ordered buffer, assign
    sites, ``update_batch(validate=False)``.  Returns the stage-seconds
    dict, total wall seconds, and the finished estimator.
    """
    source = RandomSource(seed)
    sampler = ForwardSampler(
        net, seed=source.generator(), engine=sampler_engine
    )
    partitioner = UniformPartitioner(spec.n_sites, seed=source.generator())
    estimator = spec.build(network=net, encoder=encoder)
    estimator.stage_times = {"encode": 0.0, "update": 0.0}
    stages = {"sample": 0.0, "partition": 0.0}
    storage = np.empty(
        (net.n_variables, min(chunk, n_events)), dtype=np.int64
    )
    remaining = n_events
    t_loop = time.perf_counter()
    while remaining > 0:
        size = min(chunk, remaining)
        batch = storage[:, :size].T
        t0 = time.perf_counter()
        sampler.sample_into(batch)
        stages["sample"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        sites = partitioner.assign(size)
        stages["partition"] += time.perf_counter() - t0
        estimator.update_batch(batch, sites, strategy=strategy, validate=False)
        remaining -= size
    wall = time.perf_counter() - t_loop
    stages.update(estimator.stage_times)
    estimator.stage_times = None
    return stages, wall, estimator


def benchmark_ingest_stages(
    network="link",
    *,
    algorithm: str = "nonuniform",
    eps: float = 0.3,
    n_sites: int = 10,
    n_events: int = 100_000,
    chunk: int = 10_000,
    repeats: int = 1,
    seed: int = 0,
    encoders=INGEST_ENCODERS,
    counter_backend: str = "hyz",
    hyz_engine: str = "vectorized",
    strategy: str = "auto",
    sampler_engine: str = "auto",
) -> dict:
    """Stage-level profile of the fused ingest pipeline per batch encoder.

    Every encoder ingests the *same* stream (sampler, partitioner, and
    bank seeds are re-derived identically) through the fused zero-copy
    chunk loop, and the wall clock is split into the four pipeline
    stages: ``sample`` (forward sampling), ``partition`` (site
    assignment), ``encode`` (event → counter ids), and ``update``
    (grouping plus the counter-bank protocol).  ``ingest_wall_seconds``
    — encode plus update, the estimator-side cost the encoders compete
    on — is the headline: each non-baseline encoder reports its
    ``speedup_vs_<baseline>`` on it.

    Before any timing is reported the final counter banks are checked
    byte-for-byte across encoders (site-local counts, coordinator
    estimates, message tallies), so a speedup can never come from
    diverging semantics.  With ``repeats > 1`` each encoder's stage
    times are elementwise minima over fresh cold runs.

    ``sampler_engine`` selects the forward-sampling engine feeding the
    ``sample`` stage (recorded in the document; the engines draw
    different — statistically identical — streams, so changing it
    changes the non-timing fields too).
    """
    check_positive_int(repeats, "repeats")
    check_positive_int(chunk, "chunk")
    check_positive_int(n_events, "n_events")
    encoders = tuple(encoders)
    if len(encoders) < 1:
        raise ValueError("benchmark_ingest_stages needs at least one encoder")
    for enc in encoders:
        if enc not in ENCODERS:
            raise ValueError(
                f"unknown encoder {enc!r}; expected one of {ENCODERS}"
            )
    net = network_by_name(network) if isinstance(network, str) else network
    spec = EstimatorSpec(
        network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
        seed=seed + 1, counter_backend=counter_backend,
        hyz_engine=hyz_engine,
    )

    stage_times: dict[str, dict[str, float]] = {}
    walls: dict[str, float] = {}
    resolved: dict[str, str] = {}
    states: dict[str, np.ndarray] = {}
    estimates: dict[str, np.ndarray] = {}
    messages: dict[str, int] = {}
    snapshots: dict[str, dict] = {}
    for enc in encoders:
        best_stages = None
        best_wall = float("inf")
        for _ in range(repeats):
            stages, wall, estimator = _profile_ingest_once(
                net, spec, enc,
                n_events=n_events, chunk=chunk, strategy=strategy, seed=seed,
                sampler_engine=sampler_engine,
            )
            if best_stages is None:
                best_stages = stages
            else:
                best_stages = {
                    key: min(best_stages[key], stages[key])
                    for key in best_stages
                }
            best_wall = min(best_wall, wall)
        stage_times[enc] = best_stages
        walls[enc] = best_wall
        resolved[enc] = estimator.encoder
        states[enc] = estimator.bank._local.copy()
        estimates[enc] = estimator.bank.estimates()
        messages[enc] = estimator.total_messages
        snapshots[enc] = estimator.bank.message_log.snapshot()

    baseline = encoders[0]
    for enc in encoders[1:]:
        if not np.array_equal(states[baseline], states[enc]) or not (
            np.array_equal(estimates[baseline], estimates[enc])
        ):
            raise AssertionError(
                f"encoder {enc!r} diverged from {baseline!r}: counter "
                "states differ"
            )
        if snapshots[baseline] != snapshots[enc]:
            raise AssertionError(
                f"encoder {enc!r} diverged from {baseline!r}: "
                f"{snapshots[enc]} != {snapshots[baseline]} messages"
            )

    results = []
    for enc in encoders:
        stages = stage_times[enc]
        ingest = stages["encode"] + stages["update"]
        entry = {
            "encoder": enc,
            "resolved_encoder": resolved[enc],
            "stages": [
                {"stage": name, "wall_seconds": stages[name]}
                for name in INGEST_STAGES
            ],
            "ingest_wall_seconds": ingest,
            "wall_seconds": walls[enc],
            "events_per_second": n_events / walls[enc],
            "ingest_events_per_second": n_events / ingest,
            "total_messages": messages[enc],
        }
        if enc != baseline:
            baseline_ingest = (
                stage_times[baseline]["encode"]
                + stage_times[baseline]["update"]
            )
            entry[f"speedup_vs_{baseline}"] = baseline_ingest / ingest
        results.append(entry)
    return {
        "benchmark": "ingest-stages",
        "baseline_encoder": baseline,
        "network": net.name,
        "n_variables": net.n_variables,
        "algorithm": algorithm,
        "counter_backend": counter_backend,
        "hyz_engine": hyz_engine,
        "strategy": strategy,
        "sampler_engine": sampler_engine,
        "eps": eps,
        "n_sites": n_sites,
        "n_events": n_events,
        "chunk": chunk,
        "repeats": repeats,
        "seed": seed,
        "n_counters": int(states[baseline].shape[0]),
        "states_identical": True,
        "results": results,
    }


def _max_cpd_chi2_z(net, data: np.ndarray) -> float:
    """Worst per-CPD chi-squared z-score of ``data`` against the network.

    For every CPD the empirical conditional distribution is tallied per
    parent configuration (one ``bincount`` over ``config * cardinality +
    state`` keys), configurations with fewer than
    ``_CHI2_MIN_CONFIG_SAMPLES`` rows are dropped, and the remaining
    cells with nonzero probability form one chi-squared statistic whose
    Wilson–Hilferty z-score is returned at its maximum over variables
    (the cube-root normalization stays accurate at the 1-2 degrees of
    freedom of sparsely observed variables, where the plain
    ``(stat - dof) / sqrt(2 dof)`` approximation is right-skewed enough
    to trip the bound on noise alone).  Zero-probability states must
    never be observed at all — that is a hard error, not a large z.
    """
    m = len(data)
    worst = -math.inf
    for row, cpd in zip(net.stride_rows(), net.cpds()):
        cardinality, k_configs, parents = row
        cfg = np.zeros(m, dtype=np.int64)
        for position, stride in parents:
            cfg += data[:, position] * stride
        column = net.variable_index(cpd.variable)
        cells = np.bincount(
            cfg * cardinality + data[:, column],
            minlength=k_configs * cardinality,
        ).reshape(k_configs, cardinality)
        config_totals = cells.sum(axis=1)
        keep = config_totals >= _CHI2_MIN_CONFIG_SAMPLES
        if not keep.any():
            continue
        observed = cells[keep].astype(np.float64)
        probabilities = cpd.values.T[keep]
        expected = config_totals[keep, None] * probabilities
        support = probabilities > 0.0
        if observed[~support].any():
            raise AssertionError(
                f"sampled impossible state(s) of {cpd.variable!r}: "
                "zero-probability cells have nonzero counts"
            )
        stat = float(
            (((observed - expected) ** 2)[support] / expected[support]).sum()
        )
        dof = int(support.sum()) - int(keep.sum())
        if dof <= 0:
            continue
        variance = 2.0 / (9.0 * dof)
        z = ((stat / dof) ** (1.0 / 3.0) - (1.0 - variance)) / math.sqrt(
            variance
        )
        worst = max(worst, z)
    return worst


def _pin_sampler_determinism(net, engine: str, seed: int, m: int, chunk: int):
    """Byte-identity pins for one engine; returns the drawn ``(m, n)`` data.

    Four fresh samplers with the same seed must agree byte-for-byte
    across every drawing surface: ``sample``, ``sample_into``, and
    ``sample_stream`` with and without buffer reuse (at the same chunk
    sequence — chunked streams legitimately differ from one-shot draws,
    so all four use the same chunking here).
    """
    def fresh():
        return ForwardSampler(net, seed=seed, engine=engine)

    streamed = np.concatenate(list(fresh().sample_stream(m, chunk=chunk)))
    reused = np.concatenate([
        batch.copy()
        for batch in fresh().sample_stream(m, chunk=chunk, reuse_buffer=True)
    ])
    pieces = []
    sampler_into = fresh()
    sampler_oneshot = fresh()
    storage = np.empty((net.n_variables, chunk), dtype=np.int64)
    remaining = m
    while remaining > 0:
        size = min(chunk, remaining)
        pieces.append(sampler_into.sample_into(storage[:, :size].T).copy())
        remaining -= size
    via_into = np.concatenate(pieces)
    via_sample = np.concatenate([
        sampler_oneshot.sample(min(chunk, m - start))
        for start in range(0, m, chunk)
    ])
    for label, other in (
        ("reuse_buffer", reused), ("sample_into", via_into),
        ("sample", via_sample),
    ):
        if not np.array_equal(streamed, other):
            raise AssertionError(
                f"engine {engine!r} is not deterministic: {label} draws "
                "differ from the streamed reference for the same seed"
            )
    return streamed


def _time_stream(make_sampler, m: int, chunk: int, repeats: int) -> float:
    """Cold wall time (min over repeats) to draw one full stream."""
    best = float("inf")
    for _ in range(repeats):
        sampler = make_sampler()
        t0 = time.perf_counter()
        for _batch in sampler.sample_stream(m, chunk=chunk, reuse_buffer=True):
            pass
        best = min(best, time.perf_counter() - t0)
    return best


def benchmark_sampler_engines(
    network="link",
    *,
    n_events: int = 100_000,
    chunk: int = 20_000,
    repeats: int = 3,
    seed: int = 0,
    engines=SAMPLER_BENCH_ENGINES,
    shard_modes=SAMPLER_BENCH_MODES,
    shards: int = 2,
) -> dict:
    """Time each forward-sampling engine over one full stream draw.

    Per engine, *before any timing is reported*: the byte-identity pins
    of :func:`_pin_sampler_determinism` must hold, and the drawn stream
    must pass the per-CPD chi-squared goodness-of-fit of
    :func:`_max_cpd_chi2_z` against the ground-truth network (z below
    :data:`CHI2_Z_THRESHOLD`) — the statistical-identity half of the
    engine contract (see ``docs/performance.md``).  The timed quantity
    is the cold consumption of ``sample_stream(reuse_buffer=True)``,
    minimum over ``repeats`` — exactly what
    ``MonitoringSession.ingest_sampler`` pays per chunk.

    With ``shard_modes`` non-empty the sharded parallel sampler is
    checked the same way (plus byte-identity *across* modes, which its
    per-chunk child-seed scheme guarantees) and timed per mode under a
    ``"sharded"`` block.
    """
    check_positive_int(repeats, "repeats")
    check_positive_int(chunk, "chunk")
    check_positive_int(n_events, "n_events")
    net = network_by_name(network) if isinstance(network, str) else network

    baseline = tuple(engines)[0]
    results = []
    timings: dict[str, float] = {}
    for engine in engines:
        data = _pin_sampler_determinism(net, engine, seed, n_events, chunk)
        z = _max_cpd_chi2_z(net, data)
        if z >= CHI2_Z_THRESHOLD:
            raise AssertionError(
                f"engine {engine!r} failed the chi-squared identity check: "
                f"max z {z:.2f} >= {CHI2_Z_THRESHOLD}"
            )
        timings[engine] = _time_stream(
            lambda: ForwardSampler(net, seed=seed, engine=engine),
            n_events, chunk, repeats,
        )
        entry = {
            "engine": engine,
            "max_chi2_z": z,
            "wall_seconds": timings[engine],
            "events_per_second": n_events / timings[engine],
        }
        if engine != baseline:
            entry[f"speedup_vs_{baseline}"] = (
                timings[baseline] / timings[engine]
            )
        results.append(entry)

    document = {
        "benchmark": "sampler-engines",
        "baseline_engine": baseline,
        "network": net.name,
        "n_variables": net.n_variables,
        "n_events": n_events,
        "chunk": chunk,
        "repeats": repeats,
        "seed": seed,
        "chi2_z_threshold": CHI2_Z_THRESHOLD,
        "draws_deterministic": True,
        "statistical_identity_checked": True,
        "results": results,
    }

    if shard_modes:
        from repro.exec.sampler import ShardedSampler

        streams = {}
        sharded_results = []
        for mode in shard_modes:
            def fresh(mode=mode):
                return ShardedSampler(
                    net, shards=shards, seed=seed, mode=mode
                )
            streams[mode] = np.concatenate(
                list(fresh().sample_stream(n_events, chunk=chunk))
            )
            sharded_time = _time_stream(fresh, n_events, chunk, repeats)
            sharded_results.append({
                "mode": mode,
                "wall_seconds": sharded_time,
                "events_per_second": n_events / sharded_time,
            })
        reference_mode = tuple(shard_modes)[0]
        for mode in tuple(shard_modes)[1:]:
            if not np.array_equal(streams[reference_mode], streams[mode]):
                raise AssertionError(
                    f"sharded mode {mode!r} stream differs from "
                    f"{reference_mode!r} — the cross-mode contract is broken"
                )
        z = _max_cpd_chi2_z(net, streams[reference_mode])
        if z >= CHI2_Z_THRESHOLD:
            raise AssertionError(
                "sharded sampler failed the chi-squared identity check: "
                f"max z {z:.2f} >= {CHI2_Z_THRESHOLD}"
            )
        document["sharded"] = {
            "engine": ShardedSampler(net, shards=shards, seed=seed).engine,
            "shards": shards,
            "modes_identical": True,
            "max_chi2_z": z,
            "results": sharded_results,
        }
    return document
