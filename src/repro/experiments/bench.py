"""Microbenchmarks for the training hot path.

``benchmark_update_strategies`` times ``StreamingMLEEstimator.update_batch``
under each grouping strategy on the same encoded workload: the legacy
per-site boolean-mask loop (``masked``) against the argsort site-sharding
and the dense keyed-histogram fast paths that feed
``CounterBank.bulk_add_grouped``.  It also asserts that every strategy
leaves the counter bank byte-identical, so a reported speedup can never
come from diverging semantics.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bn.repository import network_by_name
from repro.bn.sampling import ForwardSampler
from repro.core.algorithms import make_estimator
from repro.monitoring.stream import UniformPartitioner
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int

#: Strategies timed by default, legacy baseline first.
STRATEGIES = ("masked", "argsort", "dense")


def benchmark_update_strategies(
    network="alarm",
    *,
    algorithm: str = "exact",
    eps: float = 0.3,
    n_sites: int = 30,
    n_events: int = 20_000,
    repeats: int = 7,
    seed: int = 0,
    strategies=STRATEGIES,
) -> dict:
    """Time each update strategy over an identical pre-sampled batch.

    Every strategy gets its own freshly seeded estimator and feeds the same
    ``(n_events, n)`` batch ``repeats`` times; the per-call time is the
    minimum over the warm repeats (robust against scheduler noise).  Returns
    a JSON-ready document with per-strategy timings and each sharded
    strategy's speedup over the ``masked`` baseline.
    """
    check_positive_int(repeats, "repeats")
    net = network_by_name(network) if isinstance(network, str) else network
    source = RandomSource(seed)
    data = ForwardSampler(net, seed=source.generator()).sample(n_events)
    sites = UniformPartitioner(n_sites, seed=source.generator()).assign(n_events)

    timings: dict[str, float] = {}
    states: dict[str, np.ndarray] = {}
    estimates: dict[str, np.ndarray] = {}
    messages: dict[str, int] = {}
    for strategy in strategies:
        estimator = make_estimator(
            net, algorithm, eps=eps, n_sites=n_sites, seed=seed + 1
        )
        estimator.update_batch(data, sites, strategy=strategy)  # warm-up
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            estimator.update_batch(data, sites, strategy=strategy)
            best = min(best, time.perf_counter() - t0)
        timings[strategy] = best
        states[strategy] = estimator.bank._local.copy()
        estimates[strategy] = estimator.bank.estimates()
        messages[strategy] = estimator.total_messages

    baseline = strategies[0]
    for strategy in strategies[1:]:
        # Compare coordinator estimates as well as site-local counts: for
        # randomized banks _local is strategy-invariant by construction, so
        # only the estimates expose a diverging RNG path.
        if not np.array_equal(states[baseline], states[strategy]) or not (
            np.array_equal(estimates[baseline], estimates[strategy])
        ):
            raise AssertionError(
                f"strategy {strategy!r} diverged from {baseline!r}: "
                "counter states differ"
            )
        if messages[baseline] != messages[strategy]:
            raise AssertionError(
                f"strategy {strategy!r} diverged from {baseline!r}: "
                f"{messages[strategy]} != {messages[baseline]} messages"
            )

    results = []
    for strategy in strategies:
        entry = {
            "strategy": strategy,
            "ms_per_batch": timings[strategy] * 1e3,
            "events_per_second": n_events / timings[strategy],
        }
        if strategy != baseline:
            entry[f"speedup_vs_{baseline}"] = (
                timings[baseline] / timings[strategy]
            )
        results.append(entry)
    return {
        "benchmark": "update-strategies",
        "baseline_strategy": baseline,
        "network": net.name,
        "algorithm": algorithm,
        "eps": eps,
        "n_sites": n_sites,
        "n_events": n_events,
        "repeats": repeats,
        "states_identical": True,
        "results": results,
    }
