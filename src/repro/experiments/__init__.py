"""The experiment harness: the paper's evaluation as a runnable subsystem.

- :mod:`repro.experiments.runner` — :class:`ExperimentRunner` runs one
  (network, algorithm, partitioner, eps, k, m) point through a
  :class:`~repro.api.session.MonitoringSession` (``run_one``), and
  plans grids as :class:`~repro.exec.task.RunTask` graphs
  (``plan_grid``) that pluggable :mod:`repro.exec` executors drive
  serially, across worker processes, or as snapshot-bounded segments
  (``run_grid``).
- :mod:`repro.experiments.results` — result dataclasses with
  ``BENCH_*.json``-style serialization.
- :mod:`repro.experiments.bench` — microbenchmarks for the training hot
  path (update_batch grouping strategies, HYZ span-replay engines, the
  stage-level fused-ingest profiler).
- :mod:`repro.experiments.presets` — paper-scenario presets: the Sec. V
  classification comparison, the Sec. IV-E separation sweep, and the
  long-stream crossover chart.
- :mod:`repro.experiments.figures` — ASCII plots from ``BENCH_*.json``.
- :mod:`repro.experiments.cli` — ``python -m repro.experiments`` with one
  subcommand per figure family.
"""

from repro.experiments.bench import (
    benchmark_hyz_engines,
    benchmark_ingest_stages,
    benchmark_update_strategies,
)
from repro.experiments.presets import (
    classification_experiment,
    long_crossover_experiment,
    separation_experiment,
)
from repro.experiments.results import (
    SCHEMA,
    CheckpointRecord,
    ExperimentResult,
    RunResult,
    strip_timing,
)
from repro.experiments.runner import (
    ExperimentRunner,
    checkpoint_schedule,
    make_partitioner,
)

__all__ = [
    "SCHEMA",
    "CheckpointRecord",
    "RunResult",
    "ExperimentResult",
    "ExperimentRunner",
    "checkpoint_schedule",
    "make_partitioner",
    "benchmark_hyz_engines",
    "benchmark_ingest_stages",
    "benchmark_update_strategies",
    "classification_experiment",
    "long_crossover_experiment",
    "separation_experiment",
    "strip_timing",
]
