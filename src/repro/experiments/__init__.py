"""The experiment harness: the paper's evaluation as a runnable subsystem.

- :mod:`repro.experiments.runner` — :class:`ExperimentRunner` drives
  (network, algorithm, partitioner, eps, k, m) grids through
  ``make_estimator`` and records messages, accuracy, and modeled runtime.
- :mod:`repro.experiments.results` — result dataclasses with
  ``BENCH_*.json``-style serialization.
- :mod:`repro.experiments.bench` — microbenchmarks for the training hot
  path (update_batch grouping strategies).
- :mod:`repro.experiments.cli` — ``python -m repro.experiments`` with one
  subcommand per figure family.
"""

from repro.experiments.bench import (
    benchmark_hyz_engines,
    benchmark_update_strategies,
)
from repro.experiments.results import (
    SCHEMA,
    CheckpointRecord,
    ExperimentResult,
    RunResult,
)
from repro.experiments.runner import (
    ExperimentRunner,
    checkpoint_schedule,
    make_partitioner,
)

__all__ = [
    "SCHEMA",
    "CheckpointRecord",
    "RunResult",
    "ExperimentResult",
    "ExperimentRunner",
    "checkpoint_schedule",
    "make_partitioner",
    "benchmark_hyz_engines",
    "benchmark_update_strategies",
]
