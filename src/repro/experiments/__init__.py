"""The experiment harness: the paper's evaluation as a runnable subsystem.

- :mod:`repro.experiments.runner` — :class:`ExperimentRunner` drives
  (network, algorithm, partitioner, eps, k, m) grids through
  :class:`~repro.api.session.MonitoringSession` objects, records
  messages, accuracy, and modeled runtime, and checkpoints/resumes runs
  via session snapshots.
- :mod:`repro.experiments.results` — result dataclasses with
  ``BENCH_*.json``-style serialization.
- :mod:`repro.experiments.bench` — microbenchmarks for the training hot
  path (update_batch grouping strategies, HYZ span-replay engines).
- :mod:`repro.experiments.presets` — paper-scenario presets: the Sec. V
  classification comparison and the Sec. IV-E separation sweep.
- :mod:`repro.experiments.cli` — ``python -m repro.experiments`` with one
  subcommand per figure family.
"""

from repro.experiments.bench import (
    benchmark_hyz_engines,
    benchmark_update_strategies,
)
from repro.experiments.presets import (
    classification_experiment,
    separation_experiment,
)
from repro.experiments.results import (
    SCHEMA,
    CheckpointRecord,
    ExperimentResult,
    RunResult,
)
from repro.experiments.runner import (
    ExperimentRunner,
    checkpoint_schedule,
    grid_point_key,
    make_partitioner,
)

__all__ = [
    "SCHEMA",
    "CheckpointRecord",
    "RunResult",
    "ExperimentResult",
    "ExperimentRunner",
    "checkpoint_schedule",
    "grid_point_key",
    "make_partitioner",
    "benchmark_hyz_engines",
    "benchmark_update_strategies",
    "classification_experiment",
    "separation_experiment",
]
