"""Entry point for ``python -m repro.experiments``."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
