"""``bench-query``: throughput of the read-serving layer.

Measures the three read paths the serving subsystem provides — per-call
live queries (the pre-serving baseline), batched snapshot evaluation,
and cached serving (event LRU + Theorem-3-bounded decision cache) —
over one seeded :class:`~repro.serve.QueryWorkload`.

Correctness gates timing, like every benchmark in this repo: before any
clock starts, the served answers are asserted *bit-identical* to the
live session's ``log_query`` / ``log_query_event`` / classifier on a
conformance slice, then the stream is advanced one more sync epoch and
the assertion repeats against the refreshed snapshot.  All wall-clock
derived fields use the canonical timing keys
(:func:`~repro.experiments.results.strip_timing` — ``wall_seconds``,
``queries_per_second``, ``cache_hit_rate``, ``speedup_vs_*``), so the
committed ``benchmarks/BENCH_query_*.json`` documents compare stably
across hosts; cache hit/miss/stale counts and snapshot refresh counts
are deterministic functions of the seeds and are pinned.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.spec import EstimatorSpec
from repro.bn.repository import network_by_name
from repro.serve import QueryWorkload
from repro.utils.validation import check_positive_int


def _assert_served_conformance(session, server, rows, events, targets,
                               data) -> int:
    """Every served answer must equal the live one, bitwise.  Returns the
    number of conformance checks performed."""
    estimator = session.estimator
    checks = 0
    live_rows = np.array([session.log_query(row) for row in rows])
    served_rows = server.log_joint_batch(rows)
    if not np.array_equal(live_rows, served_rows):
        raise AssertionError(
            "served batch diverged from the live per-call log_query walk"
        )
    checks += len(rows)
    for row in rows:
        if server.log_joint(row) != session.log_query(row):
            raise AssertionError(
                "served scalar log_joint diverged from live log_query"
            )
        checks += 1
    for event in events:
        if server.log_event(event) != estimator.log_query_event(event):
            raise AssertionError(
                "served log_event diverged from live log_query_event"
            )
        checks += 1
    classifier = session.classifier()
    if not np.array_equal(
        server.classify_batch(targets, data),
        classifier.predict_batch(targets, data),
    ):
        raise AssertionError(
            "served classification diverged from the live classifier"
        )
    checks += len(targets)
    for target, row in zip(targets[:10], data[:10]):
        evidence = {
            name: int(row[i])
            for i, name in enumerate(session.network.node_names)
            if name != target
        }
        if not np.array_equal(
            server.scores(target, evidence),
            classifier.scores(target, evidence),
        ):
            raise AssertionError(
                "served scores diverged from the live classifier scores"
            )
        checks += 1
    return checks


def benchmark_query_serving(
    network="alarm",
    *,
    algorithm: str = "nonuniform",
    eps: float = 0.1,
    n_sites: int = 10,
    counter_backend: str = "hyz",
    n_events: int = 50_000,
    chunk: int = 10_000,
    n_queries: int = 2_000,
    event_pool: int = 32,
    classify_pool: int = 64,
    zipf_exponent: float = 1.1,
    conformance_slice: int = 200,
    seed: int = 0,
) -> dict:
    """Measure serving throughput against the live per-call read path.

    One session ingests ``n_events`` events, then a seeded workload of
    ``n_queries`` point queries, Zipf-skewed partial events, and
    Zipf-skewed classification requests is replayed against (a) the live
    session per call and (b) a :class:`~repro.serve.QueryServer`.
    Conformance (bit-identity on a ``conformance_slice``-sized slice,
    re-verified after a further sync epoch) is asserted before any
    timing.  The document's result entries carry queries/sec per mode,
    speedups over the live per-call baseline, cache hit statistics, and
    snapshot refresh counts.
    """
    check_positive_int(n_events, "n_events")
    check_positive_int(n_queries, "n_queries")
    net = network_by_name(network) if isinstance(network, str) else network
    spec = EstimatorSpec(
        network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
        seed=seed + 1, counter_backend=counter_backend,
    )
    session = spec.session()
    sampler = session.sampler(seed=seed + 2)
    session.ingest_sampler(sampler, n_events, chunk=chunk)

    workload = QueryWorkload(net, seed=seed + 3)
    rows = workload.assignments(n_queries)
    events = workload.events(
        n_queries, pool_size=event_pool, zipf_exponent=zipf_exponent
    )
    targets, cdata = workload.classification_batch(
        n_queries, pool_size=classify_pool, zipf_exponent=zipf_exponent
    )

    # Conformance before timing — now, and again one sync epoch later so
    # the snapshot-refresh path is covered too.
    server = session.serve()
    s = min(int(conformance_slice), n_queries)
    checks = _assert_served_conformance(
        session, server, rows[:s], events[:s], targets[:s], cdata[:s]
    )
    epoch_before = session.message_log.epoch
    session.ingest(sampler.sample(max(1, chunk // 10)))
    if session.message_log.epoch == epoch_before:
        raise AssertionError("ingest did not advance the sync epoch")
    refreshes_before = server.snapshot_refreshes
    checks += _assert_served_conformance(
        session, server, rows[:s], events[:s], targets[:s], cdata[:s]
    )
    if server.snapshot_refreshes != refreshes_before + 1:
        raise AssertionError(
            "conformance pass after an epoch advance should rebuild the "
            "snapshot exactly once"
        )

    # Fresh server for clean timing/cache counters.
    server = session.serve()
    estimator = session.estimator
    classifier = session.classifier()
    results = []

    t0 = time.perf_counter()
    for row in rows:
        session.log_query(row)
    single_wall = time.perf_counter() - t0
    results.append({
        "mode": "point-live-single",
        "n_queries": n_queries,
        "wall_seconds": single_wall,
        "queries_per_second": n_queries / single_wall,
    })

    t0 = time.perf_counter()
    for row in rows:
        server.log_joint(row)
    served_single_wall = time.perf_counter() - t0
    results.append({
        "mode": "point-served-single",
        "n_queries": n_queries,
        "wall_seconds": served_single_wall,
        "queries_per_second": n_queries / served_single_wall,
        "speedup_vs_live": single_wall / served_single_wall,
    })

    t0 = time.perf_counter()
    server.log_joint_batch(rows)
    batch_wall = time.perf_counter() - t0
    results.append({
        "mode": "point-served-batched",
        "n_queries": n_queries,
        "wall_seconds": batch_wall,
        "queries_per_second": n_queries / batch_wall,
        "speedup_vs_live": single_wall / batch_wall,
    })

    t0 = time.perf_counter()
    for event in events:
        estimator.log_query_event(event)
    event_live_wall = time.perf_counter() - t0
    results.append({
        "mode": "event-live-single",
        "n_queries": n_queries,
        "wall_seconds": event_live_wall,
        "queries_per_second": n_queries / event_live_wall,
    })

    cache_before = server.stats()["event_cache"]
    t0 = time.perf_counter()
    server.log_event_batch(events)
    event_cached_wall = time.perf_counter() - t0
    cache_after = server.stats()["event_cache"]
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    results.append({
        "mode": "event-served-cached",
        "n_queries": n_queries,
        "wall_seconds": event_cached_wall,
        "queries_per_second": n_queries / event_cached_wall,
        "speedup_vs_live": event_live_wall / event_cached_wall,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / max(1, hits + misses),
    })

    t0 = time.perf_counter()
    classifier.predict_batch(targets, cdata)
    classify_live_wall = time.perf_counter() - t0
    results.append({
        "mode": "classify-live-batch",
        "n_queries": n_queries,
        "wall_seconds": classify_live_wall,
        "queries_per_second": n_queries / classify_live_wall,
    })

    t0 = time.perf_counter()
    server.classify_batch(targets, cdata)
    classify_wall = time.perf_counter() - t0
    decisions = server.stats()["decision_cache"]
    results.append({
        "mode": "classify-served-cached",
        "n_queries": n_queries,
        "wall_seconds": classify_wall,
        "queries_per_second": n_queries / classify_wall,
        "speedup_vs_live": classify_live_wall / classify_wall,
        "cache_hits": decisions["hits"],
        "cache_misses": decisions["misses"],
        "cache_hit_rate": decisions["hits"]
        / max(1, decisions["hits"] + decisions["misses"]),
    })

    # Staleness-bounded serving across a sync epoch: advance the stream,
    # replay the same classification batch, and count how many cached
    # decisions the Theorem-3 margin kept servable vs invalidated.
    session.ingest(sampler.sample(max(1, chunk // 10)))
    refreshes_before = server.snapshot_refreshes
    server.classify_batch(targets, cdata)
    decisions = server.stats()["decision_cache"]
    stale = {
        "stale_hits": decisions["stale_hits"],
        "invalidations": decisions["invalidations"],
        "snapshot_refreshes_during_replay":
            server.snapshot_refreshes - refreshes_before,
        "staleness_threshold_example": server.staleness_threshold(
            net.node_names[0]
        ),
    }

    stats = server.stats()
    return {
        "benchmark": "query-serving",
        "schema": "repro-bench-v1",
        "network": net.name,
        "n_variables": net.n_variables,
        "algorithm": algorithm,
        "eps": eps,
        "counter_backend": counter_backend,
        "n_sites": n_sites,
        "n_events": n_events,
        "n_queries": n_queries,
        "event_pool": event_pool,
        "classify_pool": classify_pool,
        "zipf_exponent": zipf_exponent,
        "seed": seed,
        "conformance_checks": checks,
        "conformant": True,
        "snapshot_refreshes": stats["snapshot_refreshes"],
        "snapshot_epoch": stats["snapshot_epoch"],
        "stale_serving": stale,
        "results": results,
    }
