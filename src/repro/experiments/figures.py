"""ASCII figure rendering for ``BENCH_*.json`` documents.

The harness deliberately emits plot-ready JSON instead of images; this
module closes the loop in the terminal.  Two views cover the paper's
figure families:

- ``messages`` — total messages vs stream position, one series per run
  (Figs. 4-6 read along the stream), from any grid document whose
  ``results`` entries carry ``checkpoints``.
- ``ratio`` — the UNIFORM/NONUNIFORM message ratio vs stream length
  (the Sec. IV-E crossover chart), from ``separation`` /
  ``long-crossover`` documents whose rows carry ``uniform_messages`` and
  ``nonuniform_messages``; a reference line marks ratio = 1.

``view="auto"`` picks every view the document supports.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import EvaluationError
from repro.utils.tabletext import format_ascii_plot

#: Recognized view names (``auto`` expands to all that apply).
VIEWS = ("auto", "messages", "ratio")


def load_document(path) -> dict:
    """Read one ``BENCH_*.json`` document (any ``repro-bench-v1`` shape)."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "results" not in payload:
        raise EvaluationError(
            f"{path} is not a benchmark document (no 'results' key)"
        )
    return payload


def _checkpoint_rows(document: dict) -> list[dict]:
    """Rows carrying per-checkpoint traces: grid ``results``, or the
    full ``runs`` block that ratio-style documents attach alongside
    their summary rows."""
    rows = [r for r in document.get("results", []) if "checkpoints" in r]
    rows += [r for r in document.get("runs", []) if "checkpoints" in r]
    return rows


def available_views(document: dict) -> list[str]:
    """The concrete views this document's rows support."""
    views = []
    if _checkpoint_rows(document):
        views.append("messages")
    if any(
        "uniform_messages" in row and "nonuniform_messages" in row
        for row in document.get("results", [])
    ):
        views.append("ratio")
    return views


def _run_label(row: dict, rows: list[dict]) -> str:
    """Label one run by its algorithm plus whatever varies in this doc."""
    label = str(row.get("algorithm", "run"))
    for field, prefix in (
        ("network", ""), ("eps", "eps="), ("n_sites", "k="),
        ("partitioner", ""), ("zipf_exponent", "zipf="),
        ("counter_backend", ""), ("n_events", "m="), ("seed", "seed="),
    ):
        values = {r.get(field) for r in rows if field in r}
        if len(values) > 1:
            label += f" {prefix}{row.get(field)}"
    return label


def _messages_plot(document: dict, *, width: int, height: int) -> str:
    rows = _checkpoint_rows(document)
    series: dict[str, list] = {}
    for row in rows:
        label = _run_label(row, rows)
        # Rows the varying fields cannot tell apart still get their own
        # series rather than silently shadowing one another.
        if label in series:
            suffix = 2
            while f"{label} #{suffix}" in series:
                suffix += 1
            label = f"{label} #{suffix}"
        series[label] = [
            (c["events"], c["total_messages"]) for c in row["checkpoints"]
        ]
    return format_ascii_plot(
        series,
        width=width,
        height=height,
        title=f"{document.get('benchmark', 'benchmark')}: "
              "messages along the stream",
        x_label="events",
        y_label="messages",
        logx=True,
        logy=True,
    )


def _ratio_plot(document: dict, *, width: int, height: int) -> str:
    rows = [
        r for r in document.get("results", [])
        if "uniform_messages" in r and "nonuniform_messages" in r
    ]
    points = [
        (
            row.get("n_events", index),
            row["uniform_messages"] / max(row["nonuniform_messages"], 1),
        )
        for index, row in enumerate(rows)
    ]
    crossover = document.get("crossover_events")
    title = "uniform/nonuniform message ratio (crossover: " + (
        f"m={crossover}" if crossover is not None else "not reached"
    ) + ")"
    return format_ascii_plot(
        {"uniform/nonuniform": points},
        width=width,
        height=height,
        title=title,
        x_label="events",
        y_label="ratio",
        logx=True,
        hline=1.0,
    )


def render(
    document: dict,
    *,
    view: str = "auto",
    width: int = 64,
    height: int = 16,
) -> str:
    """Render the requested view(s) of one document as one text block."""
    if view not in VIEWS:
        raise EvaluationError(
            f"unknown view {view!r}; expected one of {VIEWS}"
        )
    supported = available_views(document)
    wanted = supported if view == "auto" else [view]
    if not wanted or not set(wanted) <= set(supported):
        raise EvaluationError(
            f"document supports views {supported or ['none']}, "
            f"requested {view!r}"
        )
    renderers = {"messages": _messages_plot, "ratio": _ratio_plot}
    return "\n\n".join(
        renderers[name](document, width=width, height=height)
        for name in wanted
    )
