"""ASCII figure rendering for ``BENCH_*.json`` documents.

The harness deliberately emits plot-ready JSON instead of images; this
module closes the loop in the terminal.  Two views cover the paper's
figure families:

- ``messages`` — total messages vs stream position, one series per run
  (Figs. 4-6 read along the stream), from any grid document whose
  ``results`` entries carry ``checkpoints``.
- ``ratio`` — the UNIFORM/NONUNIFORM message ratio vs stream length
  (the Sec. IV-E crossover chart), from ``separation`` /
  ``long-crossover`` documents whose rows carry ``uniform_messages`` and
  ``nonuniform_messages``; a reference line marks ratio = 1.

``view="auto"`` picks every view the document supports.

:func:`render` draws ASCII plots (always available); :func:`render_png`
draws the same views with matplotlib when it is installed.  matplotlib
is an *optional* dependency: its import is gated behind
:func:`matplotlib_available`, and :func:`render_png` raises a clear
:class:`~repro.errors.EvaluationError` instead of crashing with an
``ImportError`` when it is missing (the CLI falls back to ASCII with a
notice).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import EvaluationError
from repro.utils.tabletext import format_ascii_plot

#: Recognized view names (``auto`` expands to all that apply).
VIEWS = ("auto", "messages", "ratio")


def load_document(path) -> dict:
    """Read one ``BENCH_*.json`` document (any ``repro-bench-v1`` shape)."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "results" not in payload:
        raise EvaluationError(
            f"{path} is not a benchmark document (no 'results' key)"
        )
    return payload


def _checkpoint_rows(document: dict) -> list[dict]:
    """Rows carrying per-checkpoint traces: grid ``results``, or the
    full ``runs`` block that ratio-style documents attach alongside
    their summary rows."""
    rows = [r for r in document.get("results", []) if "checkpoints" in r]
    rows += [r for r in document.get("runs", []) if "checkpoints" in r]
    return rows


def available_views(document: dict) -> list[str]:
    """The concrete views this document's rows support."""
    views = []
    if _checkpoint_rows(document):
        views.append("messages")
    if any(
        "uniform_messages" in row and "nonuniform_messages" in row
        for row in document.get("results", [])
    ):
        views.append("ratio")
    return views


def _run_label(row: dict, rows: list[dict]) -> str:
    """Label one run by its algorithm plus whatever varies in this doc."""
    label = str(row.get("algorithm", "run"))
    for field, prefix in (
        ("network", ""), ("eps", "eps="), ("n_sites", "k="),
        ("partitioner", ""), ("zipf_exponent", "zipf="),
        ("counter_backend", ""), ("n_events", "m="), ("seed", "seed="),
    ):
        values = {r.get(field) for r in rows if field in r}
        if len(values) > 1:
            label += f" {prefix}{row.get(field)}"
    return label


def _messages_series(document: dict) -> tuple[dict[str, list], str]:
    """The per-run ``(events, total_messages)`` series and plot title."""
    rows = _checkpoint_rows(document)
    series: dict[str, list] = {}
    for row in rows:
        label = _run_label(row, rows)
        # Rows the varying fields cannot tell apart still get their own
        # series rather than silently shadowing one another.
        if label in series:
            suffix = 2
            while f"{label} #{suffix}" in series:
                suffix += 1
            label = f"{label} #{suffix}"
        series[label] = [
            (c["events"], c["total_messages"]) for c in row["checkpoints"]
        ]
    title = (
        f"{document.get('benchmark', 'benchmark')}: "
        "messages along the stream"
    )
    return series, title


def _ratio_series(document: dict) -> tuple[list, str]:
    """The ``(events, uniform/nonuniform)`` points and plot title."""
    rows = [
        r for r in document.get("results", [])
        if "uniform_messages" in r and "nonuniform_messages" in r
    ]
    points = [
        (
            row.get("n_events", index),
            row["uniform_messages"] / max(row["nonuniform_messages"], 1),
        )
        for index, row in enumerate(rows)
    ]
    crossover = document.get("crossover_events")
    title = "uniform/nonuniform message ratio (crossover: " + (
        f"m={crossover}" if crossover is not None else "not reached"
    ) + ")"
    return points, title


def _messages_plot(document: dict, *, width: int, height: int) -> str:
    series, title = _messages_series(document)
    return format_ascii_plot(
        series,
        width=width,
        height=height,
        title=title,
        x_label="events",
        y_label="messages",
        logx=True,
        logy=True,
    )


def _ratio_plot(document: dict, *, width: int, height: int) -> str:
    points, title = _ratio_series(document)
    return format_ascii_plot(
        {"uniform/nonuniform": points},
        width=width,
        height=height,
        title=title,
        x_label="events",
        y_label="ratio",
        logx=True,
        hline=1.0,
    )


def _resolve_views(document: dict, view: str) -> list[str]:
    """The concrete view list ``view`` asks of this document, validated."""
    if view not in VIEWS:
        raise EvaluationError(
            f"unknown view {view!r}; expected one of {VIEWS}"
        )
    supported = available_views(document)
    wanted = supported if view == "auto" else [view]
    if not wanted or not set(wanted) <= set(supported):
        raise EvaluationError(
            f"document supports views {supported or ['none']}, "
            f"requested {view!r}"
        )
    return wanted


def render(
    document: dict,
    *,
    view: str = "auto",
    width: int = 64,
    height: int = 16,
) -> str:
    """Render the requested view(s) of one document as one text block."""
    renderers = {"messages": _messages_plot, "ratio": _ratio_plot}
    return "\n\n".join(
        renderers[name](document, width=width, height=height)
        for name in _resolve_views(document, view)
    )


def matplotlib_available() -> bool:
    """Whether the optional matplotlib dependency can be imported."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _load_pyplot():
    """Import pyplot on the headless Agg backend, or fail legibly."""
    try:
        import matplotlib
    except ImportError as exc:
        raise EvaluationError(
            "PNG rendering needs matplotlib, which is not installed; "
            "use the ASCII renderer instead (drop --png) or install "
            "matplotlib"
        ) from exc
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    return plt


def render_png(
    document: dict,
    path,
    *,
    view: str = "auto",
    dpi: int = 100,
) -> str:
    """Render the requested view(s) as one PNG file; returns ``path``.

    Stacks one axes per view (the same views :func:`render` draws in
    ASCII).  Raises :class:`~repro.errors.EvaluationError` when
    matplotlib is missing — check :func:`matplotlib_available` first to
    fall back to ASCII instead.
    """
    wanted = _resolve_views(document, view)
    plt = _load_pyplot()
    fig, axes = plt.subplots(
        len(wanted), 1, figsize=(8.0, 4.5 * len(wanted)), squeeze=False
    )
    for ax, name in zip((row[0] for row in axes), wanted):
        if name == "messages":
            series, title = _messages_series(document)
            for label, points in series.items():
                ax.plot(*zip(*points), marker="o", label=label)
            ax.set_yscale("log")
            ax.set_ylabel("messages")
            ax.legend(fontsize="small")
        else:
            points, title = _ratio_series(document)
            ax.plot(*zip(*points), marker="o", label="uniform/nonuniform")
            ax.axhline(1.0, linestyle="--", linewidth=1.0)
            ax.set_ylabel("ratio")
        ax.set_xscale("log")
        ax.set_xlabel("events")
        ax.set_title(title)
    fig.tight_layout()
    fig.savefig(path, dpi=dpi)
    plt.close(fig)
    return str(path)
