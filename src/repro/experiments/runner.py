"""Drive estimator grids through simulated streams and collect results.

:class:`ExperimentRunner` reproduces the paper's evaluation loop (Sec. VI):
sample a training stream from the ground-truth network, partition it across
``k`` sites, feed it to one :class:`~repro.api.session.MonitoringSession`
per grid point, and record message counts, estimate accuracy against the
sampling network, and the modeled cluster runtime at checkpoints along the
stream.

Runs are **resumable**: give :meth:`ExperimentRunner.run_one` a
``snapshot_path`` and it persists the session (plus its own progress) at
every checkpoint; a later call with the same parameters restores the
bundle, fast-forwards the stream generators past the events the session
already saw, and continues byte-identically — the finished run is
indistinguishable from an uninterrupted one.
:meth:`ExperimentRunner.run_grid` is a thin planner on top:
:meth:`ExperimentRunner.plan_grid` expands the cartesian grid into
frozen :class:`~repro.exec.task.RunTask` descriptors, and a pluggable
:class:`~repro.exec.base.Executor` (serial, multiprocess, or chunked —
see :mod:`repro.exec`) drives them, with ``resume_dir`` result caching
keyed on each task's descriptor hash so interrupted or reordered grids
re-run only what is missing.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.api.session import MonitoringSession
from repro.api.spec import EstimatorSpec
from repro.bn.io import network_to_dict
from repro.bn.network import BayesianNetwork
from repro.bn.repository import network_by_name
from repro.bn.sampling import ForwardSampler
from repro.errors import EvaluationError, StreamError
from repro.exec.base import make_executor
from repro.exec.task import RunTask
from repro.experiments.results import (
    CheckpointRecord,
    ExperimentResult,
    RunResult,
)
from repro.monitoring.cluster import ClusterCostModel
from repro.monitoring.stream import make_partitioner
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int

__all__ = [
    "ExperimentRunner",
    "checkpoint_schedule",
    "make_partitioner",
]


def checkpoint_schedule(n_events: int, n_checkpoints: int) -> list[int]:
    """Evenly spaced checkpoint positions ending exactly at ``n_events``."""
    n_events = check_positive_int(n_events, "n_events")
    n_checkpoints = check_positive_int(n_checkpoints, "n_checkpoints")
    points = np.linspace(0, n_events, min(n_checkpoints, n_events) + 1)[1:]
    return sorted({int(round(p)) for p in points})


class ExperimentRunner:
    """Runs (network, algorithm, partitioner, eps, k, m) grid points.

    Parameters
    ----------
    eval_events:
        Held-out evaluation events sampled from the ground-truth network;
        accuracy is the mean absolute log-probability error over them.
    chunk_size:
        Stream batch size fed to the session (the training hot path).
        Part of the resume contract: chunk boundaries determine the RNG
        draw layout, so a snapshot only resumes under the same value.
    cost_model:
        The analytic cluster model used for modeled runtime/throughput.
    seed:
        Root seed; every run derives its own independent child streams.
    update_strategy:
        Grouping strategy handed to ``update_batch`` (``"auto"`` by default;
        the benchmark subcommand compares all of them explicitly).
    """

    def __init__(
        self,
        *,
        eval_events: int = 2_000,
        chunk_size: int = 10_000,
        cost_model: ClusterCostModel | None = None,
        seed: int = 0,
        update_strategy: str = "auto",
    ) -> None:
        self.eval_events = check_positive_int(eval_events, "eval_events")
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.cost_model = cost_model or ClusterCostModel()
        self.seed = int(seed)
        self.update_strategy = str(update_strategy)

    # ------------------------------------------------------------------
    def _resolve_network(self, network) -> BayesianNetwork:
        if isinstance(network, BayesianNetwork):
            return network
        return network_by_name(str(network))

    def _accuracy(self, estimator, eval_data, truth_logp) -> tuple[float | None, float]:
        est_logp = estimator.log_query_batch(eval_data)
        scored = np.isfinite(est_logp)
        unscored = 1.0 - scored.mean()
        if not scored.any():
            return None, float(unscored)
        error = float(np.mean(np.abs(est_logp[scored] - truth_logp[scored])))
        return error, float(unscored)

    def _resolve_schedule(
        self, n_events: int, checkpoints: Sequence[int] | int
    ) -> list[int]:
        if isinstance(checkpoints, int):
            return checkpoint_schedule(n_events, checkpoints)
        schedule = sorted({int(c) for c in checkpoints})
        if not schedule or schedule[-1] != n_events:
            raise StreamError(
                "explicit checkpoint schedule must end at n_events"
            )
        if schedule[0] <= 0:
            raise StreamError("checkpoints must be positive")
        return schedule

    @staticmethod
    def _comparable_spec(spec: EstimatorSpec) -> dict:
        """Spec fields that must match for a snapshot to be resumable.

        Inline-embedded networks are reduced to their *structure* (name,
        domains, parent sets): that is what determines the counter
        layout, while CPD values are ignored during learning and drift
        in the last ULP across the serialize/renormalize round-trip —
        comparing them verbatim would reject identical runs.
        """
        payload = spec.to_dict()
        network = payload["network"]
        if isinstance(network, dict):
            inline = network["inline"]
            payload["network"] = {
                "name": inline.get("name"),
                "variables": [
                    (v["name"], v["cardinality"])
                    for v in inline["variables"]
                ],
                "parents": inline["parents"],
            }
        return payload

    @staticmethod
    def _close_session(session) -> None:
        """Stop a session's worker processes, if it has any.

        The inner (already-flushed) state stays readable after close, so
        result assembly can keep querying the session object.
        """
        close = getattr(session, "close", None)
        if close is not None:
            close()

    @staticmethod
    def _remove_bundle(path) -> None:
        bundle = Path(path)
        if not bundle.is_dir():
            return
        # meta.json first: once it is gone the bundle reads as absent,
        # so a crash mid-removal can never leave a bundle that looks
        # committed but has no arrays.
        for target in (
            bundle / "meta.json",
            *bundle.glob("*.npz"),
            *bundle.glob(".tmp-*"),
        ):
            if target.is_file():
                target.unlink()
        if not any(bundle.iterdir()):
            bundle.rmdir()

    # ------------------------------------------------------------------
    def run_one(
        self,
        network,
        algorithm: str,
        *,
        eps: float = 0.1,
        n_sites: int = 10,
        n_events: int = 10_000,
        checkpoints: Sequence[int] | int = 5,
        partitioner: str = "uniform",
        zipf_exponent: float = 1.0,
        counter_backend: str = "hyz",
        hyz_engine: str = "vectorized",
        seed: int | None = None,
        spec_network=None,
        snapshot_path=None,
        stop_after: int | None = None,
        keep_snapshot: bool = False,
        runtime: str = "inprocess",
        sites_procs: int | None = None,
        transport: str = "queue",
        max_frame_mb: float | None = None,
        heartbeat_timeout: float | None = None,
    ) -> RunResult | None:
        """Train one session over one simulated stream.

        ``checkpoints`` is either an explicit increasing schedule of event
        counts (the last entry must equal ``n_events``) or a count of evenly
        spaced checkpoints.

        ``spec_network`` optionally names the network for the session's
        spec (and therefore for snapshots) when ``network`` is already a
        resolved object — a repository *name* keeps snapshot bundles
        small, an object embeds the network inline.

        With a ``snapshot_path``, the session (and the runner's progress)
        is persisted there at every checkpoint, and an existing bundle at
        that path is restored and continued instead of starting over; the
        bundle is removed once the run completes unless ``keep_snapshot``.
        ``stop_after`` ends the run early at the first checkpoint at or
        beyond that many events — the snapshot stays on disk and the call
        returns ``None`` (a partial run), which is how the CLI simulates
        interruption for smoke-testing resume.

        ``runtime="distributed"`` runs the session as a
        :class:`~repro.dist.DistributedSession` over ``sites_procs``
        worker processes, speaking ``transport`` (``"queue"`` or
        ``"tcp"`` — the :mod:`repro.net` socket wire).  Runtime and
        transport are conformant with the in-process reference (same
        message counts, same estimates — see ``docs/distributed.md``
        and ``docs/networking.md``), so results are byte-identical; the
        knobs are operational, like the executor choice.
        """
        if runtime not in ("inprocess", "distributed"):
            raise EvaluationError(
                f"unknown runtime {runtime!r}; expected 'inprocess' or "
                "'distributed'"
            )
        if transport not in ("queue", "tcp"):
            raise EvaluationError(
                f"unknown transport {transport!r}; expected 'queue' or 'tcp'"
            )
        if transport != "queue" and runtime != "distributed":
            raise EvaluationError(
                f"transport {transport!r} requires runtime='distributed' "
                "(the in-process runtime has no wire)"
            )
        for name, value in (("max_frame_mb", max_frame_mb),
                            ("heartbeat_timeout", heartbeat_timeout)):
            if value is not None and transport != "tcp":
                raise EvaluationError(
                    f"{name} only applies to the tcp transport"
                )
        if stop_after is not None and snapshot_path is None:
            raise EvaluationError(
                "stop_after without snapshot_path would discard the "
                "partial run; pass a snapshot_path to persist it"
            )
        net = self._resolve_network(network)
        n_events = check_positive_int(n_events, "n_events")
        schedule = self._resolve_schedule(n_events, checkpoints)
        run_seed = self.seed if seed is None else int(seed)

        # Stream generators: children are spawned in a fixed order
        # (sampler, partitioner, eval) so fresh and resumed runs consume
        # identical streams.  The session derives its own generators from
        # the spec seed under a distinct spawn key.
        source = RandomSource(run_seed)
        sampler = ForwardSampler(net, seed=source.generator())
        parts = make_partitioner(
            partitioner, n_sites, seed=source.generator(), exponent=zipf_exponent
        )
        if spec_network is None:
            spec_network = network if isinstance(network, str) else net
        spec = EstimatorSpec(
            network=spec_network,
            algorithm=algorithm,
            eps=eps,
            n_sites=n_sites,
            seed=run_seed,
            counter_backend=counter_backend,
            hyz_engine=hyz_engine,
            partitioner=partitioner,
            zipf_exponent=zipf_exponent,
        )
        run_params = {
            "n_events": n_events,
            "schedule": schedule,
            "chunk_size": self.chunk_size,
            "eval_events": self.eval_events,
            "seed": run_seed,
        }

        if runtime == "distributed":
            from repro.dist import DistributedSession

            session_cls = DistributedSession
            session_kwargs = {"procs": sites_procs, "transport": transport}
            if max_frame_mb is not None:
                session_kwargs["max_frame_bytes"] = int(
                    float(max_frame_mb) * 1024 * 1024
                )
            if heartbeat_timeout is not None:
                session_kwargs["heartbeat_timeout"] = float(heartbeat_timeout)
        else:
            session_cls = MonitoringSession
            session_kwargs = {}

        resume_state = None
        if snapshot_path is not None and (
            Path(snapshot_path) / "meta.json"
        ).is_file():
            session = session_cls.restore(
                snapshot_path, network=net, **session_kwargs
            )
            extra = session.restored_extra or {}
            resume_state = extra.get("runner")
            if resume_state is None:
                raise EvaluationError(
                    f"snapshot at {snapshot_path} holds no runner state"
                )
            if resume_state.get("params") != run_params:
                raise EvaluationError(
                    f"snapshot at {snapshot_path} was taken under different "
                    f"run parameters {resume_state.get('params')}; "
                    f"this run uses {run_params}"
                )
            if self._comparable_spec(session.spec) != self._comparable_spec(spec):
                raise EvaluationError(
                    f"snapshot at {snapshot_path} holds a different "
                    f"estimator spec ({session.spec.algorithm!r}, "
                    f"eps={session.spec.eps}); this run requested "
                    f"{spec.algorithm!r}, eps={spec.eps}"
                )
        else:
            session = session_cls(spec, network=net, **session_kwargs)

        eval_sampler = ForwardSampler(net, seed=source.generator())
        eval_data = eval_sampler.sample(self.eval_events)
        truth_logp = net.log_probability_batch(eval_data)

        if resume_state is not None:
            records = [
                CheckpointRecord.from_dict(c)
                for c in resume_state["checkpoints"]
            ]
            wall = float(resume_state["wall_seconds"])
            done = int(resume_state["produced"])
            if done != session.events_seen:
                raise EvaluationError(
                    f"snapshot stream position {done} disagrees with the "
                    f"session's events_seen {session.events_seen}"
                )
        else:
            records = []
            wall = 0.0
            done = 0

        produced = 0
        for target in schedule:
            while produced < target:
                size = min(self.chunk_size, target - produced)
                batch = sampler.sample(size)
                sites = parts.assign(size)
                # Chunks at or before the snapshot position are replayed
                # only to advance the generators (snapshots land on
                # checkpoint boundaries, so chunks never straddle `done`).
                if produced + size > done:
                    t0 = time.perf_counter()
                    session.ingest(batch, sites, strategy=self.update_strategy)
                    wall += time.perf_counter() - t0
                produced += size
            if produced <= done:
                continue  # checkpoint recorded before the snapshot
            error, unscored = self._accuracy(
                session.estimator, eval_data, truth_logp
            )
            records.append(
                CheckpointRecord(
                    events=produced,
                    total_messages=session.total_messages,
                    messages_by_kind=session.message_log.snapshot(),
                    mean_abs_log_error=error,
                    unscored_fraction=unscored,
                )
            )
            # No snapshot at the final checkpoint: the run is about to
            # return its complete result, and the bundle would be removed
            # a few lines below anyway (a crash in between resumes from
            # the previous checkpoint's bundle instead).
            if snapshot_path is not None and produced < n_events:
                session.snapshot(
                    snapshot_path,
                    extra={
                        "runner": {
                            "params": run_params,
                            "produced": produced,
                            "wall_seconds": wall,
                            "checkpoints": [r.to_dict() for r in records],
                        }
                    },
                )
            if (
                stop_after is not None
                and produced >= stop_after
                and produced < n_events
            ):
                self._close_session(session)
                return None

        log = session.message_log
        self._close_session(session)
        summary = self.cost_model.summarize(
            n_events,
            net.n_variables,
            session.total_messages,
            n_sites,
            max_site_messages=int(log.site_messages.max()),
        )
        if snapshot_path is not None and not keep_snapshot:
            self._remove_bundle(snapshot_path)
        return RunResult(
            network=net.name,
            algorithm=session.estimator.name,
            partitioner=partitioner,
            counter_backend=spec.resolved_backend,
            eps=float(eps),
            n_sites=int(n_sites),
            n_events=n_events,
            seed=run_seed,
            n_variables=net.n_variables,
            parameter_count=net.parameter_count,
            n_counters=session.estimator.n_counters,
            checkpoints=records,
            runtime={
                "runtime_seconds": summary.runtime_seconds,
                "throughput_events_per_second": summary.throughput_events_per_second,
                "site_busy_seconds": summary.site_busy_seconds,
                "coordinator_busy_seconds": summary.coordinator_busy_seconds,
            },
            wall_seconds=wall,
        )

    # ------------------------------------------------------------------
    def plan_grid(
        self,
        *,
        networks: Sequence = ("alarm",),
        algorithms: Sequence[str] = ("exact", "nonuniform"),
        eps_values: Sequence[float] = (0.1,),
        site_counts: Sequence[int] = (10,),
        n_events: int = 10_000,
        checkpoints: Sequence[int] | int = 5,
        partitioner: str = "uniform",
        zipf_exponent: float = 1.0,
        counter_backend: str = "hyz",
        hyz_engine: str = "vectorized",
        runtime: str = "inprocess",
        sites_procs: int | None = None,
        transport: str = "queue",
        max_frame_mb: float | None = None,
        heartbeat_timeout: float | None = None,
    ) -> list[RunTask]:
        """Expand the cartesian grid into a task graph.

        Every cell becomes one frozen :class:`~repro.exec.task.RunTask`
        carrying the runner's harness settings (``eval_events``,
        ``chunk_size``, ``update_strategy``, root ``seed``) alongside
        the cell's own parameters, so any executor can rebuild the run
        anywhere.  Explicit network objects are serialized inline once,
        here, so all executors — the in-process one included — train on
        the identical round-tripped model.

        Every task reuses ``self.seed``, so all grid cells train on
        byte-identical streams/partitions — the paired design the
        paper's algorithm comparisons assume.
        """
        n_events = check_positive_int(n_events, "n_events")
        schedule = tuple(self._resolve_schedule(n_events, checkpoints))
        tasks: list[RunTask] = []
        for network in networks:
            if isinstance(network, BayesianNetwork):
                net_field: "str | dict" = {
                    "inline": network_to_dict(network)
                }
            else:
                net_field = str(network)
                network_by_name(net_field)  # fail fast, not in a worker
            for eps in eps_values:
                for n_sites in site_counts:
                    for algorithm in algorithms:
                        tasks.append(
                            RunTask(
                                network=net_field,
                                algorithm=algorithm,
                                eps=float(eps),
                                n_sites=int(n_sites),
                                n_events=n_events,
                                checkpoints=schedule,
                                partitioner=partitioner,
                                zipf_exponent=zipf_exponent,
                                counter_backend=counter_backend,
                                hyz_engine=hyz_engine,
                                seed=self.seed,
                                eval_events=self.eval_events,
                                chunk_size=self.chunk_size,
                                update_strategy=self.update_strategy,
                                runtime=runtime,
                                sites_procs=sites_procs,
                                transport=transport,
                                max_frame_mb=max_frame_mb,
                                heartbeat_timeout=heartbeat_timeout,
                            )
                        )
        return tasks

    def run_grid(
        self,
        name: str,
        *,
        networks: Sequence = ("alarm",),
        algorithms: Sequence[str] = ("exact", "nonuniform"),
        eps_values: Sequence[float] = (0.1,),
        site_counts: Sequence[int] = (10,),
        n_events: int = 10_000,
        checkpoints: Sequence[int] | int = 5,
        partitioner: str = "uniform",
        zipf_exponent: float = 1.0,
        counter_backend: str = "hyz",
        hyz_engine: str = "vectorized",
        runtime: str = "inprocess",
        sites_procs: int | None = None,
        transport: str = "queue",
        max_frame_mb: float | None = None,
        heartbeat_timeout: float | None = None,
        resume_dir=None,
        stop_after: int | None = None,
        executor="serial",
        jobs: int | None = None,
        segment_events: int | None = None,
    ) -> ExperimentResult:
        """Plan the grid, hand it to an executor, merge the results.

        ``executor`` is a registered name (``"serial"``,
        ``"multiprocess"``, ``"chunked"``) or a ready
        :class:`~repro.exec.base.Executor` instance; ``jobs`` and
        ``segment_events`` configure named executors that accept them.
        All executors produce identical results (the executor choice is
        deliberately *not* recorded in ``params``), so this is purely an
        operational knob.

        With a ``resume_dir``, every grid cell checkpoints its session
        under ``<resume_dir>/<cache_key>.ckpt`` and caches its finished
        :class:`RunResult` as ``<cache_key>.result.json``; the key is a
        hash of the full task descriptor, so re-invoking the grid —
        reordered or extended — loads exactly the cells whose
        descriptors match and computes the rest.  Cells stopped early by
        ``stop_after`` are listed in ``params["incomplete_runs"]``.
        """
        if stop_after is not None and resume_dir is None:
            raise EvaluationError(
                "stop_after without resume_dir would discard the partial "
                "runs; pass a resume_dir to persist their snapshots"
            )
        tasks = self.plan_grid(
            networks=networks,
            algorithms=algorithms,
            eps_values=eps_values,
            site_counts=site_counts,
            n_events=n_events,
            checkpoints=checkpoints,
            partitioner=partitioner,
            zipf_exponent=zipf_exponent,
            counter_backend=counter_backend,
            hyz_engine=hyz_engine,
            runtime=runtime,
            sites_procs=sites_procs,
            transport=transport,
            max_frame_mb=max_frame_mb,
            heartbeat_timeout=heartbeat_timeout,
        )
        outcome = make_executor(
            executor, jobs=jobs, segment_events=segment_events
        ).run(tasks, resume_dir=resume_dir, stop_after=stop_after)
        result = ExperimentResult(
            name=name,
            params={
                # Task descriptors already carry the (validated) names;
                # re-resolving here would rebuild every repository
                # network a second time.
                "networks": list(
                    dict.fromkeys(task.network_name for task in tasks)
                ),
                "algorithms": list(algorithms),
                "eps_values": [float(e) for e in eps_values],
                "site_counts": [int(k) for k in site_counts],
                "n_events": int(n_events),
                "partitioner": partitioner,
                "zipf_exponent": zipf_exponent,
                "checkpoints": (
                    checkpoints
                    if isinstance(checkpoints, int)
                    else [int(c) for c in checkpoints]
                ),
                "counter_backend": counter_backend,
                "hyz_engine": hyz_engine,
                "eval_events": self.eval_events,
                "seed": self.seed,
            },
        )
        result.runs = outcome.completed
        if outcome.incomplete:
            result.params["incomplete_runs"] = outcome.incomplete
        return result
