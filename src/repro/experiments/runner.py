"""Drive estimator grids through simulated streams and collect results.

:class:`ExperimentRunner` reproduces the paper's evaluation loop (Sec. VI):
sample a training stream from the ground-truth network, partition it across
``k`` sites, feed it to one estimator per grid point, and record message
counts, estimate accuracy against the sampling network, and the modeled
cluster runtime at checkpoints along the stream.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.bn.repository import network_by_name
from repro.bn.sampling import ForwardSampler
from repro.core.algorithms import make_estimator
from repro.errors import StreamError
from repro.experiments.results import (
    CheckpointRecord,
    ExperimentResult,
    RunResult,
)
from repro.monitoring.cluster import ClusterCostModel
from repro.monitoring.stream import (
    RoundRobinPartitioner,
    UniformPartitioner,
    ZipfPartitioner,
)
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int


def make_partitioner(name: str, n_sites: int, *, seed=None, exponent: float = 1.0):
    """Build a stream partitioner by its CLI name."""
    key = name.strip().lower().replace("_", "-")
    if key == "uniform":
        return UniformPartitioner(n_sites, seed=seed)
    if key == "round-robin":
        return RoundRobinPartitioner(n_sites)
    if key == "zipf":
        return ZipfPartitioner(n_sites, exponent=exponent, seed=seed)
    raise StreamError(
        f"unknown partitioner {name!r}; expected 'uniform', 'round-robin', "
        "or 'zipf'"
    )


def checkpoint_schedule(n_events: int, n_checkpoints: int) -> list[int]:
    """Evenly spaced checkpoint positions ending exactly at ``n_events``."""
    n_events = check_positive_int(n_events, "n_events")
    n_checkpoints = check_positive_int(n_checkpoints, "n_checkpoints")
    points = np.linspace(0, n_events, min(n_checkpoints, n_events) + 1)[1:]
    return sorted({int(round(p)) for p in points})


class ExperimentRunner:
    """Runs (network, algorithm, partitioner, eps, k, m) grid points.

    Parameters
    ----------
    eval_events:
        Held-out evaluation events sampled from the ground-truth network;
        accuracy is the mean absolute log-probability error over them.
    chunk_size:
        Stream batch size fed to ``update_batch`` (the training hot path).
    cost_model:
        The analytic cluster model used for modeled runtime/throughput.
    seed:
        Root seed; every run derives its own independent child streams.
    update_strategy:
        Grouping strategy handed to ``update_batch`` (``"auto"`` by default;
        the benchmark subcommand compares all of them explicitly).
    """

    def __init__(
        self,
        *,
        eval_events: int = 2_000,
        chunk_size: int = 10_000,
        cost_model: ClusterCostModel | None = None,
        seed: int = 0,
        update_strategy: str = "auto",
    ) -> None:
        self.eval_events = check_positive_int(eval_events, "eval_events")
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.cost_model = cost_model or ClusterCostModel()
        self.seed = int(seed)
        self.update_strategy = str(update_strategy)

    # ------------------------------------------------------------------
    def _resolve_network(self, network) -> BayesianNetwork:
        if isinstance(network, BayesianNetwork):
            return network
        return network_by_name(str(network))

    def _accuracy(self, estimator, eval_data, truth_logp) -> tuple[float | None, float]:
        est_logp = estimator.log_query_batch(eval_data)
        scored = np.isfinite(est_logp)
        unscored = 1.0 - scored.mean()
        if not scored.any():
            return None, float(unscored)
        error = float(np.mean(np.abs(est_logp[scored] - truth_logp[scored])))
        return error, float(unscored)

    # ------------------------------------------------------------------
    def run_one(
        self,
        network,
        algorithm: str,
        *,
        eps: float = 0.1,
        n_sites: int = 10,
        n_events: int = 10_000,
        checkpoints: Sequence[int] | int = 5,
        partitioner: str = "uniform",
        zipf_exponent: float = 1.0,
        counter_backend: str = "hyz",
        seed: int | None = None,
    ) -> RunResult:
        """Train one estimator over one simulated stream.

        ``checkpoints`` is either an explicit increasing schedule of event
        counts (the last entry must equal ``n_events``) or a count of evenly
        spaced checkpoints.
        """
        net = self._resolve_network(network)
        n_events = check_positive_int(n_events, "n_events")
        if isinstance(checkpoints, int):
            schedule = checkpoint_schedule(n_events, checkpoints)
        else:
            schedule = sorted({int(c) for c in checkpoints})
            if not schedule or schedule[-1] != n_events:
                raise StreamError(
                    "explicit checkpoint schedule must end at n_events"
                )
            if schedule[0] <= 0:
                raise StreamError("checkpoints must be positive")
        run_seed = self.seed if seed is None else int(seed)
        source = RandomSource(run_seed)
        sampler = ForwardSampler(net, seed=source.generator())
        parts = make_partitioner(
            partitioner, n_sites, seed=source.generator(), exponent=zipf_exponent
        )
        estimator = make_estimator(
            net,
            algorithm,
            eps=eps,
            n_sites=n_sites,
            seed=source.generator(),
            counter_backend=counter_backend,
        )
        eval_sampler = ForwardSampler(net, seed=source.generator())
        eval_data = eval_sampler.sample(self.eval_events)
        truth_logp = net.log_probability_batch(eval_data)

        records: list[CheckpointRecord] = []
        produced = 0
        wall = 0.0
        for target in schedule:
            while produced < target:
                size = min(self.chunk_size, target - produced)
                batch = sampler.sample(size)
                sites = parts.assign(size)
                t0 = time.perf_counter()
                estimator.update_batch(
                    batch, sites, strategy=self.update_strategy
                )
                wall += time.perf_counter() - t0
                produced += size
            error, unscored = self._accuracy(estimator, eval_data, truth_logp)
            records.append(
                CheckpointRecord(
                    events=produced,
                    total_messages=estimator.total_messages,
                    messages_by_kind=estimator.bank.message_log.snapshot(),
                    mean_abs_log_error=error,
                    unscored_fraction=unscored,
                )
            )

        log = estimator.bank.message_log
        summary = self.cost_model.summarize(
            n_events,
            net.n_variables,
            estimator.total_messages,
            n_sites,
            max_site_messages=int(log.site_messages.max()),
        )
        return RunResult(
            network=net.name,
            algorithm=estimator.name,
            partitioner=partitioner,
            counter_backend=counter_backend if algorithm != "exact" else "exact",
            eps=float(eps),
            n_sites=int(n_sites),
            n_events=n_events,
            seed=run_seed,
            n_variables=net.n_variables,
            parameter_count=net.parameter_count,
            n_counters=estimator.n_counters,
            checkpoints=records,
            runtime={
                "runtime_seconds": summary.runtime_seconds,
                "throughput_events_per_second": summary.throughput_events_per_second,
                "site_busy_seconds": summary.site_busy_seconds,
                "coordinator_busy_seconds": summary.coordinator_busy_seconds,
            },
            wall_seconds=wall,
        )

    # ------------------------------------------------------------------
    def run_grid(
        self,
        name: str,
        *,
        networks: Sequence = ("alarm",),
        algorithms: Sequence[str] = ("exact", "nonuniform"),
        eps_values: Sequence[float] = (0.1,),
        site_counts: Sequence[int] = (10,),
        n_events: int = 10_000,
        checkpoints: Sequence[int] | int = 5,
        partitioner: str = "uniform",
        zipf_exponent: float = 1.0,
        counter_backend: str = "hyz",
    ) -> ExperimentResult:
        """Run the full cartesian grid and collect an :class:`ExperimentResult`."""
        resolved = [self._resolve_network(n) for n in networks]
        result = ExperimentResult(
            name=name,
            params={
                "networks": [n.name for n in resolved],
                "algorithms": list(algorithms),
                "eps_values": [float(e) for e in eps_values],
                "site_counts": [int(k) for k in site_counts],
                "n_events": int(n_events),
                "partitioner": partitioner,
                "zipf_exponent": zipf_exponent,
                "checkpoints": (
                    checkpoints
                    if isinstance(checkpoints, int)
                    else [int(c) for c in checkpoints]
                ),
                "counter_backend": counter_backend,
                "eval_events": self.eval_events,
                "seed": self.seed,
            },
        )
        # Every run_one call reuses self.seed, so all grid points train on
        # byte-identical streams/partitions — the paired design the paper's
        # algorithm comparisons assume (regeneration keeps memory flat).
        for net in resolved:
            for eps in eps_values:
                for n_sites in site_counts:
                    for algorithm in algorithms:
                        result.runs.append(
                            self.run_one(
                                net,
                                algorithm,
                                eps=eps,
                                n_sites=n_sites,
                                n_events=n_events,
                                checkpoints=checkpoints,
                                partitioner=partitioner,
                                zipf_exponent=zipf_exponent,
                                counter_backend=counter_backend,
                            )
                        )
        return result
