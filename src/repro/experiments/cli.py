"""``python -m repro.experiments`` — the paper's evaluation, as subcommands.

One subcommand per figure family of Zhang, Tirthapura & Cormode (ICDE 2018):

- ``messages``   — message counts and accuracy along the stream (Fig. 4).
- ``eps``        — communication vs the approximation budget eps (Fig. 5).
- ``sites``      — communication vs the number of sites k (Fig. 6).
- ``accuracy``   — estimate accuracy vs stream length (Fig. 7's metric).
- ``runtime``    — modeled cluster runtime/throughput (Figs. 7-8).
- ``classify``   — approximate vs exact Bayesian classification (Sec. V,
  Definition 4 / Theorem 3): agreement rate and error-rate gap.
- ``separation`` — the Sec. IV-E NONUNIFORM-vs-UNIFORM crossover sweep
  on NEW-ALARM.
- ``long-crossover`` — the NEW-ALARM crossover pushed past m >~ 1M via
  the chunked executor.
- ``figures``    — ASCII plots from any ``BENCH_*.json`` document.
- ``bench``      — microbenchmark of the update_batch grouping strategies.
- ``bench-hyz``  — microbenchmark of the HYZ span-replay engines.
- ``bench-ingest`` — stage-level profile of the fused ingest pipeline
  (sample / partition / encode / update) per batch encoder; produces the
  committed ``benchmarks/BENCH_ingest_*.json`` trajectory.
- ``bench-sampling`` — microbenchmark of the forward-sampling engines
  (reference vs stride-table CDF fast path, plus the sharded parallel
  sampler); produces the committed ``benchmarks/BENCH_sampling_*.json``
  trajectory.  Determinism and chi-squared statistical-identity checks
  are asserted before any timing is reported.
- ``bench-dist`` — measured throughput/latency of the real multiprocess
  runtime (``--runtime distributed``) against the in-process reference
  and the analytic ``ClusterCostModel``; conformance (and one
  kill/recover cycle) is asserted before timing.  Produces the committed
  ``benchmarks/BENCH_dist_*.json`` trajectory.
- ``bench-query`` — throughput of the read-serving layer
  (``session.serve()``): per-call live queries vs batched snapshot
  evaluation vs cached serving, plus classification with the Theorem-3
  staleness-bounded decision cache.  Bit-identity of every served
  answer to the live session is asserted before timing.  Produces the
  committed ``benchmarks/BENCH_query_*.json`` trajectory.
- ``bench-recovery`` — coordinator durability: write-ahead-log overhead
  at steady state plus a kill/recover cycle per transport, with the
  recovered session asserted byte-identical to an uninterrupted
  reference before any timing is reported.  Produces the committed
  ``benchmarks/BENCH_recovery_*.json`` trajectory.

Each subcommand prints an aligned summary table to stderr and writes a
``BENCH_*.json``-style document to ``--out`` (stdout by default).

Grid subcommands pick their driver with ``--executor`` (``serial``,
``multiprocess``, ``chunked`` — see ``docs/execution.md``); every
executor produces byte-identical results (wall-clock fields aside), so
``--executor multiprocess --jobs 4`` is purely a speed knob, and
``--executor chunked`` additionally survives worker death mid-run.

Grid subcommands are resumable: ``--resume-dir DIR`` checkpoints every
run's session there (snapshot bundles) and caches finished results —
keyed on a hash of the full task descriptor, so reordered or extended
grids reuse exactly the cells that match — and re-invoking the same
command continues where it left off.  ``--stop-after N`` deliberately
interrupts each run at the first checkpoint past ``N`` events — exit
code 3 signals "snapshots saved, re-run to finish", which is how
``make smoke`` exercises the snapshot→restore cycle end to end.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.algorithms import ALGORITHMS
from repro.counters.hyz import ENGINES
from repro.exec.base import executor_names
from repro.experiments import figures
from repro.bn.sampling import SAMPLER_ENGINES
from repro.exec.sampler import SHARD_MODES
from repro.experiments.bench import (
    INGEST_ENCODERS,
    INGEST_STAGES,
    SAMPLER_BENCH_ENGINES,
    SAMPLER_BENCH_MODES,
    benchmark_hyz_engines,
    benchmark_ingest_stages,
    benchmark_sampler_engines,
    benchmark_update_strategies,
)
from repro.experiments.bench_dist import benchmark_distributed_runtime
from repro.experiments.bench_query import benchmark_query_serving
from repro.experiments.bench_recovery import benchmark_recovery
from repro.experiments.presets import (
    classification_experiment,
    long_crossover_experiment,
    separation_experiment,
)
from repro.experiments.runner import ExperimentRunner
from repro.utils.tabletext import format_table

#: Exit code of a grid command that stopped early, leaving snapshots.
EXIT_INCOMPLETE = 3


def _csv(value: str) -> list[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def _csv_floats(value: str) -> list[float]:
    return [float(part) for part in _csv(value)]


def _csv_ints(value: str) -> list[int]:
    return [int(part) for part in _csv(value)]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--network", default="alarm",
        help="evaluation network name (Table I): alarm, new-alarm, hepar2, "
        "link, munin, naive-bayes",
    )
    parser.add_argument(
        "--algorithms", type=_csv, default=list(ALGORITHMS),
        help="comma-separated algorithm list (default: %(default)s)",
    )
    parser.add_argument("--events", type=int, default=10_000,
                        help="stream length m (default: %(default)s)")
    parser.add_argument("--sites", type=int, default=10,
                        help="number of sites k (default: %(default)s)")
    parser.add_argument("--eps", type=float, default=0.1,
                        help="approximation budget (default: %(default)s)")
    parser.add_argument("--checkpoints", type=int, default=5,
                        help="evenly spaced checkpoints (default: %(default)s)")
    parser.add_argument("--partitioner", default="uniform",
                        choices=["uniform", "round-robin", "zipf"])
    parser.add_argument("--zipf-exponent", type=float, default=1.0)
    parser.add_argument("--counter-backend", default="hyz",
                        choices=["hyz", "deterministic"])
    parser.add_argument("--hyz-engine", default="vectorized",
                        choices=list(ENGINES),
                        help="HYZ span-replay engine (default: %(default)s)")
    parser.add_argument("--eval-events", type=int, default=2_000,
                        help="held-out accuracy sample size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--runtime", default="inprocess",
        choices=["inprocess", "distributed"],
        help="session runtime (default: %(default)s); 'distributed' runs "
        "real site worker processes and produces identical results "
        "(see docs/distributed.md)",
    )
    parser.add_argument(
        "--sites-procs", type=int, default=None,
        help="worker processes for --runtime distributed "
        "(default: one per CPU core, capped at k)",
    )
    parser.add_argument(
        "--transport", default="queue", choices=["queue", "tcp"],
        help="channel of --runtime distributed (default: %(default)s); "
        "'tcp' runs the repro.net socket wire over loopback with "
        "identical results (see docs/networking.md)",
    )
    parser.add_argument(
        "--max-frame-mb", type=float, default=None,
        help="per-frame payload ceiling in MiB for --transport tcp "
        "(default: the wire's 256 MiB cap)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=None,
        help="worker-side dead-peer threshold in seconds for "
        "--transport tcp (default: off)",
    )
    parser.add_argument(
        "--executor", default="serial", choices=executor_names(),
        help="task-graph driver (default: %(default)s); all executors "
        "produce identical results",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for parallel executors "
        "(default: all CPU cores for multiprocess, 1 for chunked)",
    )
    parser.add_argument(
        "--segment-events", type=int, default=None,
        help="minimum events between chunked-executor snapshot boundaries "
        "(default: every checkpoint)",
    )
    parser.add_argument(
        "--resume-dir", default=None,
        help="checkpoint sessions and cache results here; re-invoking the "
        "same command resumes incomplete runs and skips finished ones",
    )
    parser.add_argument(
        "--stop-after", type=int, default=None,
        help="interrupt every run at the first checkpoint past this many "
        "events, leaving resumable snapshots (needs --resume-dir)",
    )
    parser.add_argument("--out", default=None,
                        help="write JSON here (default: stdout)")


def _runner(args) -> ExperimentRunner:
    return ExperimentRunner(
        eval_events=args.eval_events, seed=args.seed
    )


def _emit(document: dict, out_path, *, summary: str) -> None:
    print(summary, file=sys.stderr)
    text = json.dumps(document, indent=2, sort_keys=True)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out_path}", file=sys.stderr)
    else:
        print(text)


def _run_table(result) -> str:
    rows = []
    for run in result.runs:
        final = run.final
        rows.append([
            run.network, run.algorithm, run.eps, run.n_sites, run.n_events,
            final.total_messages, run.messages_per_event,
            "-" if final.mean_abs_log_error is None
            else final.mean_abs_log_error,
            run.runtime["runtime_seconds"],
        ])
    return format_table(
        ["network", "algorithm", "eps", "k", "m", "messages", "msg/event",
         "|log-err|", "model-sec"],
        rows,
        title=f"experiment: {result.name}",
    )


def _grid_command(args, *, name, eps_values=None, site_counts=None) -> int:
    if args.stop_after is not None and args.resume_dir is None:
        print("--stop-after requires --resume-dir", file=sys.stderr)
        return 2
    runner = _runner(args)
    result = runner.run_grid(
        name,
        networks=[args.network],
        algorithms=args.algorithms,
        eps_values=eps_values if eps_values is not None else [args.eps],
        site_counts=site_counts if site_counts is not None else [args.sites],
        n_events=args.events,
        checkpoints=args.checkpoints,
        partitioner=args.partitioner,
        zipf_exponent=args.zipf_exponent,
        counter_backend=args.counter_backend,
        hyz_engine=args.hyz_engine,
        runtime=args.runtime,
        sites_procs=args.sites_procs,
        transport=args.transport,
        max_frame_mb=args.max_frame_mb,
        heartbeat_timeout=args.heartbeat_timeout,
        resume_dir=args.resume_dir,
        stop_after=args.stop_after,
        executor=args.executor,
        jobs=args.jobs,
        segment_events=args.segment_events,
    )
    _emit(result.to_dict(), args.out, summary=_run_table(result))
    incomplete = result.params.get("incomplete_runs", [])
    if incomplete:
        print(
            f"{len(incomplete)} run(s) stopped early with snapshots under "
            f"{args.resume_dir}; re-invoke the same command to finish them",
            file=sys.stderr,
        )
        return EXIT_INCOMPLETE
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_messages = sub.add_parser(
        "messages", help="messages and accuracy along the stream (Fig. 4)"
    )
    _add_common(p_messages)

    p_eps = sub.add_parser(
        "eps", help="communication vs approximation budget eps (Fig. 5)"
    )
    _add_common(p_eps)
    p_eps.add_argument(
        "--eps-values", type=_csv_floats, default=[0.05, 0.1, 0.2, 0.4],
        help="comma-separated eps sweep (default: %(default)s)",
    )

    p_sites = sub.add_parser(
        "sites", help="communication vs number of sites k (Fig. 6)"
    )
    _add_common(p_sites)
    p_sites.add_argument(
        "--site-values", type=_csv_ints, default=[5, 10, 20, 30],
        help="comma-separated site-count sweep (default: %(default)s)",
    )

    p_accuracy = sub.add_parser(
        "accuracy", help="estimate accuracy vs stream length"
    )
    _add_common(p_accuracy)

    p_runtime = sub.add_parser(
        "runtime", help="modeled cluster runtime and throughput (Figs. 7-8)"
    )
    _add_common(p_runtime)

    p_classify = sub.add_parser(
        "classify",
        help="approximate vs exact classification (Sec. V, Theorem 3)",
    )
    p_classify.add_argument("--features", type=int, default=12,
                            help="number of Naive Bayes features")
    p_classify.add_argument("--class-cardinality", type=int, default=3)
    p_classify.add_argument("--feature-cardinality", type=int, default=4)
    p_classify.add_argument(
        "--algorithms", type=_csv, default=["naive-bayes", "nonuniform"],
        help="approximate algorithms to compare against exact",
    )
    p_classify.add_argument("--eps", type=float, default=0.1)
    p_classify.add_argument("--sites", type=int, default=10)
    p_classify.add_argument("--events", type=int, default=20_000)
    p_classify.add_argument("--eval-events", type=int, default=2_000)
    p_classify.add_argument("--hyz-engine", default="vectorized",
                            choices=list(ENGINES))
    p_classify.add_argument("--seed", type=int, default=0)
    p_classify.add_argument("--out", default=None)

    p_separation = sub.add_parser(
        "separation",
        help="NONUNIFORM-vs-UNIFORM crossover on NEW-ALARM (Sec. IV-E)",
    )
    p_separation.add_argument(
        "--events-values", type=_csv_ints,
        default=[10_000, 50_000, 150_000],
        help="NEW-ALARM stream-length sweep (default: %(default)s)",
    )
    p_separation.add_argument("--eps", type=float, default=0.4,
                              help="large eps favors the sampling regime")
    p_separation.add_argument("--sites", type=int, default=10)
    p_separation.add_argument("--inflated-count", type=int, default=6)
    p_separation.add_argument("--inflated-cardinality", type=int, default=20)
    p_separation.add_argument(
        "--example-events", type=int, default=200_000,
        help="stream length of the Sec. IV-E tree example "
        "(default: %(default)s — long enough for NONUNIFORM to win)",
    )
    p_separation.add_argument("--example-variables", type=int, default=20)
    p_separation.add_argument("--example-j-large", type=int, default=50)
    p_separation.add_argument("--example-eps", type=float, default=0.5)
    p_separation.add_argument("--eval-events", type=int, default=200)
    p_separation.add_argument("--hyz-engine", default="vectorized",
                              choices=list(ENGINES))
    p_separation.add_argument("--seed", type=int, default=0)
    p_separation.add_argument("--out", default=None)

    p_long = sub.add_parser(
        "long-crossover",
        help="NEW-ALARM crossover past m~1M via the chunked executor",
    )
    p_long.add_argument(
        "--events-values", type=_csv_ints,
        default=[250_000, 500_000, 1_000_000],
        help="long-stream sweep (default: %(default)s)",
    )
    p_long.add_argument("--eps", type=float, default=0.4)
    p_long.add_argument("--sites", type=int, default=10)
    p_long.add_argument("--inflated-count", type=int, default=6)
    p_long.add_argument("--inflated-cardinality", type=int, default=20)
    p_long.add_argument(
        "--checkpoints", type=int, default=8,
        help="checkpoints per run — also the chunked segment boundaries",
    )
    p_long.add_argument("--eval-events", type=int, default=200)
    p_long.add_argument("--hyz-engine", default="vectorized",
                        choices=list(ENGINES))
    p_long.add_argument("--seed", type=int, default=0)
    p_long.add_argument(
        "--executor", default="chunked", choices=executor_names(),
        help="task-graph driver (default: %(default)s)",
    )
    p_long.add_argument("--jobs", type=int, default=None)
    p_long.add_argument("--segment-events", type=int, default=None)
    p_long.add_argument(
        "--resume-dir", default=None,
        help="keep snapshot bundles and cached results here so an "
        "interrupted sweep resumes from the last checkpoint",
    )
    p_long.add_argument("--out", default=None)

    p_figures = sub.add_parser(
        "figures", help="render ASCII plots from a BENCH_*.json document"
    )
    p_figures.add_argument("document", help="path to a repro-bench-v1 file")
    p_figures.add_argument("--view", default="auto",
                           choices=list(figures.VIEWS))
    p_figures.add_argument("--width", type=int, default=64)
    p_figures.add_argument("--height", type=int, default=16)
    p_figures.add_argument(
        "--png", default=None, metavar="PATH",
        help="render a PNG here instead of ASCII (needs the optional "
        "matplotlib dependency; falls back to ASCII with a notice "
        "when it is missing)",
    )
    p_figures.add_argument("--out", default=None,
                           help="write the rendered text here "
                           "(default: stdout)")

    p_bench = sub.add_parser(
        "bench", help="microbenchmark update_batch grouping strategies"
    )
    p_bench.add_argument("--network", default="alarm")
    p_bench.add_argument("--algorithm", default="exact")
    p_bench.add_argument("--eps", type=float, default=0.3)
    p_bench.add_argument("--sites", type=int, default=30)
    p_bench.add_argument("--events", type=int, default=20_000)
    p_bench.add_argument("--repeats", type=int, default=7)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--out", default=None)

    p_bench_ingest = sub.add_parser(
        "bench-ingest",
        help="stage-level profile of the fused ingest pipeline per encoder",
    )
    p_bench_ingest.add_argument("--network", default="link")
    p_bench_ingest.add_argument("--algorithm", default="nonuniform")
    p_bench_ingest.add_argument("--eps", type=float, default=0.3)
    p_bench_ingest.add_argument("--sites", type=int, default=10)
    p_bench_ingest.add_argument("--events", type=int, default=100_000)
    p_bench_ingest.add_argument(
        "--chunk", type=int, default=10_000,
        help="events per fused-pipeline chunk (default: %(default)s)",
    )
    p_bench_ingest.add_argument("--repeats", type=int, default=1)
    p_bench_ingest.add_argument(
        "--encoders", type=_csv, default=list(INGEST_ENCODERS),
        help="comma-separated encoder list, baseline first "
        "(default: %(default)s)",
    )
    p_bench_ingest.add_argument("--counter-backend", default="hyz",
                                choices=["hyz", "deterministic"])
    p_bench_ingest.add_argument("--hyz-engine", default="vectorized",
                                choices=list(ENGINES))
    p_bench_ingest.add_argument(
        "--sampler-engine", default="auto", choices=list(SAMPLER_ENGINES),
        help="forward-sampling engine feeding the sample stage "
        "(default: %(default)s)",
    )
    p_bench_ingest.add_argument("--seed", type=int, default=0)
    p_bench_ingest.add_argument("--out", default=None)

    p_bench_sampling = sub.add_parser(
        "bench-sampling",
        help="microbenchmark the forward-sampling engines",
    )
    p_bench_sampling.add_argument("--network", default="link")
    p_bench_sampling.add_argument("--events", type=int, default=100_000)
    p_bench_sampling.add_argument(
        "--chunk", type=int, default=20_000,
        help="events per stream chunk (default: %(default)s)",
    )
    p_bench_sampling.add_argument("--repeats", type=int, default=3)
    p_bench_sampling.add_argument(
        "--engines", type=_csv, default=list(SAMPLER_BENCH_ENGINES),
        help="comma-separated engine list, baseline first "
        "(default: %(default)s)",
    )
    p_bench_sampling.add_argument(
        "--shard-modes", type=_csv, default=list(SAMPLER_BENCH_MODES),
        help="sharded-sampler modes to cross-check and time "
        f"(subset of {SHARD_MODES}; empty skips the sharded block)",
    )
    p_bench_sampling.add_argument("--shards", type=int, default=2)
    p_bench_sampling.add_argument("--seed", type=int, default=0)
    p_bench_sampling.add_argument("--out", default=None)

    p_bench_dist = sub.add_parser(
        "bench-dist",
        help="measured throughput/latency of the distributed runtime "
        "vs the in-process reference and the ClusterCostModel",
    )
    p_bench_dist.add_argument("--network", default="alarm")
    p_bench_dist.add_argument("--algorithm", default="nonuniform")
    p_bench_dist.add_argument("--eps", type=float, default=0.1)
    p_bench_dist.add_argument(
        "--site-values", type=_csv_ints, default=[4, 8, 16],
        help="comma-separated site-count sweep (default: %(default)s)",
    )
    p_bench_dist.add_argument(
        "--sites-procs", type=int, default=None,
        help="worker processes (default: one per CPU core, capped at k)",
    )
    p_bench_dist.add_argument(
        "--transport", default="queue", choices=["queue", "tcp"],
        help="runtime channel (default: %(default)s); 'tcp' benches the "
        "repro.net socket wire over loopback",
    )
    p_bench_dist.add_argument("--events", type=int, default=20_000)
    p_bench_dist.add_argument(
        "--chunk", type=int, default=2_000,
        help="events per coordinator round (default: %(default)s)",
    )
    p_bench_dist.add_argument("--counter-backend", default="hyz",
                              choices=["hyz", "deterministic"])
    p_bench_dist.add_argument("--seed", type=int, default=0)
    p_bench_dist.add_argument(
        "--no-fault-check", action="store_true",
        help="skip the kill/recover conformance cycle",
    )
    p_bench_dist.add_argument(
        "--fault-events", type=int, default=2_000,
        help="stream length of the kill/recover cycle (default: %(default)s)",
    )
    p_bench_dist.add_argument("--out", default=None)

    p_bench_query = sub.add_parser(
        "bench-query",
        help="throughput of the read-serving layer (live per-call vs "
        "batched vs cached), with bit-identity asserted before timing",
    )
    p_bench_query.add_argument("--network", default="alarm")
    p_bench_query.add_argument("--algorithm", default="nonuniform")
    p_bench_query.add_argument("--eps", type=float, default=0.1)
    p_bench_query.add_argument("--sites", type=int, default=10)
    p_bench_query.add_argument("--counter-backend", default="hyz",
                               choices=["hyz", "deterministic", "exact"])
    p_bench_query.add_argument("--events", type=int, default=50_000,
                               help="ingest stream length before serving "
                               "(default: %(default)s)")
    p_bench_query.add_argument("--chunk", type=int, default=10_000)
    p_bench_query.add_argument("--queries", type=int, default=2_000,
                               help="requests per workload mode "
                               "(default: %(default)s)")
    p_bench_query.add_argument("--event-pool", type=int, default=32,
                               help="distinct partial events in the "
                               "Zipf-skewed pool (default: %(default)s)")
    p_bench_query.add_argument("--classify-pool", type=int, default=64,
                               help="distinct classification requests in "
                               "the Zipf-skewed pool (default: %(default)s)")
    p_bench_query.add_argument("--zipf-exponent", type=float, default=1.1)
    p_bench_query.add_argument("--conformance-slice", type=int, default=200,
                               help="requests bit-checked against the live "
                               "session before timing (default: %(default)s)")
    p_bench_query.add_argument("--seed", type=int, default=0)
    p_bench_query.add_argument("--out", default=None)

    p_bench_hyz = sub.add_parser(
        "bench-hyz", help="microbenchmark the HYZ span-replay engines"
    )
    p_bench_hyz.add_argument("--network", default="alarm")
    p_bench_hyz.add_argument("--algorithm", default="nonuniform")
    p_bench_hyz.add_argument("--eps", type=float, default=0.1)
    p_bench_hyz.add_argument("--sites", type=int, default=30)
    p_bench_hyz.add_argument("--events", type=int, default=20_000)
    p_bench_hyz.add_argument("--repeats", type=int, default=3)
    p_bench_hyz.add_argument("--seed", type=int, default=0)
    p_bench_hyz.add_argument("--out", default=None)

    p_bench_rec = sub.add_parser(
        "bench-recovery",
        help="WAL steady-state overhead plus coordinator kill/recover "
        "cycles per transport, conformance asserted before timing",
    )
    p_bench_rec.add_argument("--network", default="alarm")
    p_bench_rec.add_argument("--algorithm", default="nonuniform")
    p_bench_rec.add_argument("--eps", type=float, default=0.1)
    p_bench_rec.add_argument("--sites", type=int, default=4)
    p_bench_rec.add_argument("--procs", type=int, default=2)
    p_bench_rec.add_argument("--events", type=int, default=2_000)
    p_bench_rec.add_argument(
        "--chunk", type=int, default=200,
        help="events per coordinator round (default: %(default)s)",
    )
    p_bench_rec.add_argument(
        "--checkpoint-rounds", type=int, default=2,
        help="rounds between WAL-truncating checkpoints "
        "(default: %(default)s)",
    )
    p_bench_rec.add_argument(
        "--crash-round", type=int, default=None,
        help="round whose post-append point kills the child coordinator "
        "(default: two thirds through the stream)",
    )
    p_bench_rec.add_argument("--counter-backend", default="hyz",
                             choices=["hyz", "deterministic", "exact"])
    p_bench_rec.add_argument("--seed", type=int, default=0)
    p_bench_rec.add_argument(
        "--transports", type=_csv, default=["queue", "tcp"],
        help="comma-separated transports to crash/recover "
        "(default: %(default)s)",
    )
    p_bench_rec.add_argument(
        "--wal-dir", default=None,
        help="keep recovery directories here instead of a temp dir",
    )
    p_bench_rec.add_argument("--out", default=None)

    args = parser.parse_args(argv)

    if args.command == "messages":
        return _grid_command(args, name="messages-vs-stream")
    if args.command == "eps":
        return _grid_command(
            args, name="messages-vs-eps", eps_values=args.eps_values
        )
    if args.command == "sites":
        return _grid_command(
            args, name="messages-vs-sites", site_counts=args.site_values
        )
    if args.command == "accuracy":
        return _grid_command(args, name="accuracy-vs-stream")
    if args.command == "runtime":
        return _grid_command(args, name="modeled-runtime")
    if args.command == "classify":
        document = classification_experiment(
            n_features=args.features,
            class_cardinality=args.class_cardinality,
            feature_cardinality=args.feature_cardinality,
            algorithms=args.algorithms,
            eps=args.eps,
            n_sites=args.sites,
            n_events=args.events,
            eval_events=args.eval_events,
            hyz_engine=args.hyz_engine,
            seed=args.seed,
        )
        rows = [
            [r["algorithm"], r["error_rate"],
             r.get("agreement_vs_exact", "-"), r.get("error_rate_gap", "-"),
             r["total_messages"]]
            for r in document["results"]
        ]
        _emit(
            document, args.out,
            summary=format_table(
                ["algorithm", "error-rate", "agree-vs-exact", "gap",
                 "messages"], rows,
                title=f"classification ({document['params']['network']}, "
                      f"m={args.events}, k={args.sites}, "
                      f"truth-err="
                      f"{document['params']['ground_truth_error_rate']:.4f})",
            ),
        )
        return 0
    if args.command == "separation":
        document = separation_experiment(
            events_values=args.events_values,
            eps=args.eps,
            n_sites=args.sites,
            inflated_count=args.inflated_count,
            inflated_cardinality=args.inflated_cardinality,
            example_events=args.example_events,
            example_variables=args.example_variables,
            example_j_large=args.example_j_large,
            example_eps=args.example_eps,
            eval_events=args.eval_events,
            hyz_engine=args.hyz_engine,
            seed=args.seed,
        )
        example = document["example"]
        rows = [
            [example["network"], example["n_events"],
             example["uniform_messages"], example["nonuniform_messages"],
             example["uniform_over_nonuniform"], example["nonuniform_wins"]],
        ]
        rows += [
            [document["params"]["network"], r["n_events"],
             r["uniform_messages"], r["nonuniform_messages"],
             r["uniform_over_nonuniform"], r["nonuniform_wins"]]
            for r in document["results"]
        ]
        crossover = document["crossover_events"]
        _emit(
            document, args.out,
            summary=format_table(
                ["network", "m", "uniform", "nonuniform", "ratio",
                 "nonuniform-wins"],
                rows,
                title=f"Sec. IV-E separation (example theory-ratio="
                      f"{example['theory']['ratio']:.1f}, new-alarm "
                      f"crossover="
                      f"{crossover if crossover is not None else 'not reached'})",
            ),
        )
        return 0
    if args.command == "long-crossover":
        document = long_crossover_experiment(
            events_values=args.events_values,
            eps=args.eps,
            n_sites=args.sites,
            inflated_count=args.inflated_count,
            inflated_cardinality=args.inflated_cardinality,
            checkpoints=args.checkpoints,
            eval_events=args.eval_events,
            hyz_engine=args.hyz_engine,
            seed=args.seed,
            executor=args.executor,
            jobs=args.jobs,
            segment_events=args.segment_events,
            resume_dir=args.resume_dir,
        )
        rows = [
            [document["params"]["network"], r["n_events"],
             r["uniform_messages"], r["nonuniform_messages"],
             r["uniform_over_nonuniform"], r["nonuniform_wins"]]
            for r in document["results"]
        ]
        crossover = document["crossover_events"]
        _emit(
            document, args.out,
            summary=format_table(
                ["network", "m", "uniform", "nonuniform", "ratio",
                 "nonuniform-wins"],
                rows,
                title=f"long-stream crossover (eps="
                      f"{document['params']['eps']:g}, crossover="
                      f"{crossover if crossover is not None else 'not reached'})",
            ),
        )
        return 0
    if args.command == "figures":
        document = figures.load_document(args.document)
        if args.png:
            if figures.matplotlib_available():
                figures.render_png(document, args.png, view=args.view)
                print(f"wrote {args.png}", file=sys.stderr)
                return 0
            print(
                "matplotlib is not installed; falling back to the ASCII "
                "renderer",
                file=sys.stderr,
            )
        text = figures.render(
            document, view=args.view, width=args.width, height=args.height
        )
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0
    if args.command == "bench":
        document = benchmark_update_strategies(
            args.network,
            algorithm=args.algorithm,
            eps=args.eps,
            n_sites=args.sites,
            n_events=args.events,
            repeats=args.repeats,
            seed=args.seed,
        )
        baseline = document["baseline_strategy"]
        rows = [
            [r["strategy"], r["ms_per_batch"],
             r.get(f"speedup_vs_{baseline}", "-")]
            for r in document["results"]
        ]
        _emit(
            document, args.out,
            summary=format_table(
                ["strategy", "ms/batch", f"speedup-vs-{baseline}"], rows,
                title=f"update_batch microbenchmark "
                      f"(k={args.sites}, m={args.events})",
            ),
        )
        return 0
    if args.command == "bench-ingest":
        document = benchmark_ingest_stages(
            args.network,
            algorithm=args.algorithm,
            eps=args.eps,
            n_sites=args.sites,
            n_events=args.events,
            chunk=args.chunk,
            repeats=args.repeats,
            seed=args.seed,
            encoders=args.encoders,
            counter_backend=args.counter_backend,
            hyz_engine=args.hyz_engine,
            sampler_engine=args.sampler_engine,
        )
        baseline = document["baseline_encoder"]
        rows = []
        for r in document["results"]:
            stage_ms = {
                s["stage"]: s["wall_seconds"] * 1e3 for s in r["stages"]
            }
            rows.append(
                [r["encoder"], r["resolved_encoder"]]
                + [stage_ms[name] for name in INGEST_STAGES]
                + [r["ingest_wall_seconds"] * 1e3,
                   r.get(f"speedup_vs_{baseline}", "-")]
            )
        _emit(
            document, args.out,
            summary=format_table(
                ["encoder", "resolved"]
                + [f"{name}-ms" for name in INGEST_STAGES]
                + ["ingest-ms", f"speedup-vs-{baseline}"],
                rows,
                title=f"ingest stage profile ({document['network']}, "
                      f"n={document['n_variables']}, m={args.events}, "
                      f"k={args.sites})",
            ),
        )
        return 0
    if args.command == "bench-sampling":
        document = benchmark_sampler_engines(
            args.network,
            n_events=args.events,
            chunk=args.chunk,
            repeats=args.repeats,
            seed=args.seed,
            engines=args.engines,
            shard_modes=args.shard_modes,
            shards=args.shards,
        )
        baseline = document["baseline_engine"]
        rows = [
            [r["engine"], r["wall_seconds"] * 1e3,
             f"{r['events_per_second']:,.0f}", r["max_chi2_z"],
             r.get(f"speedup_vs_{baseline}", "-")]
            for r in document["results"]
        ]
        rows += [
            [f"sharded/{r['mode']}", r["wall_seconds"] * 1e3,
             f"{r['events_per_second']:,.0f}",
             document["sharded"]["max_chi2_z"], "-"]
            for r in document.get("sharded", {}).get("results", [])
        ]
        _emit(
            document, args.out,
            summary=format_table(
                ["engine", "ms/stream", "events/s", "max-chi2-z",
                 f"speedup-vs-{baseline}"], rows,
                title=f"sampler engine microbenchmark "
                      f"({document['network']}, "
                      f"n={document['n_variables']}, m={args.events}, "
                      f"chunk={args.chunk})",
            ),
        )
        return 0
    if args.command == "bench-dist":
        document = benchmark_distributed_runtime(
            args.network,
            algorithm=args.algorithm,
            eps=args.eps,
            site_counts=args.site_values,
            procs=args.sites_procs,
            transport=args.transport,
            n_events=args.events,
            chunk=args.chunk,
            counter_backend=args.counter_backend,
            seed=args.seed,
            fault_check=not args.no_fault_check,
            fault_events=args.fault_events,
        )
        rows = [
            [r["n_sites"], r["procs"], r["total_messages"],
             f"{r['events_per_second']:,.0f}",
             f"{r['msgs_per_second']:,.0f}",
             r["round_latency_ms"],
             r["model"]["modeled_runtime_seconds"],
             r["wall_seconds"],
             r["model"]["speedup_vs_model"]]
            for r in document["results"]
        ]
        fault = document.get("fault_recovery")
        fault_note = (
            f", kill/recover ok (respawns={fault['worker_respawns']})"
            if fault else ""
        )
        _emit(
            document, args.out,
            summary=format_table(
                ["k", "procs", "messages", "events/s", "msgs/s",
                 "round-ms", "model-sec", "measured-sec", "meas/model"],
                rows,
                title=f"distributed runtime ({document['network']}, "
                      f"transport={document['transport']}, "
                      f"m={args.events}, conformant=yes{fault_note})",
            ),
        )
        return 0
    if args.command == "bench-query":
        document = benchmark_query_serving(
            args.network,
            algorithm=args.algorithm,
            eps=args.eps,
            n_sites=args.sites,
            counter_backend=args.counter_backend,
            n_events=args.events,
            chunk=args.chunk,
            n_queries=args.queries,
            event_pool=args.event_pool,
            classify_pool=args.classify_pool,
            zipf_exponent=args.zipf_exponent,
            conformance_slice=args.conformance_slice,
            seed=args.seed,
        )
        rows = [
            [r["mode"], f"{r['queries_per_second']:,.0f}",
             r.get("speedup_vs_live", "-"),
             (f"{r['cache_hit_rate']:.3f}"
              if "cache_hit_rate" in r else "-")]
            for r in document["results"]
        ]
        stale = document["stale_serving"]
        _emit(
            document, args.out,
            summary=format_table(
                ["mode", "queries/s", "speedup-vs-live", "hit-rate"], rows,
                title=f"query serving ({document['network']}, "
                      f"m={args.events}, q={args.queries}, "
                      f"conformant=yes, refreshes="
                      f"{document['snapshot_refreshes']}, "
                      f"stale-served={stale['stale_hits']}, "
                      f"invalidated={stale['invalidations']})",
            ),
        )
        return 0
    if args.command == "bench-hyz":
        document = benchmark_hyz_engines(
            args.network,
            algorithm=args.algorithm,
            eps=args.eps,
            n_sites=args.sites,
            n_events=args.events,
            repeats=args.repeats,
            seed=args.seed,
        )
        baseline = document["baseline_engine"]
        rows = [
            [r["engine"], r["ms_per_ingest"], r["total_messages"],
             r.get(f"speedup_vs_{baseline}", "-")]
            for r in document["results"]
        ]
        _emit(
            document, args.out,
            summary=format_table(
                ["engine", "ms/ingest", "messages",
                 f"speedup-vs-{baseline}"], rows,
                title=f"HYZ engine microbenchmark "
                      f"(k={args.sites}, m={args.events}, "
                      f"algorithm={args.algorithm})",
            ),
        )
        return 0
    if args.command == "bench-recovery":
        document = benchmark_recovery(
            args.network,
            algorithm=args.algorithm,
            eps=args.eps,
            n_sites=args.sites,
            procs=args.procs,
            n_events=args.events,
            chunk=args.chunk,
            checkpoint_rounds=args.checkpoint_rounds,
            crash_round=args.crash_round,
            counter_backend=args.counter_backend,
            seed=args.seed,
            transports=args.transports,
            wal_dir=args.wal_dir,
        )
        overhead = document["overhead"]
        rows = [
            ["(wal overhead)", "-", overhead["wal_records"],
             overhead["wal_bytes"], overhead["checkpoints"], "-",
             f"{overhead['wal_overhead_pct']:.1f}%"],
        ] + [
            [r["transport"], r["crash_round"], r["wal_records"],
             "-", r["checkpoints"], r["replayed_rounds"],
             f"{r['recovery_seconds'] * 1e3:.1f}ms"]
            for r in document["results"]
        ]
        _emit(
            document, args.out,
            summary=format_table(
                ["run", "crash@", "wal-records", "wal-bytes",
                 "checkpoints", "replayed", "cost"],
                rows,
                title=f"coordinator durability ({document['network']}, "
                      f"m={args.events}, chunk={args.chunk}, "
                      f"fsync={overhead['fsync_policy']}, conformant=yes)",
            ),
        )
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
