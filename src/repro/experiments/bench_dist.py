"""``bench-dist``: measured throughput/latency of the distributed runtime.

The cluster-runtime figures of the paper (Figs. 7-8) were previously
produced only by the analytic
:class:`~repro.monitoring.cluster.ClusterCostModel`; this benchmark runs
the real multiprocess runtime (:class:`~repro.dist.DistributedSession`)
over the same seeded streams and reports *measured* numbers next to the
modeled ones.

Like ``bench-sampling``, correctness gates timing: for every site count
the distributed run must reproduce the in-process reference session's
metrics (message counts, per-site tallies, estimates) exactly — and,
when ``fault_check`` is on, again after a worker is killed mid-stream
and respawned — before any timing is reported.  All wall-clock-derived
fields use the canonical timing keys
(:func:`~repro.experiments.results.strip_timing`), so committed
``benchmarks/BENCH_dist_*.json`` documents compare stably across hosts.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.api.session import MonitoringSession
from repro.api.spec import EstimatorSpec
from repro.bn.repository import network_by_name
from repro.bn.sampling import ForwardSampler
from repro.dist import DistributedSession
from repro.monitoring.cluster import ClusterCostModel
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int


def _stream(net, n_events: int, chunk: int, seed: int):
    """The benchmark stream: identical batches for every session under test."""
    sampler = ForwardSampler(net, seed=RandomSource(seed).generator())
    batches = []
    produced = 0
    while produced < n_events:
        size = min(chunk, n_events - produced)
        batches.append(sampler.sample(size))
        produced += size
    return batches


def _feed(session, batches) -> float:
    t0 = time.perf_counter()
    for batch in batches:
        session.ingest(batch, validate=False)
    return time.perf_counter() - t0


def _conformance(ref: MonitoringSession, dist: DistributedSession) -> None:
    if ref.metrics() != dist.metrics():
        raise AssertionError(
            "distributed runtime diverged from the in-process reference: "
            f"{dist.metrics()} != {ref.metrics()}"
        )
    if not np.array_equal(ref.estimates(), dist.estimates()):
        raise AssertionError(
            "distributed runtime produced different estimates than the "
            "in-process reference"
        )


def benchmark_distributed_runtime(
    network="alarm",
    *,
    algorithm: str = "nonuniform",
    eps: float = 0.1,
    site_counts=(4, 8, 16),
    procs: int | None = None,
    transport: str = "queue",
    n_events: int = 20_000,
    chunk: int = 2_000,
    counter_backend: str = "hyz",
    seed: int = 0,
    fault_check: bool = True,
    fault_events: int = 2_000,
) -> dict:
    """Measure the distributed runtime against the in-process reference.

    For each ``k`` in ``site_counts`` the same seeded stream is fed to an
    in-process :class:`MonitoringSession` and a
    :class:`~repro.dist.DistributedSession` (``procs`` worker processes;
    default ``os.cpu_count()``; ``transport`` selects the channel —
    ``"queue"`` or the ``"tcp"`` loopback socket wire of
    :mod:`repro.net`); conformance is asserted, then the entry
    reports measured ingest throughput, protocol messages per second,
    mean coordinator round latency, the wire-frame tallies, and the
    :class:`ClusterCostModel`'s modeled runtime for the same message
    count — the measured-vs-model comparison the paper's Figs. 7-8
    invite.

    ``fault_check`` additionally runs a short stream during which one
    worker is killed (die-once marker) and respawned, asserting the
    conformance contract survives the fault; its result is part of the
    document (``fault_recovery``) but never timed.
    """
    check_positive_int(n_events, "n_events")
    check_positive_int(chunk, "chunk")
    net = network_by_name(network) if isinstance(network, str) else network
    if procs is None:
        procs = os.cpu_count() or 1
    batches = _stream(net, n_events, chunk, seed)
    cost_model = ClusterCostModel()

    results = []
    for k in site_counts:
        k = int(k)
        spec = EstimatorSpec(
            network=net, algorithm=algorithm, eps=eps, n_sites=k,
            seed=seed + 1, counter_backend=counter_backend,
        )
        ref = MonitoringSession(spec)
        ref_wall = _feed(ref, batches)
        with DistributedSession(spec, procs=procs, transport=transport) as dist:
            dist_wall = _feed(dist, batches)
            dist.flush()
            _conformance(ref, dist)
            wire = dist.wire_stats()
        log = ref.message_log
        total_messages = ref.total_messages
        summary = cost_model.summarize(
            n_events, net.n_variables, total_messages, k,
            max_site_messages=int(log.site_messages.max()),
        )
        rounds = max(1, wire["rounds_applied"])
        results.append({
            "n_sites": k,
            "procs": min(procs, k),
            "total_messages": total_messages,
            "max_site_messages": int(log.site_messages.max()),
            "conformant": True,
            "wall_seconds": dist_wall,
            "events_per_second": n_events / dist_wall,
            "msgs_per_second": total_messages / dist_wall,
            "round_latency_ms": (
                wire["round_latency_seconds"] / rounds * 1e3
            ),
            "speedup_vs_inprocess": ref_wall / dist_wall,
            "reference": {
                "wall_seconds": ref_wall,
                "events_per_second": n_events / ref_wall,
            },
            "wire": {
                "batch_frames_sent": wire["batch_frames_sent"],
                "report_frames_received": wire["report_frames_received"],
                "threshold_frames_sent": wire["threshold_frames_sent"],
                "sync_frames_received": wire["sync_frames_received"],
                "rounds_applied": wire["rounds_applied"],
                "worker_respawns": wire["worker_respawns"],
            },
            "model": {
                "modeled_runtime_seconds": summary.runtime_seconds,
                "modeled_throughput_events_per_second":
                    summary.throughput_events_per_second,
                "modeled_site_busy_seconds": summary.site_busy_seconds,
                "modeled_coordinator_busy_seconds":
                    summary.coordinator_busy_seconds,
                # Measured wall over modeled runtime: >1 means the real
                # runtime is slower than the model's cluster.
                "speedup_vs_model": dist_wall / summary.runtime_seconds,
            },
        })

    document = {
        "benchmark": "distributed-runtime",
        "network": net.name,
        "n_variables": net.n_variables,
        "algorithm": algorithm,
        "eps": eps,
        "counter_backend": counter_backend,
        "n_events": n_events,
        "chunk": chunk,
        "procs": procs,
        "transport": transport,
        "seed": seed,
        "site_counts": [int(k) for k in site_counts],
        "results": results,
    }

    if fault_check:
        check_positive_int(fault_events, "fault_events")
        k = int(site_counts[0])
        spec = EstimatorSpec(
            network=net, algorithm=algorithm, eps=eps, n_sites=k,
            seed=seed + 1, counter_backend=counter_backend,
        )
        fault_batches = _stream(net, fault_events, max(1, chunk // 4), seed)
        ref = MonitoringSession(spec)
        _feed(ref, fault_batches)
        with tempfile.TemporaryDirectory() as tmp:
            with DistributedSession(
                spec, procs=min(procs, k), transport=transport,
                worker_faults={0: {
                    "kill_after_sends": 1,
                    "once_marker": os.path.join(tmp, "die-once"),
                }},
            ) as dist:
                _feed(dist, fault_batches)
                dist.flush()
                _conformance(ref, dist)
                wire = dist.wire_stats()
        if wire["worker_respawns"] < 1:
            raise AssertionError(
                "fault check never killed a worker; the kill/recover "
                "cycle was not exercised"
            )
        document["fault_recovery"] = {
            "n_sites": k,
            "n_events": fault_events,
            "worker_respawns": wire["worker_respawns"],
            "conformant": True,
        }

    return document
