"""Result dataclasses and JSON serialization for the experiment harness.

Every harness invocation produces one :class:`ExperimentResult` — a named
collection of :class:`RunResult` records, one per (network, algorithm,
partitioner, eps, k, m) grid point.  The JSON layout is the repo's
``BENCH_*.json`` convention: a top-level ``{"benchmark", "schema",
"params", "results"}`` document whose ``results`` entries are flat,
plot-ready dictionaries.  ``ExperimentResult.load`` round-trips the format,
so downstream sessions can regrow figures without re-running streams.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Version tag written into every results document.
SCHEMA = "repro-bench-v1"


#: Keys holding wall-clock measurements or quantities derived from them
#: (rates, per-batch times).  ``runtime_seconds`` in the modeled runtime
#: block is *not* here: it is a deterministic function of the descriptors.
_TIMING_KEYS = frozenset({
    "wall_seconds",
    "ingest_wall_seconds",
    "events_per_second",
    "ingest_events_per_second",
    "ms_per_batch",
    "ms_per_ingest",
    # Distributed-runtime timing (bench-dist): protocol messages per
    # wall-clock second and mean coordinator round-trip latency.
    "msgs_per_second",
    "round_latency_ms",
    # Read-serving timing (bench-query): request throughput and the LRU
    # hit ratio (raw hit/miss counts are deterministic and stay pinned;
    # the ratio is stripped alongside the rates it normalizes).
    "queries_per_second",
    "cache_hit_rate",
    # Coordinator durability timing (bench-recovery): wall-clock cost of
    # a crash/recover cycle and the WAL's relative ingest overhead (the
    # WAL byte/record counts themselves are deterministic and pinned).
    "recovery_seconds",
    "wal_overhead_pct",
})


def _is_timing_key(key) -> bool:
    return key in _TIMING_KEYS or (
        isinstance(key, str) and key.startswith("speedup_vs_")
    )


def strip_timing(payload):
    """A deep copy of ``payload`` with wall-clock measurements zeroed.

    Everything in a ``repro-bench-v1`` document is a pure function of
    the run descriptors *except* the wall-clock fields (and ratios of
    them, like ``events_per_second`` or ``speedup_vs_*``), which measure
    this machine.  Equivalence checks across executors (serial vs
    multiprocess vs chunked, interrupted vs uninterrupted) and against
    the committed ``benchmarks/BENCH_*.json`` baselines therefore
    compare documents through this canonicalization; the modeled
    ``runtime`` block is deterministic and left untouched.
    """
    if isinstance(payload, dict):
        return {
            key: (0.0 if _is_timing_key(key) else strip_timing(value))
            for key, value in payload.items()
        }
    if isinstance(payload, list):
        return [strip_timing(value) for value in payload]
    return payload


@dataclass(frozen=True)
class CheckpointRecord:
    """Coordinator-side metrics captured partway through one stream.

    Attributes
    ----------
    events:
        Events fed so far (the checkpoint's position in the stream).
    total_messages:
        Cumulative site/coordinator messages at this point.
    messages_by_kind:
        Breakdown of ``total_messages`` by :class:`MessageKind` value.
    mean_abs_log_error:
        Mean ``|log P_est - log P_true|`` over the held-out evaluation
        events both models score (the paper's accuracy metric); ``None``
        when the estimator scores none of them yet.
    unscored_fraction:
        Fraction of evaluation events the estimator returns zero
        probability for (unseen counter configurations).
    """

    events: int
    total_messages: int
    messages_by_kind: dict[str, int]
    mean_abs_log_error: float | None
    unscored_fraction: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CheckpointRecord":
        return cls(
            events=int(payload["events"]),
            total_messages=int(payload["total_messages"]),
            messages_by_kind=dict(payload["messages_by_kind"]),
            mean_abs_log_error=(
                None
                if payload.get("mean_abs_log_error") is None
                else float(payload["mean_abs_log_error"])
            ),
            unscored_fraction=float(payload["unscored_fraction"]),
        )


@dataclass(frozen=True)
class RunResult:
    """One trained estimator: its grid point, traffic, accuracy, and model.

    ``checkpoints`` traces the stream (the last entry is the final state);
    ``runtime`` holds the :class:`~repro.monitoring.cluster.ClusterRunSummary`
    fields for the modeled cluster, and ``wall_seconds`` the simulation's
    actual training time (the hot-path metric).
    """

    network: str
    algorithm: str
    partitioner: str
    counter_backend: str
    eps: float
    n_sites: int
    n_events: int
    seed: int
    n_variables: int
    parameter_count: int
    n_counters: int
    checkpoints: list[CheckpointRecord] = field(default_factory=list)
    runtime: dict | None = None
    wall_seconds: float = 0.0

    @property
    def final(self) -> CheckpointRecord:
        if not self.checkpoints:
            raise ValueError("run has no checkpoints")
        return self.checkpoints[-1]

    @property
    def total_messages(self) -> int:
        return self.final.total_messages

    @property
    def messages_per_event(self) -> float:
        return self.total_messages / max(self.n_events, 1)

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["checkpoints"] = [c.to_dict() for c in self.checkpoints]
        payload["total_messages"] = self.total_messages
        payload["messages_per_event"] = self.messages_per_event
        payload["mean_abs_log_error"] = self.final.mean_abs_log_error
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        return cls(
            network=str(payload["network"]),
            algorithm=str(payload["algorithm"]),
            partitioner=str(payload["partitioner"]),
            counter_backend=str(payload["counter_backend"]),
            eps=float(payload["eps"]),
            n_sites=int(payload["n_sites"]),
            n_events=int(payload["n_events"]),
            seed=int(payload["seed"]),
            n_variables=int(payload["n_variables"]),
            parameter_count=int(payload["parameter_count"]),
            n_counters=int(payload["n_counters"]),
            checkpoints=[
                CheckpointRecord.from_dict(c) for c in payload["checkpoints"]
            ],
            runtime=payload.get("runtime"),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
        )


@dataclass
class ExperimentResult:
    """A named experiment: grid parameters plus every run's results."""

    name: str
    params: dict = field(default_factory=dict)
    runs: list[RunResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.name,
            "schema": SCHEMA,
            "params": self.params,
            "results": [run.to_dict() for run in self.runs],
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        return cls(
            name=str(payload["benchmark"]),
            params=dict(payload.get("params", {})),
            runs=[RunResult.from_dict(r) for r in payload.get("results", [])],
        )

    @classmethod
    def load(cls, path) -> "ExperimentResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def runs_for(self, **filters) -> list[RunResult]:
        """Runs whose attributes match every keyword filter exactly."""
        out = []
        for run in self.runs:
            if all(getattr(run, key) == value for key, value in filters.items()):
                out.append(run)
        return out
