"""``bench-recovery``: coordinator durability cost and crash recovery.

Two questions, both answered against the in-process reference session:

1. **What does the write-ahead log cost at steady state?**  The same
   seeded stream is fed to a plain :class:`~repro.dist.DistributedSession`
   and to a durable one (``wal_dir`` set, ``fsync="always"`` — the most
   expensive policy); both must stay conformant, and the entry reports
   the relative ingest slowdown (``wal_overhead_pct``) next to the
   *deterministic* WAL accounting (records, bytes, checkpoints) that
   committed baselines pin exactly.

2. **Does a killed coordinator come back byte-identical, and how fast?**
   For each transport a child coordinator process runs the stream and
   hard-kills itself (``os._exit``) right after a round's WAL append —
   the worst injection point: the round is durable but not applied.
   The driver recovers via ``DistributedSession(recover_from=...)``,
   resumes the stream where the crashed run's events stopped, and
   asserts metrics/estimates equality with the uninterrupted reference
   before reporting ``recovery_seconds`` and the replayed-round count.

Correctness gates timing, as in every bench: a non-conformant run
raises instead of reporting.  Wall-clock-derived fields use the
canonical timing keys (:func:`~repro.experiments.results.strip_timing`),
so committed ``benchmarks/BENCH_recovery_*.json`` documents compare
stably across hosts.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api.session import MonitoringSession
from repro.api.spec import EstimatorSpec
from repro.bn.repository import network_by_name
from repro.dist import DistributedSession, FAULT_EXIT_CODE
from repro.dist.recovery import recovery_stream, run_crashing_coordinator
from repro.dist.site import START_METHOD
from repro.errors import ExecutionError
from repro.utils.validation import check_positive_int


def _feed(session, batches) -> float:
    t0 = time.perf_counter()
    for batch in batches:
        session.ingest(batch, validate=False)
    if hasattr(session, "flush"):
        session.flush()
    return time.perf_counter() - t0


def _conformance(ref: MonitoringSession, dist, *,
                 dist_epoch: int | None = None) -> None:
    if ref.metrics() != dist.metrics():
        raise AssertionError(
            "recovered/durable runtime diverged from the in-process "
            f"reference: {dist.metrics()} != {ref.metrics()}"
        )
    if not np.array_equal(ref.estimates(), dist.estimates()):
        raise AssertionError(
            "recovered/durable runtime produced different estimates than "
            "the in-process reference"
        )
    # Epoch granularity is a property of the *distributed* apply path
    # (one record call per worker/site aggregate), so continuity is
    # judged against the uninterrupted distributed run, not ``ref``.
    if dist_epoch is not None and dist.message_log.epoch != dist_epoch:
        raise AssertionError(
            "recovered/durable runtime diverged from the uninterrupted "
            f"run's sync epoch: {dist.message_log.epoch} != {dist_epoch}"
        )


def benchmark_recovery(
    network="alarm",
    *,
    algorithm: str = "nonuniform",
    eps: float = 0.1,
    n_sites: int = 4,
    procs: int = 2,
    n_events: int = 2_000,
    chunk: int = 200,
    checkpoint_rounds: int = 2,
    crash_round: int | None = None,
    counter_backend: str = "hyz",
    seed: int = 0,
    transports=("queue", "tcp"),
    wal_dir=None,
) -> dict:
    """Measure WAL steady-state overhead and crash-recovery fidelity.

    ``crash_round`` defaults to two thirds through the stream's rounds
    (so the last committed checkpoint is strictly older and the WAL has
    rounds to replay).  ``wal_dir`` keeps the recovery directories for
    inspection; by default they live in a temp dir.  The crashed child
    coordinators run :func:`~repro.dist.recovery.run_crashing_coordinator`
    in spawn-started processes, exactly like the chaos tests.
    """
    check_positive_int(n_events, "n_events")
    check_positive_int(chunk, "chunk")
    check_positive_int(checkpoint_rounds, "checkpoint_rounds")
    net = network_by_name(network) if isinstance(network, str) else network
    rounds = (n_events + chunk - 1) // chunk
    if crash_round is None:
        crash_round = max(2, (2 * rounds) // 3)
    if not 1 <= crash_round <= rounds:
        raise ExecutionError(
            f"crash_round {crash_round} outside the stream's "
            f"{rounds} rounds"
        )
    spec = EstimatorSpec(
        network=net, algorithm=algorithm, eps=eps, n_sites=n_sites,
        seed=seed + 1, counter_backend=counter_backend,
    )
    batches = recovery_stream(net, n_events=n_events, chunk=chunk, seed=seed)
    ref = MonitoringSession(spec)
    _feed(ref, batches)

    with tempfile.TemporaryDirectory() as tmp:
        base = Path(wal_dir) if wal_dir is not None else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)

        # ------------------------------------------------------------
        # 1. Steady-state WAL overhead (queue transport, worst fsync)
        # ------------------------------------------------------------
        with DistributedSession(spec, procs=procs) as plain:
            plain_wall = _feed(plain, batches)
            _conformance(ref, plain)
            dist_epoch = plain.message_log.epoch
        with DistributedSession(
            spec, procs=procs, wal_dir=str(base / "overhead"),
            wal_fsync="always", checkpoint_rounds=checkpoint_rounds,
        ) as durable:
            durable_wall = _feed(durable, batches)
            _conformance(ref, durable, dist_epoch=dist_epoch)
            wal = durable.durability_stats()
        overhead = {
            "conformant": True,
            "rounds": rounds,
            "checkpoint_rounds": checkpoint_rounds,
            "fsync_policy": wal["fsync_policy"],
            "wal_records": wal["wal_records"],
            "wal_bytes": wal["wal_bytes"],
            "checkpoints": wal["checkpoints"],
            "plain": {"wall_seconds": plain_wall},
            "durable": {"wall_seconds": durable_wall},
            "wal_overhead_pct": (
                (durable_wall - plain_wall) / plain_wall * 100.0
            ),
        }

        # ------------------------------------------------------------
        # 2. Kill the coordinator, recover, finish, compare
        # ------------------------------------------------------------
        ctx = multiprocessing.get_context(START_METHOD)
        results = []
        for transport in transports:
            directory = base / f"crash-{transport}"
            payload = {
                "spec": spec.to_dict(),
                "procs": procs,
                "transport": transport,
                "dir": str(directory),
                "fsync": "always",
                "checkpoint_rounds": checkpoint_rounds,
                # post-append is the worst point: the round is durable
                # but was never applied, so recovery must replay it.
                "crash": {"seq": crash_round, "point": "post-append"},
                "stream": {"seed": seed, "n_events": n_events,
                           "chunk": chunk},
            }
            child = ctx.Process(
                target=run_crashing_coordinator, args=(payload,)
            )
            child.start()
            child.join(timeout=300)
            if child.exitcode != FAULT_EXIT_CODE:
                raise AssertionError(
                    f"crash child on {transport} exited "
                    f"{child.exitcode}, expected {FAULT_EXIT_CODE}"
                )
            t0 = time.perf_counter()
            recovered = DistributedSession(
                recover_from=str(directory), procs=procs,
                transport=transport,
            )
            recovery_seconds = time.perf_counter() - t0
            info = recovered.recovery_info
            with recovered:
                resume_at = recovered.inner.events_seen // chunk
                _feed(recovered, batches[resume_at:])
                _conformance(ref, recovered, dist_epoch=dist_epoch)
                wal = recovered.durability_stats()
            results.append({
                "transport": transport,
                "conformant": True,
                "crash_round": crash_round,
                "replayed_rounds": info["replayed_rounds"],
                "checkpoint_seq": info["checkpoint_seq"],
                "incarnation": info["incarnation"],
                "resumed_rounds": rounds - resume_at,
                "wal_records": wal["wal_records"],
                "checkpoints": wal["checkpoints"],
                "recovery_seconds": recovery_seconds,
            })

    return {
        "benchmark": "coordinator-recovery",
        "network": net.name,
        "n_variables": net.n_variables,
        "algorithm": algorithm,
        "eps": eps,
        "counter_backend": counter_backend,
        "n_sites": n_sites,
        "procs": procs,
        "n_events": n_events,
        "chunk": chunk,
        "seed": seed,
        "transports": list(transports),
        "overhead": overhead,
        "results": results,
    }
