"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A problem with a directed graph structure."""


class CyclicGraphError(GraphError):
    """The graph contains a directed cycle where a DAG is required."""


class ModelError(ReproError):
    """A problem with a Bayesian network model."""


class InvalidCPDError(ModelError):
    """A conditional probability distribution is malformed.

    Raised when a CPD table has the wrong shape, contains negative entries,
    or has columns that do not sum to one.
    """


class InconsistentNetworkError(ModelError):
    """Variables, structure, and CPDs of a network disagree."""


class AllocationError(ReproError):
    """An error-budget allocation is infeasible or malformed."""


class StreamError(ReproError):
    """A problem with stream generation or partitioning."""


class CounterError(ReproError):
    """A distributed counter was misused or reached an invalid state."""


class QueryError(ReproError):
    """A probability query is malformed for the given network."""


class EvaluationError(ReproError):
    """A problem in the experiment harness or metric computation."""


class SpecError(ReproError):
    """An estimator specification is malformed or inconsistent."""


class SessionError(ReproError):
    """A monitoring session was misused or a snapshot cannot be restored."""


class ExecutionError(ReproError):
    """A task-graph executor was misconfigured or lost a task permanently."""
