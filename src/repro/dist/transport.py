"""Bounded-queue transport for the distributed runtime.

:class:`QueueTransport` wraps one ``multiprocessing`` queue end with

- **backpressure accounting**: sends into a full queue block (bounded
  queues are the flow-control mechanism — a slow consumer stalls its
  producers instead of buffering unboundedly), and every blocked
  interval is counted so tests and benches can observe backpressure;
- **liveness hooks**: blocking operations poll an optional ``alive``
  callback so a producer never deadlocks against a dead consumer;
- **declarative fault injection**: a plain-dict ``fault`` spec — built
  by the helpers in ``tests/dist_faults.py`` — can delay each send or
  kill the process after N sends.  A dict rather than a callable, so it
  pickles into spawn-started workers unchanged.

Fault spec keys (all optional):

``kill_after_sends``
    Die abruptly (``os._exit``) *before* the Nth successful send.
``once_marker``
    Path guarding the kill: the first process to create the marker file
    dies, later incarnations see it and survive — the same
    die-once-then-recover pattern as the chunked executor's
    ``_fault_marker`` (see ``create_once``).
``delay_send`` / ``delay_recv``
    Seconds to sleep before each send / after each receive — the
    slow-producer and slow-consumer injection used by the backpressure
    tests.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time

from repro.errors import ExecutionError

#: Seconds between liveness polls while blocked on a full/empty queue.
POLL_INTERVAL = 0.05

#: Exit code used by injected kills (distinct from Python tracebacks).
FAULT_EXIT_CODE = 43


def create_once(marker) -> bool:
    """Atomically create ``marker``; True only for the first creator.

    The shared die-once primitive: a faulty worker checks the marker
    before dying so exactly one incarnation dies and its replacement
    runs clean.  Also used directly by ``test_exec.py``'s chunked-
    executor worker-death tests via ``tests/dist_faults.py``.
    """
    try:
        fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class TransportClosed(ExecutionError):
    """The peer of a blocking queue operation is gone."""


class QueueTransport:
    """One end of a bounded frame queue, instrumented and fault-injectable.

    Parameters
    ----------
    queue:
        The underlying ``multiprocessing`` queue (bounded; the bound is
        the backpressure window).
    name:
        Diagnostic label used in error messages.
    fault:
        Optional declarative fault spec (see module docstring); applied
        on this end only.
    poll_interval:
        Seconds between liveness polls while blocked; defaults to the
        module-level :data:`POLL_INTERVAL`.  Threaded down from
        ``DistributedSession(poll_interval=...)`` so queue and socket
        transports can tune their poll cadence independently.
    """

    def __init__(self, queue, *, name: str = "queue", fault: dict | None = None,
                 poll_interval: float | None = None) -> None:
        self.queue = queue
        self.name = str(name)
        self.fault = dict(fault) if fault else {}
        self.poll_interval = (
            POLL_INTERVAL if poll_interval is None else float(poll_interval)
        )
        #: Frames successfully sent / received through this end.
        self.sent = 0
        self.received = 0
        #: Number of sends that found the queue full at least once.
        self.blocked_sends = 0
        #: Total seconds spent blocked on full-queue sends.
        self.blocked_seconds = 0.0

    # ------------------------------------------------------------------
    def _maybe_die(self) -> None:
        limit = self.fault.get("kill_after_sends")
        if limit is None or self.sent < int(limit):
            return
        marker = self.fault.get("once_marker")
        if marker is not None and not create_once(marker):
            return  # an earlier incarnation already took the fault
        os._exit(FAULT_EXIT_CODE)  # abrupt: no cleanup, no exception

    def send(self, frame, *, alive=None, timeout: float | None = None) -> None:
        """Put ``frame``, blocking under backpressure.

        Polls ``alive()`` (when given) while blocked so a dead peer
        raises :class:`TransportClosed` instead of hanging; ``timeout``
        bounds the total wait the same way.
        """
        delay = self.fault.get("delay_send")
        if delay:
            time.sleep(float(delay))
        self._maybe_die()
        deadline = None if timeout is None else time.monotonic() + timeout
        blocked_at = None
        while True:
            try:
                self.queue.put(frame, timeout=self.poll_interval)
            except queue_mod.Full:
                if blocked_at is None:
                    blocked_at = time.monotonic()
                    self.blocked_sends += 1
                if alive is not None and not alive():
                    self.blocked_seconds += time.monotonic() - blocked_at
                    raise TransportClosed(
                        f"peer of {self.name!r} died while the queue was full"
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    self.blocked_seconds += time.monotonic() - blocked_at
                    raise TransportClosed(
                        f"send on {self.name!r} timed out under backpressure"
                    )
                continue
            if blocked_at is not None:
                self.blocked_seconds += time.monotonic() - blocked_at
            self.sent += 1
            return

    def recv(self, *, alive=None, timeout: float | None = None):
        """Take the next frame, or ``None`` when ``timeout`` expires.

        ``alive()`` is polled while the queue is empty; a dead peer
        raises :class:`TransportClosed` (frames already queued are
        still drained first).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                frame = self.queue.get(timeout=self.poll_interval)
            except queue_mod.Empty:
                if alive is not None and not alive():
                    try:  # one last non-blocking look: drain races cleanly
                        frame = self.queue.get_nowait()
                    except queue_mod.Empty:
                        raise TransportClosed(
                            f"peer of {self.name!r} died with the queue empty"
                        ) from None
                elif deadline is not None and time.monotonic() >= deadline:
                    return None
                else:
                    continue
            self.received += 1
            delay = self.fault.get("delay_recv")
            if delay:
                time.sleep(float(delay))
            return frame

    def try_recv(self):
        """Non-blocking :meth:`recv`; ``None`` when the queue is empty."""
        try:
            frame = self.queue.get_nowait()
        except queue_mod.Empty:
            return None
        self.received += 1
        delay = self.fault.get("delay_recv")
        if delay:
            time.sleep(float(delay))
        return frame

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Instrumentation counters (JSON-ready)."""
        return {
            "sent": int(self.sent),
            "received": int(self.received),
            "blocked_sends": int(self.blocked_sends),
            "blocked_seconds": float(self.blocked_seconds),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueueTransport({self.name!r}, sent={self.sent}, "
            f"received={self.received}, blocked={self.blocked_sends})"
        )
