"""Real multiprocess site/coordinator runtime.

The in-process :class:`~repro.api.session.MonitoringSession` remains the
reference implementation; :class:`DistributedSession` runs the site-side
encoding in spawn-safe worker processes and is contractually conformant
with it (same per-site message counts, same estimates, for any spec and
seeded stream — see ``docs/distributed.md``).
"""

from repro.dist.coordinator import DistributedSession
from repro.dist.messages import (
    IngestBatch,
    RoundSync,
    Shutdown,
    SiteAggregate,
    ThresholdUpdate,
    ValueReport,
)
from repro.dist.recovery import (
    CRASH_POINTS,
    DurableCoordinator,
    RecoveryError,
    RoundRecord,
    WalCorrupt,
    WriteAheadLog,
    load_recovery,
    run_crashing_coordinator,
)
from repro.dist.site import SiteShard
from repro.dist.transport import (
    FAULT_EXIT_CODE,
    QueueTransport,
    TransportClosed,
    create_once,
)

__all__ = [
    "DistributedSession",
    "SiteShard",
    "QueueTransport",
    "TransportClosed",
    "create_once",
    "FAULT_EXIT_CODE",
    "IngestBatch",
    "SiteAggregate",
    "ValueReport",
    "ThresholdUpdate",
    "RoundSync",
    "Shutdown",
    "WriteAheadLog",
    "RoundRecord",
    "DurableCoordinator",
    "RecoveryError",
    "WalCorrupt",
    "CRASH_POINTS",
    "load_recovery",
    "run_crashing_coordinator",
]
