"""Wire frames exchanged by the multiprocess site/coordinator runtime.

The in-process path simulates the paper's protocol inside the counter
banks; the distributed runtime moves the *site-side work* (encoding a
sub-batch into per-site counter aggregates) into real worker processes
and ships the results back as frames over multiprocessing queues.  Two
message vocabularies coexist and must not be confused:

- **Protocol messages** (REPORT/BROADCAST/SYNC) are the paper's
  communication-complexity metric.  They are tallied by
  :class:`~repro.monitoring.channel.MessageLog` when the coordinator
  applies a round to the counter bank — exactly as in-process — so the
  distributed runtime reproduces the in-process tallies bit for bit.
- **Wire frames** (this module) are what actually crosses process
  boundaries.  Frames batch aggressively: one :class:`ValueReport`
  carries *every* hosted site's aggregate for one round, so the wire
  frame count is far below the protocol message count (the batching the
  paper assumes when it counts one counter update as one message).

Every frame is a plain ``__slots__`` class, picklable by reference from
spawn-started workers.  ``docs/distributed.md`` documents the format.

:class:`ValueReport` frames double as the coordinator's durability unit:
the write-ahead round log (:mod:`repro.dist.recovery`) persists each
applied round as its reports' wire encodings, so crash recovery replays
exactly the frames the banks originally consumed (``docs/recovery.md``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "IngestBatch",
    "SiteAggregate",
    "ValueReport",
    "ThresholdUpdate",
    "RoundSync",
    "Shutdown",
]


class IngestBatch:
    """Coordinator -> site worker: one round's sub-batch of events.

    ``data`` is ``(m_w, n)`` state indices and ``site_ids`` the matching
    global site assignment, restricted to the worker's hosted sites.
    ``seq`` numbers the coordinator round the sub-batch belongs to;
    workers echo it back so out-of-order replies re-align.
    """

    __slots__ = ("seq", "data", "site_ids")

    def __init__(self, seq: int, data: np.ndarray, site_ids: np.ndarray) -> None:
        self.seq = int(seq)
        self.data = data
        self.site_ids = site_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IngestBatch(seq={self.seq}, m={self.data.shape[0]})"


class SiteAggregate:
    """One site's aggregated counter increments for one round.

    ``counter_ids`` are unique and ascending, ``counts`` strictly
    positive — the exact slice shape
    :meth:`~repro.counters.base.CounterBank.bulk_add_site` consumes, so
    the coordinator applies a report without re-aggregating.
    """

    __slots__ = ("site", "counter_ids", "counts", "n_events")

    def __init__(self, site: int, counter_ids: np.ndarray,
                 counts: np.ndarray, n_events: int) -> None:
        self.site = int(site)
        self.counter_ids = counter_ids
        self.counts = counts
        self.n_events = int(n_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteAggregate(site={self.site}, "
            f"touched={self.counter_ids.size}, events={self.n_events})"
        )


class ValueReport:
    """Site worker -> coordinator: all hosted sites' aggregates for a round.

    ``aggregates`` is ordered by ascending site id and omits hosted
    sites with no events in the round.  ``state`` is the worker's
    current :meth:`~repro.dist.site.SiteShard.state_dict` — the
    coordinator keeps the most recent one per worker and hands it back
    on respawn, so a killed worker resumes from its last report.
    """

    __slots__ = ("worker", "seq", "aggregates", "state")

    def __init__(self, worker: int, seq: int,
                 aggregates: list, state: dict) -> None:
        self.worker = int(worker)
        self.seq = int(seq)
        self.aggregates = aggregates
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ValueReport(worker={self.worker}, seq={self.seq}, "
            f"sites={[a.site for a in self.aggregates]})"
        )


class ThresholdUpdate:
    """Coordinator -> every site worker: counter rounds advanced.

    Fanned out after the coordinator applies a round in which the bank
    started new counter rounds (broadcast traffic in the protocol
    tallies).  ``rounds`` is the number of broadcasts batched into this
    frame and ``seq`` the coordinator round that triggered them.
    """

    __slots__ = ("seq", "rounds")

    def __init__(self, seq: int, rounds: int) -> None:
        self.seq = int(seq)
        self.rounds = int(rounds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThresholdUpdate(seq={self.seq}, rounds={self.rounds})"


class RoundSync:
    """Site worker -> coordinator: ack of one :class:`ThresholdUpdate`.

    ``acked`` counts the threshold frames this worker incarnation has
    answered so far; the coordinator drains outstanding acks before
    shutdown so wire accounting is deterministic on fault-free runs.
    """

    __slots__ = ("worker", "acked")

    def __init__(self, worker: int, acked: int) -> None:
        self.worker = int(worker)
        self.acked = int(acked)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundSync(worker={self.worker}, acked={self.acked})"


class Shutdown:
    """Coordinator -> site worker: drain and exit cleanly."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Shutdown()"
