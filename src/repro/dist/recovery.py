"""Coordinator durability: write-ahead round log, checkpoints, recovery.

The protocol is coordinator-centric — the counter banks, the
:class:`~repro.monitoring.channel.MessageLog`, the HYZ RNG streams, and
the partitioner all live in the coordinator's inner
:class:`~repro.api.session.MonitoringSession` — so a coordinator crash
used to lose the whole monitoring run.  This module makes the
coordinator restartable with three pieces:

**Write-ahead round log** (:class:`WriteAheadLog`).  Before a round's
reports are applied to the banks, the coordinator appends one
crash-atomic record: a length-prefixed, CRC-32-guarded envelope (the
same framing discipline as :mod:`repro.net.wire`, under its own
``b"RW"`` magic) holding the round's :class:`~repro.dist.messages.ValueReport`
wire frames plus a JSON header with the round seq, batch size, the
``MessageLog`` epoch *before* the apply, and the partitioner state
captured at ingest time.  Because aggregates are pure functions of the
sub-batch and rounds apply in ascending worker/site order, replaying a
record reproduces the apply bit for bit — RNG consumption included.

**Checkpoints** (:meth:`DurableCoordinator.checkpoint`).  Periodically
the inner session is snapshotted through the crash-atomic bundle
machinery of :meth:`~repro.api.session.MonitoringSession.snapshot`
(versioned arrays first, one atomic ``meta.json`` replace as the commit
point, ``durable=True`` fsyncs) and the WAL is truncated: the
append -> apply -> checkpoint ordering guarantees every logged round is
folded into the bundle.

**Recovery** (:func:`load_recovery`, reached through
``DistributedSession(recover_from=dir)``).  Load the last committed
checkpoint (or start fresh if none committed), replay WAL rounds in
order through the exact ascending worker/site apply path, restore the
partitioner to the last replayed round's ingest-time state, bump the
coordinator incarnation (TCP workers of the dead incarnation are
refused at the :class:`~repro.net.endpoint.Listener` handshake), and
immediately re-checkpoint so recovery itself is crash-safe and the WAL
restarts empty for the new round numbering.

Durability scope: a WAL record survives coordinator *process* death
under any fsync policy (the page cache outlives ``os._exit``/SIGKILL);
the ``always``/``interval`` fsync policies extend the guarantee to
host/power failure.  ``docs/recovery.md`` walks the format, the
lifecycle, and the byte-identity argument; the chaos matrix in
``tests/test_recovery.py`` pins all of it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

from repro.dist.messages import ValueReport
from repro.dist.transport import FAULT_EXIT_CODE
from repro.errors import ExecutionError
from repro.net.wire import MAX_FRAME_BYTES, FrameDecoder, WireError, encode_frame

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "WAL_NAME",
    "STATE_NAME",
    "CHECKPOINT_NAME",
    "RECOVERY_SCHEMA",
    "CRASH_POINTS",
    "RecoveryError",
    "WalCorrupt",
    "RoundRecord",
    "WriteAheadLog",
    "DurableCoordinator",
    "load_recovery",
    "recovery_stream",
    "run_crashing_coordinator",
]

WAL_MAGIC = b"RW"
WAL_VERSION = 1
WAL_KIND_ROUND = 1

#: magic(2) | version(1) | kind(1) | payload_len(u32) | crc32(u32) —
#: deliberately the same envelope shape as :data:`repro.net.wire.HEADER`
#: so the torn/corrupt failure modes (and their tests) carry over.
_WAL_HEADER = struct.Struct("<2sBBII")
_META_LEN = struct.Struct("<I")

#: Fixed names inside a recovery directory.
WAL_NAME = "wal.log"
STATE_NAME = "coordinator.json"
CHECKPOINT_NAME = "checkpoint"

RECOVERY_SCHEMA = "repro-recovery-v1"

#: Seeded coordinator-kill injection points of the chaos harness.
CRASH_POINTS = ("pre-append", "post-append", "mid-checkpoint")


class RecoveryError(ExecutionError):
    """A recovery directory is missing, inconsistent, or unreplayable."""


class WalCorrupt(RecoveryError):
    """A WAL record is structurally corrupt (bad magic/version/CRC)."""


class RoundRecord:
    """One decoded WAL record: everything needed to re-apply a round.

    ``reports`` maps worker index to its list of
    :class:`~repro.dist.messages.SiteAggregate` (ascending site order,
    as shipped); ``epoch`` is the ``MessageLog`` epoch immediately
    before the round was applied (a replay-position check);
    ``partitioner`` is the session partitioner's ``state_dict`` as of
    this round's ingest (``None`` for explicit ``site_ids`` feeds).
    """

    __slots__ = ("seq", "m", "epoch", "partitioner", "reports")

    def __init__(self, seq: int, m: int, epoch: int,
                 partitioner: dict | None, reports: dict) -> None:
        self.seq = int(seq)
        self.m = int(m)
        self.epoch = int(epoch)
        self.partitioner = partitioner
        self.reports = reports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoundRecord(seq={self.seq}, m={self.m}, epoch={self.epoch}, "
            f"workers={sorted(self.reports)})"
        )


def _encode_record(seq: int, m: int, epoch: int, partitioner: dict | None,
                   reports: dict) -> bytes:
    """Serialize one round into a self-delimiting WAL record."""
    workers = sorted(int(w) for w in reports)
    frames = []
    for worker in workers:
        # state=None: the worker resume state is wire-level bookkeeping;
        # recovery spawns fresh workers, so only the aggregates matter.
        buffers = encode_frame(ValueReport(worker, seq, reports[worker], None))
        frames.append(b"".join(bytes(b) for b in buffers))
    meta = {
        "seq": int(seq),
        "m": int(m),
        "epoch": int(epoch),
        "partitioner": partitioner,
        "workers": workers,
    }
    try:
        meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise RecoveryError(
            f"round {seq} WAL meta is not JSON-serializable: {exc}"
        ) from exc
    payload = _META_LEN.pack(len(meta_bytes)) + meta_bytes + b"".join(frames)
    header = _WAL_HEADER.pack(
        WAL_MAGIC, WAL_VERSION, WAL_KIND_ROUND, len(payload),
        zlib.crc32(payload),
    )
    return header + payload


def _decode_record(payload: bytes) -> RoundRecord:
    """Rebuild a :class:`RoundRecord` from a CRC-verified payload."""
    if len(payload) < _META_LEN.size:
        raise WalCorrupt("WAL record payload too short for a meta length")
    (meta_len,) = _META_LEN.unpack_from(payload, 0)
    offset = _META_LEN.size + meta_len
    if offset > len(payload):
        raise WalCorrupt("WAL record meta overruns its payload")
    try:
        meta = json.loads(payload[_META_LEN.size:offset])
    except ValueError as exc:
        raise WalCorrupt(f"WAL record meta is not valid JSON: {exc}") from exc
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(payload[offset:])
    except WireError as exc:
        raise WalCorrupt(f"WAL record carries a corrupt frame: {exc}") from exc
    if decoder.pending_bytes:
        raise WalCorrupt("WAL record ends mid-frame")
    reports = {}
    for frame in frames:
        if not isinstance(frame, ValueReport):
            raise WalCorrupt(
                f"WAL record carries a {type(frame).__name__}, expected "
                "only ValueReport frames"
            )
        reports[frame.worker] = frame.aggregates
    if sorted(reports) != [int(w) for w in meta.get("workers", ())]:
        raise WalCorrupt(
            f"WAL record frames name workers {sorted(reports)} but the "
            f"meta promised {meta.get('workers')}"
        )
    return RoundRecord(
        meta["seq"], meta["m"], meta["epoch"], meta.get("partitioner"),
        reports,
    )


class WriteAheadLog:
    """Append-only log of applied rounds, one crash-atomic record each.

    ``fsync`` selects the durability policy: ``"always"`` syncs after
    every append (host-crash safe per round), ``"interval"`` after every
    ``fsync_interval`` appends, ``"off"`` never (coordinator-process
    crashes are still safe under all three — the OS page cache survives
    the process).  :meth:`scan` tolerates a torn tail (a crash mid-write
    loses at most the in-flight record) but raises :class:`WalCorrupt`
    on structural damage — a partial round is never replayed.
    """

    def __init__(self, path, *, fsync: str = "always",
                 fsync_interval: int = 8) -> None:
        if fsync not in ("always", "interval", "off"):
            raise RecoveryError(
                f"fsync policy must be 'always', 'interval', or 'off', "
                f"got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_interval = int(fsync_interval)
        if self.fsync == "interval" and self.fsync_interval < 1:
            raise RecoveryError(
                f"fsync_interval must be positive, got {fsync_interval}"
            )
        self._fh = open(self.path, "ab")
        self._unsynced = 0
        #: Accounting surfaced by ``durability_stats`` / the benches.
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0

    # ------------------------------------------------------------------
    def append_round(self, seq: int, m: int, epoch: int,
                     partitioner: dict | None, reports: dict) -> int:
        """Append one round's record; returns its size in bytes."""
        record = _encode_record(seq, m, epoch, partitioner, reports)
        self._fh.write(record)
        self._fh.flush()
        self.records_appended += 1
        self.bytes_appended += len(record)
        self._unsynced += 1
        if self.fsync == "always" or (
            self.fsync == "interval"
            and self._unsynced >= self.fsync_interval
        ):
            self.sync(force=True)
        return len(record)

    def sync(self, *, force: bool = False) -> None:
        """fsync the log file (no-op under ``fsync="off"`` unless forced)."""
        if self._unsynced == 0 or (self.fsync == "off" and not force):
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._unsynced = 0

    # ------------------------------------------------------------------
    @staticmethod
    def scan(path, *, max_bytes: int = MAX_FRAME_BYTES) -> list:
        """Decode every complete record in ``path``, in append order.

        A torn tail — fewer bytes than the last header promises — is
        where the log stops: the records before it are returned and the
        partial one is silently dropped (a crash mid-append can lose
        only the round being written, which was by definition not yet
        applied).  Anything *structurally* wrong in the complete region
        (bad magic or version, an implausible length, a CRC mismatch, a
        frame that will not decode) raises :class:`WalCorrupt` instead:
        silence there could replay a damaged round into the banks.
        """
        blob = Path(path).read_bytes()
        records = []
        offset = 0
        while offset < len(blob):
            if offset + _WAL_HEADER.size > len(blob):
                break  # torn tail: a partial header
            magic, version, kind, length, crc = _WAL_HEADER.unpack_from(
                blob, offset
            )
            if magic != WAL_MAGIC:
                raise WalCorrupt(
                    f"bad WAL magic {magic!r} at offset {offset}; this is "
                    "not a repro round log"
                )
            if version != WAL_VERSION:
                raise WalCorrupt(
                    f"unsupported WAL version {version} at offset {offset} "
                    f"(expected {WAL_VERSION})"
                )
            if kind != WAL_KIND_ROUND:
                raise WalCorrupt(
                    f"unknown WAL record kind {kind} at offset {offset}"
                )
            if length > max_bytes:
                raise WalCorrupt(
                    f"WAL record at offset {offset} declares {length} "
                    f"payload bytes, over the {max_bytes}-byte limit"
                )
            start = offset + _WAL_HEADER.size
            if start + length > len(blob):
                break  # torn tail: a partial payload
            payload = blob[start:start + length]
            if zlib.crc32(payload) != crc:
                raise WalCorrupt(
                    f"WAL record at offset {offset} failed its CRC-32 "
                    f"check ({length} payload bytes)"
                )
            records.append(_decode_record(payload))
            offset = start + length
        return records

    # ------------------------------------------------------------------
    def truncate_through(self, seq: int | None) -> None:
        """Atomically drop every record with ``record.seq <= seq``.

        ``seq=None`` drops everything (the checkpoint case: the
        append -> apply -> checkpoint ordering means every record in the
        log is already folded into the bundle being committed).
        Survivors are re-encoded into a sibling temp file which then
        atomically replaces the log, so a crash mid-truncate leaves
        either the old log or the new one — never a hybrid.
        """
        self.sync(force=True)
        survivors = [] if seq is None else [
            record for record in self.scan(self.path)
            if record.seq > int(seq)
        ]
        tmp = self.path.with_name(f".tmp-{self.path.name}")
        with open(tmp, "wb") as fh:
            for record in survivors:
                fh.write(_encode_record(
                    record.seq, record.m, record.epoch, record.partitioner,
                    record.reports,
                ))
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        self._fh = open(self.path, "ab")
        self._unsynced = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.sync()
            self._fh.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({str(self.path)!r}, fsync={self.fsync!r}, "
            f"appended={self.records_appended})"
        )


def _fsync_dir(path) -> None:
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class DurableCoordinator:
    """The coordinator's durability sidecar: WAL + checkpoints + state.

    Owned by a :class:`~repro.dist.coordinator.DistributedSession`
    constructed with ``wal_dir``; the session calls :meth:`log_round`
    right before applying a complete round and :meth:`after_apply`
    right after, and this object does the rest — appends, periodic
    checkpoints (every ``checkpoint_rounds`` applied rounds; always on
    :meth:`close`), WAL truncation, and the ``coordinator.json`` state
    file that records the spec and the coordinator incarnation for
    :func:`load_recovery`.

    ``crash`` is the chaos-harness hook: a declarative
    ``{"seq": N, "point": <CRASH_POINTS>}`` spec that hard-kills the
    process (``os._exit`` with
    :data:`~repro.dist.transport.FAULT_EXIT_CODE`) at the named
    injection point of round ``N`` — before the WAL append, after the
    append but before the apply, or midway through a checkpoint (after
    the arrays replace, before the ``meta.json`` commit).
    """

    def __init__(self, directory, inner, *, fsync: str = "always",
                 fsync_interval: int = 8,
                 checkpoint_rounds: int | None = None,
                 crash: dict | None = None, incarnation: int = 0,
                 fresh: bool = True) -> None:
        self.directory = Path(directory)
        self.inner = inner
        self.incarnation = int(incarnation)
        if checkpoint_rounds is not None and int(checkpoint_rounds) < 1:
            raise RecoveryError(
                f"checkpoint_rounds must be positive, got {checkpoint_rounds}"
            )
        self.checkpoint_rounds = (
            None if checkpoint_rounds is None else int(checkpoint_rounds)
        )
        self._crash = dict(crash) if crash else None
        if self._crash and self._crash.get("point") not in CRASH_POINTS:
            raise RecoveryError(
                f"crash point must be one of {CRASH_POINTS}, "
                f"got {self._crash.get('point')!r}"
            )
        self._applied_seq = 0
        #: Partitioner state as of the last *applied* round's ingest —
        #: what a checkpoint must persist.  The live partitioner can be
        #: ahead of it when rounds pipeline (``max_pending > 1``).
        self._partitioner_applied: dict | None = None
        self._since_checkpoint = 0
        self.checkpoints = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        if fresh:
            # A fresh durable session owns the directory: stale
            # artifacts of a previous run in the same location (benches
            # and tests rerun in fixed paths) must not replay into it.
            self._clear_directory()
            self._write_state()
        self.wal = WriteAheadLog(
            self.directory / WAL_NAME, fsync=fsync,
            fsync_interval=fsync_interval,
        )

    # ------------------------------------------------------------------
    def _clear_directory(self) -> None:
        for name in (WAL_NAME, STATE_NAME):
            (self.directory / name).unlink(missing_ok=True)
        checkpoint = self.directory / CHECKPOINT_NAME
        if checkpoint.is_dir():
            for entry in checkpoint.iterdir():
                entry.unlink()

    def _write_state(self) -> None:
        """Commit ``coordinator.json`` atomically (spec + incarnation)."""
        state = {
            "schema": RECOVERY_SCHEMA,
            "spec": self.inner.spec.to_dict(),
            "incarnation": self.incarnation,
        }
        tmp = self.directory / f".tmp-{STATE_NAME}"
        tmp.write_text(json.dumps(state, indent=2) + "\n")
        _fsync_file(tmp)
        os.replace(tmp, self.directory / STATE_NAME)
        _fsync_dir(self.directory)

    def _maybe_crash(self, point: str, seq: int) -> None:
        crash = self._crash
        if (
            crash is not None
            and crash.get("point") == point
            and int(crash.get("seq", -1)) == int(seq)
        ):
            # os._exit: no atexit, no finally blocks, no queue feeder
            # joins — the closest a test can get to SIGKILLing itself.
            os._exit(FAULT_EXIT_CODE)

    # ------------------------------------------------------------------
    # Hooks called by the coordinator event loop
    # ------------------------------------------------------------------
    def log_round(self, seq: int, record: dict) -> None:
        """WAL-append one complete round; called *before* the apply."""
        self._maybe_crash("pre-append", seq)
        self.wal.append_round(
            seq, record["m"], self.inner.message_log.epoch,
            record.get("partitioner"), record["got"],
        )
        self._maybe_crash("post-append", seq)

    def after_apply(self, seq: int, record: dict) -> None:
        """Bookkeeping after a round applied; may trigger a checkpoint."""
        self._applied_seq = int(seq)
        if record.get("partitioner") is not None:
            self._partitioner_applied = record["partitioner"]
        self._since_checkpoint += 1
        if (
            self.checkpoint_rounds is not None
            and self._since_checkpoint >= self.checkpoint_rounds
        ):
            self.checkpoint()

    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the inner session durably and empty the WAL.

        The bundle must describe the state *as of the last applied
        round*, so the live partitioner (which may have advanced past
        it while rounds pipeline) is swapped for the applied-round
        state around the snapshot and restored after.
        """
        seq = self._applied_seq
        if (
            self._crash is not None
            and self._crash.get("point") == "mid-checkpoint"
            and int(self._crash.get("seq", -1)) == seq
        ):
            self._simulate_torn_checkpoint()
        partitioner = self.inner.partitioner
        live_state = None
        if self._partitioner_applied is not None:
            live_state = partitioner.state_dict()
            partitioner.load_state_dict(self._partitioner_applied)
        try:
            self.inner.snapshot(
                self.directory / CHECKPOINT_NAME,
                extra={"recovery": {
                    "applied_seq": seq,
                    "incarnation": self.incarnation,
                }},
                durable=True,
            )
        finally:
            if live_state is not None:
                partitioner.load_state_dict(live_state)
        # Every WAL record is <= the applied seq here (records are
        # appended immediately before their apply), so the bundle just
        # committed covers the whole log.
        self.wal.truncate_through(None)
        self._since_checkpoint = 0
        self.checkpoints += 1

    def _simulate_torn_checkpoint(self) -> None:
        """Die exactly as a crash between the two atomic replaces would.

        A real mid-checkpoint crash window is after the new versioned
        arrays file landed but before the ``meta.json`` commit.  The
        simulation snapshots into a scratch directory, moves only the
        arrays file into the checkpoint directory (leaving the old
        ``meta.json`` — or none — in place), and exits hard.  Recovery
        must treat the orphan arrays as uncommitted: restore the *old*
        bundle (or start fresh) and take the whole round from the WAL.
        """
        scratch = self.directory / ".crash-scratch"
        self.inner.snapshot(scratch)
        checkpoint = self.directory / CHECKPOINT_NAME
        checkpoint.mkdir(exist_ok=True)
        for arrays in scratch.glob("arrays-*.npz"):
            os.replace(arrays, checkpoint / arrays.name)
        os._exit(FAULT_EXIT_CODE)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Final checkpoint + WAL close: a clean shutdown leaves an
        empty log and a bundle describing the complete run."""
        self.checkpoint()
        self.wal.close()

    def stats(self) -> dict:
        """JSON-ready durability accounting (for ``durability_stats``)."""
        return {
            "wal_records": self.wal.records_appended,
            "wal_bytes": self.wal.bytes_appended,
            "wal_fsyncs": self.wal.fsyncs,
            "fsync_policy": self.wal.fsync,
            "checkpoints": self.checkpoints,
            "incarnation": self.incarnation,
        }


def _fsync_file(path) -> None:
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def load_recovery(directory, *, network=None):
    """Rebuild the coordinator's inner session from a recovery directory.

    Returns ``(inner, incarnation, info)``: the recovered
    :class:`~repro.api.session.MonitoringSession` (checkpoint state plus
    every complete WAL round re-applied through the ascending
    worker/site order, so banks — HYZ RNG state included — are
    byte-identical to the uninterrupted run), the *bumped* coordinator
    incarnation the restarted session must announce in its TCP
    handshakes, and a JSON-ready ``info`` dict
    (``replayed_rounds`` / ``checkpoint_seq`` / ``applied_seq``).

    Raises :class:`RecoveryError` on a missing or inconsistent
    directory, :class:`WalCorrupt` on structural WAL damage, and
    :class:`~repro.errors.SessionError` if the checkpoint bundle's
    ``meta.json`` references arrays that are gone (a stale meta) — a
    partial round is never applied.
    """
    from repro.api.session import MonitoringSession
    from repro.api.spec import EstimatorSpec

    directory = Path(directory)
    state_path = directory / STATE_NAME
    if not state_path.is_file():
        raise RecoveryError(
            f"no coordinator state file at {state_path}; not a recovery "
            "directory (was the session started with wal_dir?)"
        )
    try:
        state = json.loads(state_path.read_text())
    except ValueError as exc:
        raise RecoveryError(
            f"coordinator state file {state_path} is not valid JSON: {exc}"
        ) from exc
    if state.get("schema") != RECOVERY_SCHEMA:
        raise RecoveryError(
            f"coordinator state file {state_path} has schema "
            f"{state.get('schema')!r}, expected {RECOVERY_SCHEMA!r}"
        )
    spec = EstimatorSpec.from_dict(state["spec"])

    checkpoint = directory / CHECKPOINT_NAME
    if (checkpoint / "meta.json").is_file():
        # Orphan arrays files from a crash mid-checkpoint are simply
        # never referenced: restore opens only the file meta.json names.
        inner = MonitoringSession.restore(checkpoint, network=network)
        marker = (inner.restored_extra or {}).get("recovery")
        if not isinstance(marker, dict) or "applied_seq" not in marker:
            raise RecoveryError(
                f"checkpoint bundle {checkpoint} carries no recovery "
                "marker; it was not written by a durable coordinator"
            )
        base_seq = int(marker["applied_seq"])
        checkpoint_seq = base_seq
    else:
        inner = MonitoringSession(spec, network=network)
        base_seq = 0
        checkpoint_seq = None

    wal_path = directory / WAL_NAME
    records = WriteAheadLog.scan(wal_path) if wal_path.is_file() else []
    bank = inner.estimator.bank
    log = inner.message_log
    expected = base_seq + 1
    replayed = 0
    last = None
    for record in records:
        if record.seq <= base_seq:
            continue  # already folded into the checkpoint
        if record.seq != expected:
            raise RecoveryError(
                f"WAL is not contiguous: expected round {expected} next, "
                f"found {record.seq}"
            )
        if record.epoch != log.epoch:
            raise RecoveryError(
                f"WAL round {record.seq} was logged at message-log epoch "
                f"{record.epoch} but replay reached epoch {log.epoch}; "
                "the checkpoint and the log disagree"
            )
        # The conformance-critical order: ascending worker, then each
        # worker's aggregates ascending by site — identical to
        # DistributedSession._apply_ready, so RNG consumption matches.
        for worker in sorted(record.reports):
            for agg in record.reports[worker]:
                bank.bulk_add_site(agg.site, agg.counter_ids, agg.counts)
        inner.estimator.events_seen += record.m
        expected += 1
        replayed += 1
        last = record
    if last is not None and last.partitioner is not None:
        inner.partitioner.load_state_dict(last.partitioner)

    incarnation = int(state.get("incarnation", 0)) + 1
    info = {
        "replayed_rounds": replayed,
        "checkpoint_seq": checkpoint_seq,
        "applied_seq": base_seq + replayed,
        "incarnation": incarnation,
    }
    return inner, incarnation, info


# ----------------------------------------------------------------------
# Chaos-harness entry points (importable from spawn-started processes)
# ----------------------------------------------------------------------
def recovery_stream(network, *, n_events: int, chunk: int, seed: int):
    """The chaos stream: identical batches for driver and crashed child.

    Same construction as the bench streams — a
    :class:`~repro.bn.sampling.ForwardSampler` over a
    :class:`~repro.utils.rng.RandomSource` generator — so a recovered
    session resuming at batch ``events_seen // chunk`` re-feeds exactly
    the events the crashed run lost.
    """
    from repro.bn.sampling import ForwardSampler
    from repro.utils.rng import RandomSource

    sampler = ForwardSampler(network, seed=RandomSource(seed).generator())
    batches = []
    produced = 0
    while produced < n_events:
        size = min(int(chunk), int(n_events) - produced)
        batches.append(sampler.sample(size))
        produced += size
    return batches


def run_crashing_coordinator(payload: dict) -> None:
    """Spawn entry: run a durable coordinator that dies on schedule.

    ``payload`` is all-JSON-shaped (spawn-picklable): the spec as a
    dict, ``transport`` / ``procs``, the recovery ``dir``, the WAL
    ``fsync`` policy and ``checkpoint_rounds``, an optional ``crash``
    spec (see :class:`DurableCoordinator`), and a ``stream`` dict
    (``seed`` / ``n_events`` / ``chunk``) naming the deterministic
    batches to feed.  Without a crash spec the run completes and exits
    0 — the driver asserts :data:`~repro.dist.transport.FAULT_EXIT_CODE`
    for crash runs and 0 otherwise.
    """
    from repro.api.spec import EstimatorSpec
    from repro.dist.coordinator import DistributedSession

    spec = EstimatorSpec.from_dict(payload["spec"])
    net = spec.resolve_network()
    batches = recovery_stream(
        net,
        n_events=payload["stream"]["n_events"],
        chunk=payload["stream"]["chunk"],
        seed=payload["stream"]["seed"],
    )
    session = DistributedSession(
        spec, network=net,
        procs=payload.get("procs"),
        transport=payload.get("transport", "queue"),
        wal_dir=payload["dir"],
        wal_fsync=payload.get("fsync", "always"),
        checkpoint_rounds=payload.get("checkpoint_rounds"),
        wal_crash=payload.get("crash"),
    )
    for batch in batches:
        session.ingest(batch, validate=False)
    session.close()
