"""The site worker: spawn-safe process hosting a shard of sites.

Each worker owns a contiguous shard of the ``k`` sites and performs the
genuinely site-local part of Algorithm 2: encoding its sub-batch of
events into per-site aggregated ``(counter_id, count)`` increments.  The
encoding reuses the full :class:`~repro.core.estimator.StreamingMLEEstimator`
fast path (sparse encoder, derived parent histograms, argsort sharding)
by pointing it at a :class:`_CollectorBank` — a bank whose ``_apply_site``
hook records the per-site slices instead of simulating the protocol.
Because every grouping strategy hands banks identical sorted-unique
per-site slices in ascending site order, the aggregates a worker ships
are bit-identical to the slices the in-process path would have handed
the real bank — which is what makes the coordinator's conformance
contract (`docs/distributed.md`) hold by construction.

The worker entry point follows the spawn-safe patterns of
``exec/multiprocess.py``: a top-level function rebuilding everything
from a picklable payload, started with the ``spawn`` method so no
parent state is inherited.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import EstimatorSpec
from repro.core.estimator import StreamingMLEEstimator
from repro.counters.base import CounterBank
from repro.dist.messages import (
    IngestBatch,
    RoundSync,
    Shutdown,
    SiteAggregate,
    ThresholdUpdate,
    ValueReport,
)
from repro.dist.transport import QueueTransport, TransportClosed

#: Start method for site workers (same rationale as exec/multiprocess.py).
START_METHOD = "spawn"


class _CollectorBank(CounterBank):
    """A bank that records per-site slices instead of simulating anything.

    The estimator's grouping layer calls ``_apply_site`` once per
    non-silent site, ascending, with the site's sorted-unique aggregate
    — exactly the payload a :class:`ValueReport` needs.  The arrays are
    estimator-owned workspace, so they are copied out here.
    """

    def __init__(self, n_counters: int, n_sites: int) -> None:
        super().__init__(n_counters, n_sites)
        self.collected: list[tuple[int, np.ndarray, np.ndarray]] = []

    def _apply_site(self, site, counter_ids, counts) -> None:
        self.collected.append(
            (int(site), np.array(counter_ids, dtype=np.int64),
             np.array(counts, dtype=np.int64))
        )

    def estimates(self) -> np.ndarray:  # pragma: no cover - never queried
        return np.zeros(self.n_counters, dtype=np.float64)

    def take(self) -> list[tuple[int, np.ndarray, np.ndarray]]:
        slices, self.collected = self.collected, []
        return slices


class SiteShard:
    """Site-local state of one worker: encoder plus resume counters.

    Parameters
    ----------
    spec:
        The session's estimator spec (only the network layout and site
        count matter for encoding; the protocol stays coordinator-side).
    sites:
        Ascending global site ids hosted by this worker.
    network:
        Skip the spec's repository lookup when already resolved.
    """

    def __init__(self, spec: EstimatorSpec, sites, *, network=None) -> None:
        self.spec = spec
        self.sites = tuple(int(s) for s in sites)
        net = network if network is not None else spec.resolve_network()
        self._collector_holder: list[_CollectorBank] = []

        def factory(n_counters: int) -> _CollectorBank:
            bank = _CollectorBank(n_counters, spec.n_sites)
            self._collector_holder.append(bank)
            return bank

        self.estimator = StreamingMLEEstimator(
            net, factory, name="site-shard", encoder="auto"
        )
        self.collector = self._collector_holder[0]
        #: Stream position of this shard (events encoded so far).
        self.events_seen = 0
        #: Next coordinator round this shard expects to encode.
        self.next_seq = 1

    # ------------------------------------------------------------------
    def encode(self, seq: int, data: np.ndarray,
               site_ids: np.ndarray) -> list[SiteAggregate]:
        """Aggregate one round's sub-batch into per-site reports.

        Returns one :class:`SiteAggregate` per hosted site with events,
        ascending by site id.  Batches arrive pre-validated from the
        coordinator, so the estimator's range scans are skipped.
        """
        aggregates: list[SiteAggregate] = []
        if data.shape[0]:
            # The argsort strategy keeps worker memory at O(touched)
            # instead of the dense path's O(k * n_counters) table.
            self.estimator.update_batch(
                data, site_ids, strategy="argsort", validate=False
            )
            counts_per_site = np.bincount(
                site_ids, minlength=self.spec.n_sites
            )
            for site, counter_ids, counts in self.collector.take():
                aggregates.append(
                    SiteAggregate(
                        site, counter_ids, counts,
                        int(counts_per_site[site]),
                    )
                )
        self.events_seen += int(data.shape[0])
        self.next_seq = int(seq) + 1
        return aggregates

    # ------------------------------------------------------------------
    # Resume protocol (the PR-3 state_dict convention): everything a
    # respawned worker needs to continue where the dead one stopped.
    # The coordinator stores the state carried on each ValueReport and
    # hands the most recent one to the replacement process.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "kind": "site-shard",
            "sites": list(self.sites),
            "events_seen": int(self.events_seen),
            "next_seq": int(self.next_seq),
        }

    def load_state_dict(self, state: dict) -> None:
        if state.get("kind") != "site-shard":
            raise ValueError(
                f"snapshot holds a {state.get('kind')!r} state, cannot "
                "restore into a site shard"
            )
        if tuple(state.get("sites", ())) != self.sites:
            raise ValueError(
                f"snapshot hosts sites {state.get('sites')}, shard hosts "
                f"{list(self.sites)}"
            )
        self.events_seen = int(state["events_seen"])
        self.next_seq = int(state["next_seq"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteShard(sites={list(self.sites)}, "
            f"events={self.events_seen}, next_seq={self.next_seq})"
        )


def _site_worker_main(payload: dict) -> None:
    """Worker entry point: encode batches until told to shut down.

    ``payload`` carries only picklable values: the spec as a dict, the
    hosted site ids, the channel ends — both queue ends, or (under the
    TCP transport) a ``net`` dict with the coordinator's listener
    address, session token, and this incarnation number — an optional
    resume ``state`` (from the previous incarnation's last report) and
    an optional declarative ``fault`` spec wrapped around the report
    transport by the fault-injection tests.
    """
    import multiprocessing

    spec = EstimatorSpec.from_dict(payload["spec"])
    shard = SiteShard(spec, payload["sites"])
    if payload.get("state") is not None:
        shard.load_state_dict(payload["state"])
    worker = int(payload["worker"])
    parent = multiprocessing.parent_process()
    parent_alive = parent.is_alive if parent is not None else (lambda: True)
    net = payload.get("net")
    if net is not None:
        from repro.net.transport import SocketTransport
        from repro.net.wire import MAX_FRAME_BYTES

        socket_kwargs = {
            "incarnation": net["incarnation"],
            "token": net["token"],
            "coordinator": net.get("coordinator", 0),
            "max_frame_bytes": net.get("max_frame_bytes") or MAX_FRAME_BYTES,
            "heartbeat_timeout": net.get("heartbeat_timeout"),
            "poll_interval": payload.get("poll_interval"),
        }
        inbox = SocketTransport(
            net["address"], worker=worker, channel="inbox",
            name=f"worker-{worker}.inbox",
            fault=payload.get("inbox_fault"),
            **socket_kwargs,
        )
        reports = SocketTransport(
            net["address"], worker=worker, channel="reports",
            name=f"worker-{worker}.reports",
            fault=payload.get("fault"),
            **socket_kwargs,
        )
    else:
        inbox = QueueTransport(
            payload["inbox"], name=f"worker-{worker}.inbox",
            fault=payload.get("inbox_fault"),
            poll_interval=payload.get("poll_interval"),
        )
        reports = QueueTransport(
            payload["reports"], name=f"worker-{worker}.reports",
            fault=payload.get("fault"),
            poll_interval=payload.get("poll_interval"),
        )
    acked = 0
    try:
        while True:
            frame = inbox.recv(alive=parent_alive)
            if isinstance(frame, Shutdown):
                return
            if isinstance(frame, IngestBatch):
                aggregates = shard.encode(
                    frame.seq, frame.data, frame.site_ids
                )
                reports.send(
                    ValueReport(
                        worker, frame.seq, aggregates, shard.state_dict()
                    ),
                    alive=parent_alive,
                )
            elif isinstance(frame, ThresholdUpdate):
                # The protocol's threshold/round state lives in the
                # coordinator's bank; the ack closes the round-sync loop
                # so fan-out is observable on the wire.
                acked += 1
                reports.send(RoundSync(worker, acked), alive=parent_alive)
            else:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"site worker got unknown frame {frame!r}"
                )
    except TransportClosed:  # pragma: no cover - parent/listener died
        return
    finally:
        if net is not None:
            # Both sends above block until the kernel accepted every
            # byte, so closing here never truncates a reported frame.
            reports.close()
            inbox.close()
