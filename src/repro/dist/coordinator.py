"""The coordinator event loop and :class:`DistributedSession`.

:class:`DistributedSession` mirrors
:class:`~repro.api.session.MonitoringSession`'s ingest/query/snapshot
API while running the site-side half of Algorithm 2 in real spawn-safe
worker processes (:mod:`repro.dist.site`).  Per ingest round it

1. assigns sites from the session partitioner (the same stream the
   in-process path consumes),
2. splits the batch across workers by hosted-site shard and ships one
   :class:`~repro.dist.messages.IngestBatch` frame per worker over a
   bounded inbox queue (full queue = backpressure: ingest stalls
   instead of buffering unboundedly),
3. drains :class:`~repro.dist.messages.ValueReport` frames, re-aligns
   them by round, and applies each round's per-site aggregates to the
   inner session's counter bank **in ascending site order** — the exact
   call sequence (`bulk_add_site` per non-silent site) the in-process
   grouped paths produce, so the bank state, message-log tallies, and
   RNG consumption are bit-identical to the in-process channel,
4. fans out a :class:`~repro.dist.messages.ThresholdUpdate` to every
   worker whenever the apply started new counter rounds (the
   coordinator's round-sync broadcast), collecting the workers'
   :class:`~repro.dist.messages.RoundSync` acks.

**Conformance contract** (pinned by ``tests/test_dist.py``): for any
``EstimatorSpec`` and seeded stream, a ``DistributedSession`` fed the
same batches as a ``MonitoringSession`` finishes with identical per-site
message counts, identical message-kind tallies, and identical estimates
— including runs where a site worker is SIGKILLed mid-round, because a
replacement is respawned from the dead worker's last reported
``state_dict`` and unreported sub-batches are replayed (reports are
deduplicated per round, and aggregates are pure functions of the
sub-batch, so a replayed round applies bit-identically).

``docs/distributed.md`` walks through the design, the wire format, and
the contract's proof obligations.  With ``wal_dir`` set the coordinator
is additionally *durable* — rounds are write-ahead logged before they
touch the banks and checkpointed periodically, and
``DistributedSession(recover_from=dir)`` restarts a crashed coordinator
byte-identically (:mod:`repro.dist.recovery`, ``docs/recovery.md``).
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable
from multiprocessing.connection import wait as _wait_connections

import numpy as np

from repro.api.session import MonitoringSession
from repro.api.spec import EstimatorSpec
from repro.dist.messages import (
    IngestBatch,
    RoundSync,
    Shutdown,
    ThresholdUpdate,
    ValueReport,
)
from repro.dist.site import START_METHOD, _site_worker_main
from repro.dist.transport import POLL_INTERVAL, QueueTransport, TransportClosed
from repro.errors import ExecutionError, SessionError
from repro.monitoring.channel import MessageKind


class _WorkerHandle:
    """Driver-side record of one site worker process."""

    __slots__ = (
        "index", "sites", "process", "inbox", "reports", "state",
        "unreported", "thresholds_sent", "thresholds_acked", "respawns",
    )

    def __init__(self, index: int, sites: tuple[int, ...]) -> None:
        self.index = index
        self.sites = sites
        self.process = None
        self.inbox: QueueTransport | None = None
        #: This incarnation's report queue.  Per-worker (never shared):
        #: an abrupt death can corrupt the queue its feeder thread was
        #: writing — a fresh incarnation gets a fresh queue and the old
        #: one is discarded, so a dying worker can never wedge the pipe
        #: a *surviving* worker sends on.
        self.reports: QueueTransport | None = None
        #: Last state_dict the worker reported (respawn hand-off).
        self.state: dict | None = None
        #: seq -> (data, site_ids) sub-batches sent but not yet reported
        #: by this worker; replayed verbatim after a respawn.
        self.unreported: dict[int, tuple] = {}
        self.thresholds_sent = 0
        self.thresholds_acked = 0
        self.respawns = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class DistributedSession:
    """A monitoring session whose sites are real worker processes.

    Parameters
    ----------
    spec:
        The declarative run description (must carry a serializable seed;
        worker processes rebuild their encoders from ``spec.to_dict()``).
    network:
        Skip the spec's repository lookup when already resolved.
    procs:
        Worker process count ``N``; the ``k`` sites are multiplexed over
        contiguous shards of ``ceil(k / N)``-ish sites.  Defaults to
        ``min(k, os.cpu_count())``.
    max_pending:
        Rounds allowed in flight after :meth:`ingest` returns.  The
        default 1 is fully synchronous (every batch is applied before
        ingest returns, like the in-process session); higher values
        pipeline encoding of round ``s+1`` against application of round
        ``s`` — reads (:meth:`metrics`, queries, snapshots) flush first,
        so anytime semantics are preserved.
    inbox_slots / report_slots:
        Bounds of the per-worker inbox and report queues — the
        backpressure windows.
    max_respawns:
        Worker deaths tolerated per worker slot before the session gives
        up with :class:`~repro.errors.ExecutionError`.
    transport:
        ``"queue"`` (the default, in-host ``multiprocessing`` queues) or
        ``"tcp"`` — the :mod:`repro.net` socket transport: workers dial
        a loopback listener and speak the framed wire protocol, with
        identical conformance guarantees (see ``docs/networking.md``).
    poll_interval:
        Liveness-poll cadence threaded into every transport end
        (defaults to :data:`~repro.dist.transport.POLL_INTERVAL`).
    worker_faults / worker_inbox_faults:
        Test hooks: declarative fault specs (see
        :mod:`repro.dist.transport` and :mod:`repro.net.transport`)
        installed on a worker's report / inbox transport, keyed by
        worker index.
    coordinator_faults:
        TCP-only test hook: fault specs installed listener-side on a
        worker's *reports* channel (see :mod:`repro.net.endpoint`),
        keyed by worker index.
    wal_dir:
        Directory for coordinator durability (``docs/recovery.md``): a
        write-ahead round log, periodic crash-atomic checkpoints, and a
        ``coordinator.json`` state file live there.  A fresh session
        takes ownership of the directory (stale artifacts of a prior
        run are cleared).
    wal_fsync / wal_fsync_interval:
        WAL fsync policy — ``"always"`` (per append), ``"interval"``
        (every ``wal_fsync_interval`` appends), or ``"off"``.
        Coordinator-*process* crashes are recoverable under all three;
        fsync extends the guarantee to host/power failure.
    checkpoint_rounds:
        Checkpoint (and truncate the WAL) every N applied rounds;
        ``None`` checkpoints only on :meth:`close` (and on recovery).
    recover_from:
        Restart path: rebuild the coordinator from this recovery
        directory — last committed checkpoint plus WAL replay — with a
        bumped coordinator incarnation and fresh workers.  ``spec`` is
        taken from the directory and must not be passed.
    wal_crash:
        Chaos-harness hook: a ``{"seq": N, "point": ...}`` spec that
        hard-kills the coordinator at a seeded injection point (see
        :data:`~repro.dist.recovery.CRASH_POINTS`).
    bind_address / advertise_address:
        TCP only: the interface the listener binds (default loopback;
        ``"0.0.0.0"`` for all interfaces) and, when binding a wildcard,
        the address workers are told to dial.
    max_frame_bytes:
        TCP only: per-frame payload ceiling for both directions
        (default :data:`repro.net.wire.MAX_FRAME_BYTES`).
    heartbeat_timeout:
        TCP only: worker-side dead-peer threshold in seconds (no frame
        nor heartbeat for this long drops the connection; default off).
    """

    def __init__(
        self,
        spec: EstimatorSpec | None = None,
        *,
        network=None,
        procs: int | None = None,
        max_pending: int = 1,
        inbox_slots: int | None = None,
        report_slots: int | None = None,
        max_respawns: int = 5,
        transport: str = "queue",
        poll_interval: float | None = None,
        worker_faults: dict | None = None,
        worker_inbox_faults: dict | None = None,
        coordinator_faults: dict | None = None,
        wal_dir=None,
        wal_fsync: str = "always",
        wal_fsync_interval: int = 8,
        checkpoint_rounds: int | None = None,
        recover_from=None,
        wal_crash: dict | None = None,
        bind_address: str | None = None,
        advertise_address: str | None = None,
        max_frame_bytes: int | None = None,
        heartbeat_timeout: float | None = None,
        _inner: MonitoringSession | None = None,
    ) -> None:
        self._durable = None
        #: JSON-ready summary of the last recovery (None on fresh runs).
        self.recovery_info = None
        self._incarnation = 0
        if recover_from is not None:
            if spec is not None or _inner is not None:
                raise SessionError(
                    "recover_from rebuilds the spec and state from the "
                    "recovery directory; pass neither spec nor _inner"
                )
            from repro.dist.recovery import load_recovery

            _inner, self._incarnation, self.recovery_info = load_recovery(
                recover_from, network=network
            )
            spec = _inner.spec
            wal_dir = recover_from
        elif spec is None:
            raise SessionError(
                "spec is required unless recover_from is given"
            )
        if isinstance(spec.seed, np.random.Generator):
            raise SessionError(
                "DistributedSession ships its spec to worker processes and "
                "needs a serializable (int or None) seed, not a Generator"
            )
        self.inner = _inner if _inner is not None else MonitoringSession(
            spec, network=network
        )
        k = spec.n_sites
        if procs is None:
            procs = min(k, os.cpu_count() or 1)
        procs = int(procs)
        if procs < 1:
            raise SessionError(f"procs must be positive, got {procs}")
        self.procs = min(procs, k)
        self.max_pending = max(1, int(max_pending))
        self._inbox_slots = int(
            inbox_slots if inbox_slots is not None else self.max_pending + 2
        )
        self._report_slots = int(
            report_slots if report_slots is not None
            else 4 * self.max_pending + 4
        )
        self.max_respawns = int(max_respawns)
        if transport not in ("queue", "tcp"):
            raise SessionError(
                f"transport must be 'queue' or 'tcp', got {transport!r}"
            )
        self.transport = transport
        self._poll_interval = (
            None if poll_interval is None else float(poll_interval)
        )
        self._worker_faults = dict(worker_faults or {})
        self._worker_inbox_faults = dict(worker_inbox_faults or {})
        self._coordinator_faults = dict(coordinator_faults or {})
        self._max_frame_bytes = (
            None if max_frame_bytes is None else int(max_frame_bytes)
        )
        if self._max_frame_bytes is not None and self._max_frame_bytes < 1:
            raise SessionError(
                f"max_frame_bytes must be positive, got {max_frame_bytes}"
            )
        self._heartbeat_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )
        if self._heartbeat_timeout is not None and self._heartbeat_timeout <= 0:
            raise SessionError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if self.transport != "tcp":
            for name, value in (
                ("bind_address", bind_address),
                ("advertise_address", advertise_address),
                ("max_frame_bytes", max_frame_bytes),
                ("heartbeat_timeout", heartbeat_timeout),
            ):
                if value is not None:
                    raise SessionError(
                        f"{name} only applies to the tcp transport"
                    )
        self._listener = None
        self._replaying = False
        if self.transport == "tcp":
            from repro.net.endpoint import Listener

            listener_kwargs = {
                "advertise": advertise_address,
                "incarnation": self._incarnation,
                "poll_interval": self._poll_interval,
            }
            if bind_address is not None:
                listener_kwargs["host"] = bind_address
            if self._max_frame_bytes is not None:
                listener_kwargs["max_frame_bytes"] = self._max_frame_bytes
            self._listener = Listener(**listener_kwargs)

        if wal_dir is not None:
            from repro.dist.recovery import DurableCoordinator

            self._durable = DurableCoordinator(
                wal_dir, self.inner, fsync=wal_fsync,
                fsync_interval=wal_fsync_interval,
                checkpoint_rounds=checkpoint_rounds,
                crash=wal_crash, incarnation=self._incarnation,
                fresh=(recover_from is None),
            )
            if recover_from is not None:
                # Commit the recovery: bump the on-disk incarnation,
                # then fold the replayed WAL into a fresh checkpoint so
                # round numbering can restart at 1 and an immediate
                # re-crash recovers from here instead of replaying.
                self._durable._write_state()
                self._durable.checkpoint()
        elif wal_crash is not None:
            raise SessionError("wal_crash requires wal_dir")

        import multiprocessing

        self._ctx = multiprocessing.get_context(START_METHOD)
        #: Global site id -> worker index (contiguous shards).
        bounds = np.linspace(0, k, self.procs + 1).astype(np.int64)
        self._site_to_worker = np.repeat(
            np.arange(self.procs, dtype=np.int64), np.diff(bounds)
        )
        self._workers: list[_WorkerHandle] = []
        for w in range(self.procs):
            handle = _WorkerHandle(
                w, tuple(range(int(bounds[w]), int(bounds[w + 1])))
            )
            self._workers.append(handle)
            self._spawn(handle)

        #: Round bookkeeping: seq of the last round shipped / applied.
        self._seq = 0
        self._applied_seq = 0
        #: seq -> in-flight round: batch size, expected worker set,
        #: received {worker: aggregates}, and the ship timestamp.
        self._rounds: dict[int, dict] = {}
        self._closed = False
        #: Wire accounting (frames, not protocol messages).
        self._wire = {
            "batch_frames_sent": 0,
            "report_frames_received": 0,
            "threshold_frames_sent": 0,
            "sync_frames_received": 0,
            "duplicate_report_frames": 0,
            "replayed_rounds": 0,
            "worker_respawns": 0,
            "rounds_applied": 0,
            "round_latency_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _payload(self, handle: _WorkerHandle) -> dict:
        payload = {
            "worker": handle.index,
            "spec": self.inner.spec.to_dict(),
            "sites": list(handle.sites),
            "state": handle.state,
            "fault": self._worker_faults.get(handle.index),
            "inbox_fault": self._worker_inbox_faults.get(handle.index),
            "poll_interval": self._poll_interval,
        }
        if self.transport == "tcp":
            # Socket workers carry no queue ends — they dial the
            # listener and authenticate as this exact incarnation (of
            # this exact coordinator incarnation: a worker spawned by a
            # crashed coordinator life is refused by its successor).
            payload["net"] = {
                "address": self._listener.address,
                "token": self._listener.token,
                "incarnation": handle.respawns,
                "coordinator": self._incarnation,
                "max_frame_bytes": self._max_frame_bytes,
                "heartbeat_timeout": self._heartbeat_timeout,
            }
        else:
            payload["inbox"] = handle.inbox.queue
            payload["reports"] = handle.reports.queue
        return payload

    def _spawn(self, handle: _WorkerHandle) -> None:
        if self.transport == "tcp":
            # Fresh channels per incarnation, exactly like the fresh
            # queues below: the listener now refuses every Hello except
            # this incarnation's, so a SIGKILLed predecessor's lingering
            # socket can neither wedge nor impersonate the replacement.
            handle.inbox = self._listener.open_channel(
                handle.index, "inbox", handle.respawns,
            )
            handle.reports = self._listener.open_channel(
                handle.index, "reports", handle.respawns,
                fault=self._coordinator_faults.get(handle.index),
            )
        else:
            handle.inbox = QueueTransport(
                self._ctx.Queue(self._inbox_slots),
                name=f"worker-{handle.index}.inbox",
                poll_interval=self._poll_interval,
            )
            handle.reports = QueueTransport(
                self._ctx.Queue(self._report_slots),
                name=f"worker-{handle.index}.reports",
                poll_interval=self._poll_interval,
            )
        handle.thresholds_sent = 0
        handle.thresholds_acked = 0
        handle.process = self._ctx.Process(
            target=_site_worker_main, args=(self._payload(handle),),
            daemon=True,
        )
        handle.process.start()

    def _revive(self, handle: _WorkerHandle) -> None:
        """Respawn a dead worker from its last reported state and replay.

        The replacement resumes via the PR-3 ``state_dict`` hand-off
        (:meth:`~repro.dist.site.SiteShard.load_state_dict`); sub-batches
        the dead incarnation never reported are re-shipped in round
        order.  A report that *did* reach the queue before the death is
        deduplicated at dispatch, so the contract survives the race.
        """
        handle.process.join(timeout=1.0)
        handle.respawns += 1
        self._wire["worker_respawns"] += 1
        if handle.respawns > self.max_respawns:
            raise ExecutionError(
                f"site worker {handle.index} died {handle.respawns} times "
                f"(last exit code {handle.process.exitcode}); giving up"
            )
        # A fresh inbox: frames the dead worker never drained are covered
        # by the unreported replay below, and a stale queue must not leak
        # them to the replacement twice.  The abandoned queue's feeder
        # thread may be wedged mid-frame on a pipe nobody will ever read
        # again — without the cancel its atexit finalizer joins that
        # thread forever and the whole process hangs at shutdown.
        if self.transport != "tcp":
            for old in (handle.inbox, handle.reports):
                if old is not None:
                    old.queue.cancel_join_thread()
                    old.queue.close()
        self._spawn(handle)
        for seq in sorted(handle.unreported):
            data, site_ids = handle.unreported[seq]
            self._send(handle, IngestBatch(seq, data, site_ids))

    def _send(self, handle: _WorkerHandle, frame) -> None:
        """Ship one frame, draining reports while blocked (deadlock-free).

        The inbox bound is the backpressure window: when the worker is
        busy (or slow), the send blocks.  Reports are drained during the
        wait so a worker blocked on the (also bounded) report queue can
        always make progress, and worker death during the wait triggers
        revive-and-retry.
        """
        while True:
            if not handle.alive():
                self._revive(handle)
            try:
                handle.inbox.send(frame, alive=handle.alive, timeout=0.25)
                return
            except TransportClosed:
                self._dispatch_available()

    # ------------------------------------------------------------------
    # Report dispatch and round application
    # ------------------------------------------------------------------
    def _dispatch(self, frame) -> None:
        if isinstance(frame, ValueReport):
            self._wire["report_frames_received"] += 1
            handle = self._workers[frame.worker]
            handle.state = frame.state
            handle.unreported.pop(frame.seq, None)
            record = self._rounds.get(frame.seq)
            if record is None or frame.worker in record["got"]:
                # A replayed round whose original report raced the death
                # detection (or arrived after the round was applied).
                self._wire["duplicate_report_frames"] += 1
                return
            if frame.worker in record["expected"]:
                record["got"][frame.worker] = frame.aggregates
        elif isinstance(frame, RoundSync):
            self._wire["sync_frames_received"] += 1
            self._workers[frame.worker].thresholds_acked += 1
        else:  # pragma: no cover - defensive
            raise ExecutionError(f"coordinator got unknown frame {frame!r}")

    def _recv_report(self, handle: _WorkerHandle):
        """Non-blocking receive from one worker's report queue.

        A worker killed mid-send (``SIGKILL``, injected ``os._exit``)
        can leave a half-written frame at the tail of its queue; the
        resulting unpickling/EOF error is confined to the dead
        incarnation's private queue, so it is dropped here — the queue
        is abandoned and the revive path replays whatever it carried.
        An error on a *live* worker's queue is a real bug and re-raised.
        """
        if handle.reports is None:
            return None
        try:
            return handle.reports.try_recv()
        except Exception:
            if handle.alive():
                raise
            handle.reports = None
            return None

    def _maybe_replay(self) -> None:
        """Replay unreported rounds of workers whose connection broke.

        TCP only: frames that were in flight on a severed/replaced
        connection are gone; the worker itself is (usually) still
        alive, so the revive-replay path never fires.  Re-shipping the
        worker's unreported sub-batches closes the gap — re-encoded
        aggregates are pure functions of the sub-batch and reports are
        deduplicated per round, so a replay that races the original
        report applies exactly once either way.
        """
        if self._listener is None or self._replaying:
            return
        disrupted = self._listener.take_disrupted()
        if not disrupted:
            return
        self._replaying = True
        try:
            for w in sorted(disrupted):
                handle = self._workers[w]
                if not handle.alive():
                    continue  # the revive path owns dead-worker replay
                for seq in sorted(handle.unreported):
                    data, site_ids = handle.unreported[seq]
                    self._send(handle, IngestBatch(seq, data, site_ids))
                    self._wire["replayed_rounds"] += 1
        finally:
            self._replaying = False

    def _dispatch_available(self) -> bool:
        """Drain everything currently queued without blocking."""
        got_any = False
        while True:
            progressed = False
            if self._listener is not None:
                self._listener.pump(0.0)
                self._maybe_replay()
            for handle in self._workers:
                frame = self._recv_report(handle)
                if frame is not None:
                    self._dispatch(frame)
                    progressed = got_any = True
            if not progressed:
                return got_any

    def _wait_reports(self, timeout: float = 0.25) -> None:
        """Sleep until a report may be ready or a worker dies.

        Blocks on the report channels' read ends — queue-feeder pipes
        or, under TCP, the listener and every live connection socket
        (``multiprocessing.connection.wait`` accepts anything with a
        ``fileno``) — and the worker process sentinels together, so
        frame arrival, a (re)connect, and worker death all wake the
        event loop immediately instead of on a poll tick.
        """
        waitables = []
        if self._listener is not None:
            waitables.extend(self._listener.waitables())
        for handle in self._workers:
            if self._listener is None and handle.reports is not None:
                waitables.append(handle.reports.queue._reader)
            if handle.alive():
                waitables.append(handle.process.sentinel)
        if waitables:
            _wait_connections(waitables, timeout=timeout)
        else:  # pragma: no cover - every worker gone and abandoned
            time.sleep(self._poll_interval or POLL_INTERVAL)

    def _drain_blocking(self) -> None:
        """Wait for at least one frame, reviving dead workers meanwhile."""
        while True:
            if self._dispatch_available():
                return
            for handle in self._workers:
                if handle.unreported and not handle.alive():
                    self._revive(handle)
            self._wait_reports()

    def _apply_ready(self) -> None:
        """Apply complete rounds, in round order, sites ascending.

        This is the conformance-critical step: workers host contiguous
        ascending site shards and report each shard's aggregates in
        ascending site order, so walking workers by index yields the
        global ascending site walk — the identical ``_apply_site`` call
        sequence (and therefore RNG consumption) the in-process grouped
        paths produce for the same batch.
        """
        bank = self.inner.estimator.bank
        log = self.inner.message_log
        while True:
            seq = self._applied_seq + 1
            record = self._rounds.get(seq)
            if record is None or len(record["got"]) < len(record["expected"]):
                return
            if self._durable is not None:
                # Write-ahead: the round is durable before any of it
                # touches the banks, so a crash between here and the
                # apply replays it instead of losing it.
                self._durable.log_round(seq, record)
            broadcasts_before = log.count(MessageKind.BROADCAST)
            for worker_index in sorted(record["got"]):
                for agg in record["got"][worker_index]:
                    bank.bulk_add_site(agg.site, agg.counter_ids, agg.counts)
            self.inner.estimator.events_seen += record["m"]
            self._applied_seq = seq
            del self._rounds[seq]
            self._wire["rounds_applied"] += 1
            self._wire["round_latency_seconds"] += (
                time.monotonic() - record["sent_at"]
            )
            if self._durable is not None:
                self._durable.after_apply(seq, record)
            started = log.count(MessageKind.BROADCAST) - broadcasts_before
            if started:
                # Round-sync fan-out: every worker learns that counter
                # rounds advanced (batched into one frame per worker).
                rounds = started // self.inner.spec.n_sites
                for handle in self._workers:
                    self._send(handle, ThresholdUpdate(seq, rounds))
                    handle.thresholds_sent += 1
                    self._wire["threshold_frames_sent"] += 1

    def _settle(self, allowed_pending: int) -> None:
        while self._seq - self._applied_seq > allowed_pending:
            self._dispatch_available()
            self._apply_ready()
            if self._seq - self._applied_seq > allowed_pending:
                self._drain_blocking()
                self._apply_ready()

    # ------------------------------------------------------------------
    # Ingestion (mirrors MonitoringSession)
    # ------------------------------------------------------------------
    def ingest(self, data, site_ids=None, *, strategy: str = "auto",
               validate: bool = True) -> int:
        """Feed a batch of events; returns the number of events ingested.

        Mirrors :meth:`MonitoringSession.ingest`: sites come from the
        session partitioner when ``site_ids`` is omitted, and the
        assignment stream is part of the snapshot state.  ``strategy``
        is accepted for API parity; every grouping strategy produces
        identical per-site aggregates, and the aggregation here happens
        in the site workers.
        """
        if self._closed:
            raise SessionError("session is closed")
        data = np.asarray(data, dtype=np.int64)
        if data.ndim == 1:
            data = data.reshape(1, -1)
        if data.shape[0] == 0:
            return 0
        if site_ids is None:
            site_ids = self.inner.partitioner.assign(data.shape[0])
        data, site_ids = self.inner.estimator._validate_batch(
            data, site_ids, check=validate
        )
        m = int(data.shape[0])
        self._seq += 1
        seq = self._seq
        workers_of = self._site_to_worker[site_ids]
        expected = set()
        record = {
            "m": m, "expected": expected, "got": {},
            "sent_at": time.monotonic(),
        }
        if self._durable is not None:
            # Captured *at ingest*: with pipelining the live partitioner
            # advances past the round being applied, so the WAL record
            # (and through it the checkpoint) must carry the state as of
            # this round's assignment draw.
            record["partitioner"] = self.inner.partitioner.state_dict()
        self._rounds[seq] = record
        for w in np.unique(workers_of):
            w = int(w)
            mask = workers_of == w
            sub = (data[mask], site_ids[mask])
            expected.add(w)
            handle = self._workers[w]
            handle.unreported[seq] = sub
            self._send(handle, IngestBatch(seq, *sub))
            self._wire["batch_frames_sent"] += 1
        self._settle(self.max_pending - 1)
        return m

    def ingest_stream(self, batches: Iterable, *, strategy: str = "auto",
                      validate: bool = True) -> int:
        """Feed an iterable of batches (see :meth:`MonitoringSession.ingest_stream`)."""
        total = 0
        for item in batches:
            if isinstance(item, tuple) and len(item) == 2:
                data, site_ids = item
            else:
                data, site_ids = item, None
            total += self.ingest(
                data, site_ids, strategy=strategy, validate=validate
            )
        return total

    def ingest_sampler(self, sampler, m: int, *, chunk: int = 10_000,
                       strategy: str = "auto") -> int:
        """Fused sampler ingest (see :meth:`MonitoringSession.ingest_sampler`).

        Sub-batches are pickled to workers, so the zero-copy buffer
        reuse of the in-process path does not apply; the sampler
        contract (trusted batches, session partitioner sites) does.
        """
        return self.ingest_stream(
            sampler.sample_stream(m, chunk=chunk, reuse_buffer=True),
            strategy=strategy,
            validate=False,
        )

    def sampler(self, **kwargs):
        """A ground-truth sampler over this session's network."""
        return self.inner.sampler(**kwargs)

    def flush(self) -> None:
        """Block until every in-flight round is applied."""
        self._settle(0)

    # ------------------------------------------------------------------
    # Anytime access (flush first: reads see every ingested batch)
    # ------------------------------------------------------------------
    @property
    def spec(self) -> EstimatorSpec:
        return self.inner.spec

    @property
    def network(self):
        return self.inner.network

    @property
    def partitioner(self):
        return self.inner.partitioner

    @property
    def message_log(self):
        self.flush()
        return self.inner.message_log

    @property
    def estimator(self):
        self.flush()
        return self.inner.estimator

    @property
    def events_seen(self) -> int:
        self.flush()
        return self.inner.events_seen

    @property
    def total_messages(self) -> int:
        self.flush()
        return self.inner.total_messages

    def query(self, assignment) -> float:
        self.flush()
        return self.inner.query(assignment)

    def log_query(self, assignment) -> float:
        self.flush()
        return self.inner.log_query(assignment)

    def query_event(self, event) -> float:
        self.flush()
        return self.inner.query_event(event)

    def log_query_batch(self, data, *, strict: bool = False) -> np.ndarray:
        self.flush()
        return self.inner.log_query_batch(data, strict=strict)

    def estimates(self) -> np.ndarray:
        self.flush()
        return self.inner.estimates()

    def classifier(self):
        self.flush()
        return self.inner.classifier()

    def serve(self, **kwargs):
        """A :class:`~repro.serve.QueryServer` over this coordinator.

        The server reads through this session's flushing ``estimator``
        and ``message_log`` properties, so every snapshot it builds
        reflects all applied rounds; see
        :meth:`repro.api.session.MonitoringSession.serve`.
        """
        from repro.serve import QueryServer

        return QueryServer(self, **kwargs)

    def estimated_network(self, *, name: str | None = None):
        self.flush()
        return self.inner.estimated_network(name=name)

    def metrics(self) -> dict:
        """Protocol metrics, identical in shape and value to the inner
        session's (wire-level accounting lives in :meth:`wire_stats`)."""
        self.flush()
        return self.inner.metrics()

    def wire_stats(self) -> dict:
        """Wire-frame accounting of the runtime itself (JSON-ready).

        Frames, not protocol messages: ``batch_frames_sent`` counts
        coordinator->worker sub-batches, ``report_frames_received`` the
        batched per-round replies, and so on.  ``blocked_sends`` /
        ``blocked_seconds`` aggregate coordinator-side backpressure
        stalls across all worker inboxes.
        """
        stats = dict(self._wire)
        stats["workers"] = self.procs
        stats["blocked_sends"] = sum(
            h.inbox.blocked_sends for h in self._workers
        )
        stats["blocked_seconds"] = float(
            sum(h.inbox.blocked_seconds for h in self._workers)
        )
        return stats

    def durability_stats(self) -> dict:
        """WAL/checkpoint accounting when durable, else an empty dict
        (see :meth:`repro.dist.recovery.DurableCoordinator.stats`)."""
        return {} if self._durable is None else self._durable.stats()

    # ------------------------------------------------------------------
    # Snapshot / restore (delegated to the inner session)
    # ------------------------------------------------------------------
    def snapshot(self, path, *, extra: dict | None = None):
        self.flush()
        return self.inner.snapshot(path, extra=extra)

    @staticmethod
    def peek(path) -> dict:
        return MonitoringSession.peek(path)

    @classmethod
    def restore(cls, path, *, network=None, **kwargs) -> "DistributedSession":
        """Resume a snapshot bundle under the distributed runtime.

        Snapshots are runtime-agnostic (all protocol state lives in the
        coordinator-side bank), so bundles written by either session
        class restore into either.
        """
        inner = MonitoringSession.restore(path, network=network)
        session = cls(inner.spec, _inner=inner, **kwargs)
        session.restored_extra = inner.restored_extra
        return session

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, collect outstanding round-sync acks, stop the workers."""
        if self._closed:
            return
        self.flush()
        # Outstanding threshold acks make the wire accounting of a
        # fault-free run deterministic before the workers go away.
        deadline = time.monotonic() + 30.0
        while any(
            h.thresholds_acked < h.thresholds_sent and h.alive()
            for h in self._workers
        ):
            if not self._dispatch_available():
                self._wait_reports()
            if time.monotonic() > deadline:  # pragma: no cover - defensive
                break
        self._closed = True
        if self._durable is not None:
            # A clean shutdown leaves an empty WAL and a checkpoint of
            # the complete run — restartable, with nothing to replay.
            self._durable.close()
        for handle in self._workers:
            if handle.alive():
                try:
                    handle.inbox.send(
                        Shutdown(), alive=handle.alive, timeout=5.0
                    )
                except TransportClosed:
                    pass
        for handle in self._workers:
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():  # pragma: no cover - defensive
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
        if self._listener is not None:
            self._listener.close()
        else:
            for handle in self._workers:
                handle.inbox.queue.cancel_join_thread()
                if handle.reports is not None:
                    handle.reports.queue.cancel_join_thread()

    def __enter__(self) -> "DistributedSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            if not getattr(self, "_closed", True):
                for handle in self._workers:
                    if handle.alive():
                        handle.process.terminate()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedSession({self.inner.spec.algorithm!r}, "
            f"network={self.inner.network.name!r}, procs={self.procs}, "
            f"pending={self._seq - self._applied_seq})"
        )
