"""Factory wiring networks, allocations, and counter banks into estimators.

The four algorithms of the paper's evaluation:

- ``exact`` (EXACTMLE) — exact counters, one message per counter update.
- ``baseline`` — approximate counters, ``eps/(3n)`` budget split.
- ``uniform`` — approximate counters, ``eps/(16 sqrt(n))`` split.
- ``nonuniform`` — approximate counters, Lagrange-optimal split.

plus ``naive-bayes`` (the Sec. V specialization) and a ``deterministic``
counter backend for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.core.allocation import (
    Allocation,
    baseline_allocation,
    naive_bayes_allocation,
    nonuniform_allocation,
    uniform_allocation,
)
from repro.core.estimator import StreamingMLEEstimator
from repro.counters.deterministic import DeterministicCounterBank
from repro.counters.exact import ExactCounterBank
from repro.counters.hyz import HYZCounterBank
from repro.errors import AllocationError
from repro.monitoring.channel import MessageLog
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

#: Algorithm names in the order the paper's plots use.
ALGORITHMS = ("exact", "baseline", "uniform", "nonuniform")

_ALLOCATORS = {
    "baseline": baseline_allocation,
    "uniform": uniform_allocation,
    "nonuniform": nonuniform_allocation,
    "naive-bayes": naive_bayes_allocation,
}


def expand_allocation(
    network: BayesianNetwork, allocation: Allocation
) -> np.ndarray:
    """Per-counter eps array matching the estimator's bank layout.

    The layout places all joint-counter blocks first (variable by variable,
    ``J_i * K_i`` counters each), then all parent-counter blocks
    (``K_i`` each) — the same order :class:`StreamingMLEEstimator` uses.
    """
    if allocation.n_variables != network.n_variables:
        raise AllocationError(
            f"allocation covers {allocation.n_variables} variables, "
            f"network has {network.n_variables}"
        )
    joint_parts = []
    parent_parts = []
    for idx, node in enumerate(network.node_names):
        cpd = network.cpd(node)
        joint_parts.append(
            np.full(
                cpd.cardinality * cpd.parent_configurations,
                allocation.joint_eps[idx],
            )
        )
        parent_parts.append(
            np.full(cpd.parent_configurations, allocation.parent_eps[idx])
        )
    return np.concatenate(joint_parts + parent_parts)


def make_estimator(
    network: BayesianNetwork,
    algorithm: str,
    *,
    eps: float = 0.1,
    n_sites: int = 30,
    seed=None,
    message_log: MessageLog | None = None,
    counter_backend: str = "hyz",
    hyz_engine: str = "vectorized",
) -> StreamingMLEEstimator:
    """Build a ready-to-run streaming estimator.

    Parameters
    ----------
    network:
        Structure and domains (CPD values are ignored during learning).
    algorithm:
        ``"exact"``, ``"baseline"``, ``"uniform"``, ``"nonuniform"``, or
        ``"naive-bayes"``.
    eps:
        The overall approximation factor of Definition 2 (unused by
        ``"exact"``).
    n_sites:
        Number of distributed sites ``k``.
    seed:
        Seed or generator for the randomized counters.
    message_log:
        Optional shared message tally (a fresh one is created per estimator
        otherwise).
    counter_backend:
        ``"hyz"`` (the paper's randomized counter) or ``"deterministic"``
        ((1+eps)-threshold counters, for ablations).  Ignored for
        ``"exact"``.
    hyz_engine:
        Span-replay engine for the HYZ bank: ``"vectorized"`` (default) or
        ``"sequential"`` (the pre-vectorization per-(counter, site) replay,
        kept for benchmarking).  Ignored for other backends.
    """
    algorithm = algorithm.strip().lower()
    n_sites = check_positive_int(n_sites, "n_sites")
    log = message_log or MessageLog(n_sites)

    if algorithm == "exact":
        def bank_factory(n_counters: int):
            return ExactCounterBank(n_counters, n_sites, message_log=log)
        return StreamingMLEEstimator(network, bank_factory, name="exact")

    if algorithm not in _ALLOCATORS:
        raise AllocationError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{('exact',) + tuple(_ALLOCATORS)}"
        )
    allocation = _ALLOCATORS[algorithm](network, eps)
    eps_per_counter = expand_allocation(network, allocation)
    rng = as_generator(seed)

    if counter_backend == "hyz":
        def bank_factory(n_counters: int):
            return HYZCounterBank(
                n_counters, n_sites, eps_per_counter, seed=rng,
                message_log=log, engine=hyz_engine,
            )
    elif counter_backend == "deterministic":
        def bank_factory(n_counters: int):
            return DeterministicCounterBank(
                n_counters, n_sites, eps_per_counter, message_log=log
            )
    else:
        raise AllocationError(
            f"unknown counter backend {counter_backend!r}; "
            "expected 'hyz' or 'deterministic'"
        )
    return StreamingMLEEstimator(network, bank_factory, name=algorithm)
