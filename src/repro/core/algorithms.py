"""Algorithm naming and the deprecated ``make_estimator`` shim.

The four algorithms of the paper's evaluation:

- ``exact`` (EXACTMLE) — exact counters, one message per counter update.
- ``baseline`` — approximate counters, ``eps/(3n)`` budget split.
- ``uniform`` — approximate counters, ``eps/(16 sqrt(n))`` split.
- ``nonuniform`` — approximate counters, Lagrange-optimal split.

plus ``naive-bayes`` (the Sec. V specialization).  They are wired to
counter backends through the registries in :mod:`repro.api.registry`;
the declarative entry point is :class:`repro.api.spec.EstimatorSpec`.
:func:`make_estimator` survives only as a deprecated shim over it.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.core.allocation import Allocation
from repro.core.estimator import StreamingMLEEstimator
from repro.errors import AllocationError
from repro.monitoring.channel import MessageLog

#: Algorithm names in the order the paper's plots use.
ALGORITHMS = ("exact", "baseline", "uniform", "nonuniform")


def expand_allocation(
    network: BayesianNetwork, allocation: Allocation
) -> np.ndarray:
    """Per-counter eps array matching the estimator's bank layout.

    The layout places all joint-counter blocks first (variable by variable,
    ``J_i * K_i`` counters each), then all parent-counter blocks
    (``K_i`` each) — the same order :class:`StreamingMLEEstimator` uses.
    """
    if allocation.n_variables != network.n_variables:
        raise AllocationError(
            f"allocation covers {allocation.n_variables} variables, "
            f"network has {network.n_variables}"
        )
    joint_parts = []
    parent_parts = []
    for idx, node in enumerate(network.node_names):
        cpd = network.cpd(node)
        joint_parts.append(
            np.full(
                cpd.cardinality * cpd.parent_configurations,
                allocation.joint_eps[idx],
            )
        )
        parent_parts.append(
            np.full(cpd.parent_configurations, allocation.parent_eps[idx])
        )
    return np.concatenate(joint_parts + parent_parts)


def make_estimator(
    network: BayesianNetwork,
    algorithm: str,
    *,
    eps: float = 0.1,
    n_sites: int = 30,
    seed=None,
    message_log: MessageLog | None = None,
    counter_backend: str = "hyz",
    hyz_engine: str = "vectorized",
) -> StreamingMLEEstimator:
    """Build a ready-to-run streaming estimator.

    .. deprecated::
        Use :class:`repro.api.spec.EstimatorSpec` — the declarative,
        serializable spec behind :class:`repro.api.session.MonitoringSession`
        — and call its ``.build()`` (bare estimator) or ``.session()``
        (full lifecycle with snapshot/resume).  This shim forwards to
        ``EstimatorSpec(...).build()`` and will be removed.
    """
    warnings.warn(
        "make_estimator is deprecated; use "
        "repro.api.EstimatorSpec(...).build() (or .session() for the full "
        "monitoring lifecycle)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.spec import EstimatorSpec

    spec = EstimatorSpec(
        network=network,
        algorithm=algorithm,
        eps=eps,
        n_sites=n_sites,
        seed=seed,
        counter_backend=counter_backend,
        hyz_engine=hyz_engine,
    )
    return spec.build(message_log=message_log)
