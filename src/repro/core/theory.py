"""Analytical communication bounds from the paper.

These implement the message-count formulas of Lemma 5, Lemma 6, Theorem 1,
Theorem 2, Lemma 10, and Lemma 11 (up to their hidden constants, which the
functions expose as an explicit ``constant`` factor with default 1).  They
back the theory benchmarks and the UNIFORM-vs-NONUNIFORM separation example
of Sec. IV-E.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.utils.validation import check_fraction, check_positive_int


def _common(eps: float, delta: float, k: int, m: int) -> float:
    eps = check_fraction(eps, "eps")
    delta = check_fraction(delta, "delta")
    k = check_positive_int(k, "k")
    m = check_positive_int(m, "m")
    return (math.sqrt(k) / eps) * math.log(1.0 / delta) * math.log(max(m, 2))


def exact_mle_messages(n: int, m: int) -> int:
    """Lemma 5: exact maintenance costs one message per counter update.

    ``2n`` counters (one joint + one parent per variable) are incremented
    per observation, matching the per-update accounting of Table III.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    return 2 * n * m


def baseline_message_bound(
    n: int, j_max: int, d_max: int, *, eps: float, delta: float, k: int, m: int,
    constant: float = 1.0,
) -> float:
    """Lemma 6: ``O(n^2 J^{d+1} sqrt(k)/eps log(1/delta) log m)``."""
    n = check_positive_int(n, "n")
    j_max = check_positive_int(j_max, "j_max")
    return constant * n**2 * j_max ** (d_max + 1) * _common(eps, delta, k, m)


def uniform_message_bound(
    n: int, j_max: int, d_max: int, *, eps: float, delta: float, k: int, m: int,
    constant: float = 1.0,
) -> float:
    """Theorem 1: ``O(n^{3/2} J^{d+1} sqrt(k)/eps log(1/delta) log m)``."""
    n = check_positive_int(n, "n")
    j_max = check_positive_int(j_max, "j_max")
    return (
        constant * n**1.5 * j_max ** (d_max + 1) * _common(eps, delta, k, m)
    )


def nonuniform_gamma(
    cardinalities: Sequence[int], parent_configs: Sequence[int]
) -> float:
    """Theorem 2's size term
    ``Gamma = (sum (J_i K_i)^{2/3})^{3/2} + (sum K_i^{2/3})^{3/2}``.
    """
    j = np.asarray(cardinalities, dtype=np.float64)
    k = np.asarray(parent_configs, dtype=np.float64)
    if j.shape != k.shape or j.ndim != 1 or j.size == 0:
        raise ValueError("cardinalities and parent_configs must align, 1-D")
    if np.any(j < 1) or np.any(k < 1):
        raise ValueError("sizes must be >= 1")
    return float(
        np.sum((j * k) ** (2.0 / 3.0)) ** 1.5 + np.sum(k ** (2.0 / 3.0)) ** 1.5
    )


def network_gamma(network: BayesianNetwork) -> float:
    """:func:`nonuniform_gamma` read off a network."""
    return nonuniform_gamma(
        network.cardinalities(), network.parent_configuration_counts()
    )


def nonuniform_message_bound(
    cardinalities: Sequence[int],
    parent_configs: Sequence[int],
    *, eps: float, delta: float, k: int, m: int, constant: float = 1.0,
) -> float:
    """Theorem 2: ``O(Gamma sqrt(k)/eps log(1/delta) log m)``."""
    gamma = nonuniform_gamma(cardinalities, parent_configs)
    return constant * gamma * _common(eps, delta, k, m)


def tree_message_bound(
    cardinalities: Sequence[int],
    parent_cardinalities: Sequence[int],
    *, eps: float, delta: float, k: int, m: int, constant: float = 1.0,
) -> float:
    """Lemma 10: Theorem 2 specialized to trees (``K_i = J_{par(i)}``)."""
    return nonuniform_message_bound(
        cardinalities, parent_cardinalities,
        eps=eps, delta=delta, k=k, m=m, constant=constant,
    )


def naive_bayes_message_bound(
    class_cardinality: int,
    feature_cardinalities: Sequence[int],
    *, eps: float, delta: float, k: int, m: int, constant: float = 1.0,
) -> float:
    """Lemma 11:
    ``O(sqrt(k)/eps * J_1 * (sum_{i>=2} J_i^{2/3})^{3/2} log(1/delta) log m)``.
    """
    j1 = check_positive_int(class_cardinality, "class_cardinality")
    features = np.asarray(feature_cardinalities, dtype=np.float64)
    if features.ndim != 1 or features.size == 0:
        raise ValueError("feature_cardinalities must be non-empty 1-D")
    if np.any(features < 1):
        raise ValueError("cardinalities must be >= 1")
    size_term = j1 * float(np.sum(features ** (2.0 / 3.0)) ** 1.5)
    return constant * size_term * _common(eps, delta, k, m)


def separation_example(n: int, j_large: int) -> dict[str, float]:
    """The Sec. IV-E UNIFORM-vs-NONUNIFORM separation.

    A tree (``d = 1``) of ``n`` binary variables except one leaf ``X_1``
    with ``J`` values: UNIFORM's size term is ``n^{1.5} J^2`` while
    NONUNIFORM's is ``(n + J^{2/3})^{1.5} = O(max(n^{1.5}, J))``.
    Returns both size terms and their ratio.
    """
    n = check_positive_int(n, "n")
    j_large = check_positive_int(j_large, "j_large")
    uniform_term = n**1.5 * j_large**2
    nonuniform_term = (n + j_large ** (2.0 / 3.0)) ** 1.5
    return {
        "uniform": float(uniform_term),
        "nonuniform": float(nonuniform_term),
        "ratio": float(uniform_term / nonuniform_term),
    }
