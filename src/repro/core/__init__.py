"""The paper's core: streaming MLE approximation over distributed counters.

- :mod:`repro.core.allocation` — how BASELINE / UNIFORM / NONUNIFORM split
  the error budget across the per-CPD counters (Sec. IV-C/D/E, Sec. V).
- :mod:`repro.core.estimator` — the master algorithm (Algorithms 1-3).
- :mod:`repro.core.algorithms` — a factory wiring networks, allocations,
  and counter banks into ready-to-run estimators.
- :mod:`repro.core.classification` — approximate Bayesian classification
  (Definition 4, Theorem 3).
- :mod:`repro.core.theory` — the analytical communication bounds.
"""

from repro.core.algorithms import ALGORITHMS, make_estimator
from repro.core.allocation import (
    Allocation,
    baseline_allocation,
    naive_bayes_allocation,
    nonuniform_allocation,
    uniform_allocation,
)
from repro.core.classification import BayesianClassifier
from repro.core.estimator import StreamingMLEEstimator
from repro.core.theory import (
    baseline_message_bound,
    exact_mle_messages,
    naive_bayes_message_bound,
    nonuniform_gamma,
    nonuniform_message_bound,
    tree_message_bound,
    uniform_message_bound,
)

__all__ = [
    "Allocation",
    "baseline_allocation",
    "uniform_allocation",
    "nonuniform_allocation",
    "naive_bayes_allocation",
    "StreamingMLEEstimator",
    "make_estimator",
    "ALGORITHMS",
    "BayesianClassifier",
    "exact_mle_messages",
    "baseline_message_bound",
    "uniform_message_bound",
    "nonuniform_message_bound",
    "nonuniform_gamma",
    "tree_message_bound",
    "naive_bayes_message_bound",
]
