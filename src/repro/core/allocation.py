"""Error-budget allocation across the per-CPD distributed counters.

For each variable ``X_i`` the estimator maintains joint counters
``A_i(x_i, xpar_i)`` (one per CPD table entry, ``J_i * K_i`` of them) and
parent counters ``A_i(xpar_i)`` (``K_i`` of them).  An *allocation* assigns
every counter its error parameter — the paper's ``epsfnA``/``epsfnB`` of
Algorithm 1:

- **BASELINE** (Sec. IV-C): ``eps / (3n)`` everywhere; worst-case union
  bound, no statistical pooling.
- **UNIFORM** (Sec. IV-D): ``eps / (16 sqrt(n))`` everywhere; Chebyshev on
  the product of unbiased counters brings the per-counter budget from
  ``eps/n`` to ``eps/sqrt(n)``.
- **NONUNIFORM** (Sec. IV-E): minimizes total communication
  ``sum_i J_i K_i / nu_i`` subject to the variance constraint
  ``sum_i nu_i^2 = eps^2 / 256`` — the Lagrange solution (Eq. 7-8):

  ``nu_i = (J_i K_i)^{1/3} eps / (16 alpha)``,
  ``alpha = (sum_i (J_i K_i)^{2/3})^{1/2}``, and analogously
  ``mu_i = K_i^{1/3} eps / (16 beta)``, ``beta = (sum_i K_i^{2/3})^{1/2}``.

- **Naive Bayes** (Sec. V, Eq. 9): the NONUNIFORM solution specialized to
  the two-layer tree where ``K_i = J_1`` for every feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.errors import AllocationError
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class Allocation:
    """Per-variable error parameters for both counter families.

    Attributes
    ----------
    joint_eps:
        ``epsfnA(i)`` — error parameter for the ``A_i(x_i, xpar_i)``
        counters of each variable (topological order).
    parent_eps:
        ``epsfnB(i)`` — error parameter for the ``A_i(xpar_i)`` counters.
    name:
        Which strategy produced this allocation.
    """

    joint_eps: np.ndarray
    parent_eps: np.ndarray
    name: str

    def __post_init__(self) -> None:
        je = np.asarray(self.joint_eps, dtype=np.float64)
        pe = np.asarray(self.parent_eps, dtype=np.float64)
        if je.ndim != 1 or pe.shape != je.shape:
            raise AllocationError("joint_eps and parent_eps must align 1-D")
        if np.any(je <= 0) or np.any(pe <= 0):
            raise AllocationError("error parameters must be positive")
        if np.any(je >= 1) or np.any(pe >= 1):
            raise AllocationError("error parameters must be < 1")
        object.__setattr__(self, "joint_eps", je)
        object.__setattr__(self, "parent_eps", pe)

    @property
    def n_variables(self) -> int:
        return self.joint_eps.shape[0]

    def variance_budget(self) -> tuple[float, float]:
        """``(sum nu_i^2, sum mu_i^2)`` — the Eq. 4 constraint values."""
        return (
            float(np.sum(self.joint_eps**2)),
            float(np.sum(self.parent_eps**2)),
        )


def _network_sizes(network: BayesianNetwork) -> tuple[np.ndarray, np.ndarray]:
    return (
        network.cardinalities().astype(np.float64),
        network.parent_configuration_counts().astype(np.float64),
    )


def baseline_allocation(network: BayesianNetwork, eps: float) -> Allocation:
    """BASELINE: every counter gets ``eps / (3n)`` (Sec. IV-C).

    With each counter within a ``(1 +- eps/3n)`` factor, the product of
    ``2n`` factors stays within ``e^{+-eps}`` (Fact 1) even when every error
    falls the worst way.
    """
    eps = check_fraction(eps, "eps")
    n = network.n_variables
    value = eps / (3.0 * n)
    ones = np.full(n, value)
    return Allocation(ones, ones.copy(), "baseline")


def uniform_allocation(network: BayesianNetwork, eps: float) -> Allocation:
    """UNIFORM: every counter gets ``eps / (16 sqrt(n))`` (Sec. IV-D)."""
    eps = check_fraction(eps, "eps")
    n = network.n_variables
    value = eps / (16.0 * np.sqrt(n))
    ones = np.full(n, value)
    return Allocation(ones, ones.copy(), "uniform")


def nonuniform_allocation(network: BayesianNetwork, eps: float) -> Allocation:
    """NONUNIFORM: the communication-optimal Lagrange solution (Eq. 7-8)."""
    eps = check_fraction(eps, "eps")
    j, k = _network_sizes(network)
    alpha = np.sqrt(np.sum((j * k) ** (2.0 / 3.0)))
    beta = np.sqrt(np.sum(k ** (2.0 / 3.0)))
    nu = (j * k) ** (1.0 / 3.0) * eps / (16.0 * alpha)
    mu = k ** (1.0 / 3.0) * eps / (16.0 * beta)
    return Allocation(nu, mu, "nonuniform")


def naive_bayes_allocation(
    network: BayesianNetwork, eps: float, *, class_variable: str | None = None
) -> Allocation:
    """The Naive Bayes specialization (Sec. V, Eq. 9).

    For root class variable ``X_1`` and features ``X_2..X_n`` (each with
    ``par(X_i) = {X_1}``), the optimal joint-counter parameters are
    ``nu_i = J_i^{1/3} eps / (16 (sum_{i>=2} J_i^{2/3})^{1/2})`` and the
    parent counters use ``mu_i = eps / (16 sqrt(n))``.

    Raises
    ------
    AllocationError
        If the network is not a two-layer Naive Bayes structure.
    """
    eps = check_fraction(eps, "eps")
    roots = network.dag.roots()
    if class_variable is None:
        if len(roots) != 1:
            raise AllocationError(
                f"cannot infer the class variable: roots are {roots}"
            )
        class_variable = roots[0]
    if class_variable not in network.dag.nodes:
        raise AllocationError(f"unknown class variable {class_variable!r}")
    for node in network.node_names:
        parents = network.dag.parents(node)
        if node == class_variable:
            if parents:
                raise AllocationError("class variable must be a root")
        elif parents != (class_variable,):
            raise AllocationError(
                f"{node!r} must have exactly the class variable as parent "
                f"for a Naive Bayes model, has {parents}"
            )
    n = network.n_variables
    cards = network.cardinalities().astype(np.float64)
    class_idx = network.variable_index(class_variable)
    feature_mask = np.ones(n, dtype=bool)
    feature_mask[class_idx] = False
    feature_norm = np.sqrt(np.sum(cards[feature_mask] ** (2.0 / 3.0)))
    nu = np.empty(n)
    nu[feature_mask] = (
        cards[feature_mask] ** (1.0 / 3.0) * eps / (16.0 * feature_norm)
    )
    # The class variable's own CPD has K_1 = 1; give it the uniform share.
    nu[class_idx] = eps / (16.0 * np.sqrt(n))
    mu = np.full(n, eps / (16.0 * np.sqrt(n)))
    return Allocation(nu, mu, "naive-bayes")


#: Allocation strategies by paper name.
ALLOCATIONS = {
    "baseline": baseline_allocation,
    "uniform": uniform_allocation,
    "nonuniform": nonuniform_allocation,
    "naive-bayes": naive_bayes_allocation,
}
