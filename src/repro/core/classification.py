"""Approximate Bayesian classification (Sec. V, Definition 4).

Given evidence ``e`` over all variables except a target set ``Y``, the
classifier returns the assignment ``b`` maximizing the estimated joint
probability; since the evidence fixes every other variable,
``P[Y = y | e]`` is proportional to the full-joint estimate with ``Y = y``
(Theorem 3).  Lemma 12: a model within ``e^{eps/4}`` of the MLE solves the
Definition 4 problem with error ``eps``.

The implementation only recomputes the CPD terms whose value changes with
the target's state — the target's own family and its children's families —
so prediction is cheap even in thousand-node networks.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.core.estimator import StreamingMLEEstimator
from repro.errors import QueryError


class BayesianClassifier:
    """Predicts one variable from full evidence on the rest.

    Works over either a :class:`StreamingMLEEstimator` (the distributed
    setting) or a plain :class:`BayesianNetwork` (e.g. ground truth).
    """

    def __init__(self, model: "StreamingMLEEstimator | BayesianNetwork") -> None:
        self.model = model
        self.network = (
            model.network if isinstance(model, StreamingMLEEstimator) else model
        )

    def _full_vector(self, evidence: Mapping[str, int], target: str
                     ) -> np.ndarray:
        names = self.network.node_names
        missing = set(names) - set(evidence) - {target}
        if missing:
            raise QueryError(
                f"evidence must cover all non-target variables; missing "
                f"{sorted(missing)[:5]}"
            )
        if target in evidence:
            raise QueryError(f"target {target!r} also appears in evidence")
        vec = np.zeros(len(names), dtype=np.int64)
        for idx, name in enumerate(names):
            if name == target:
                continue
            vec[idx] = self.network.variable(name).state_index(evidence[name])
        return vec

    def _affected_variables(self, target: str) -> list[str]:
        return [target, *self.network.dag.children(target)]

    def scores(self, target: str, evidence: Mapping[str, int]) -> np.ndarray:
        """Unnormalized log-scores for each state of ``target``.

        ``scores[y] = sum of log CPD terms that depend on Y`` — equal to the
        log joint up to a constant independent of ``y``.
        """
        if target not in self.network.dag.nodes:
            raise QueryError(f"unknown target variable {target!r}")
        if isinstance(self.model, StreamingMLEEstimator):
            self._estimates_cache = self.model.bank.estimates()
        vec = self._full_vector(evidence, target)
        target_idx = self.network.variable_index(target)
        cardinality = self.network.variable(target).cardinality
        affected = self._affected_variables(target)
        scores = np.zeros(cardinality, dtype=np.float64)
        for y in range(cardinality):
            vec[target_idx] = y
            total = 0.0
            for name in affected:
                total += self._log_cpd_term(name, vec)
                if total == -math.inf:
                    break
            scores[y] = total
        return scores

    def _log_cpd_term(self, name: str, vec: np.ndarray) -> float:
        cpd = self.network.cpd(name)
        parent_states = [
            int(vec[self.network.variable_index(p)]) for p in cpd.parent_names
        ]
        state = int(vec[self.network.variable_index(name)])
        if isinstance(self.model, StreamingMLEEstimator):
            layout = self.model._layouts[self.network.variable_index(name)]
            estimates = self._estimates_cache
            pstate = (
                int(
                    np.asarray(parent_states, dtype=np.int64)
                    @ layout.parent_strides
                )
                if parent_states
                else 0
            )
            num = estimates[
                layout.joint_offset + state * layout.k_configs + pstate
            ]
            den = estimates[layout.parent_offset + pstate]
            if num <= 0 or den <= 0:
                return -math.inf
            return math.log(num) - math.log(den)
        p = cpd.probability(state, parent_states)
        return math.log(p) if p > 0 else -math.inf

    def predict(self, target: str, evidence: Mapping[str, int]) -> int:
        """The maximum-probability state for ``target`` given ``evidence``.

        Ties and all-``-inf`` scores resolve to the smallest state index.
        """
        scores = self.scores(target, evidence)
        return int(np.argmax(scores))

    def predict_batch(
        self, targets: list[str], data: np.ndarray
    ) -> np.ndarray:
        """Predict ``targets[r]`` for each row ``r`` of full assignments.

        ``data`` supplies the true values; the target's column is treated
        as hidden.  Returns the predicted state per row.
        """
        data = np.asarray(data, dtype=np.int64)
        if data.ndim != 2 or data.shape[0] != len(targets):
            raise QueryError("data rows must align with the targets list")
        if isinstance(self.model, StreamingMLEEstimator):
            self._estimates_cache = self.model.bank.estimates()
        names = self.network.node_names
        predictions = np.empty(len(targets), dtype=np.int64)
        for r, target in enumerate(targets):
            vec = data[r].copy()
            target_idx = self.network.variable_index(target)
            cardinality = self.network.variable(target).cardinality
            best_score, best_state = -math.inf, 0
            for y in range(cardinality):
                vec[target_idx] = y
                total = 0.0
                for name in self._affected_variables(target):
                    total += self._log_cpd_term(name, vec)
                    if total == -math.inf:
                        break
                if total > best_score:
                    best_score, best_state = total, y
            predictions[r] = best_state
        return predictions

    def error_rate(self, targets: list[str], data: np.ndarray) -> float:
        """Fraction of rows where the prediction misses the true state."""
        data = np.asarray(data, dtype=np.int64)
        predictions = self.predict_batch(targets, data)
        truth = np.array(
            [
                data[r, self.network.variable_index(t)]
                for r, t in enumerate(targets)
            ],
            dtype=np.int64,
        )
        return float(np.mean(predictions != truth))
